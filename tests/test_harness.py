"""Experiment harness drivers at quick (test-size) inputs."""

import pytest

from repro.bench import harness

SUBSET = ["fibonacci", "quicksort", "series"]


@pytest.fixture(scope="module")
def quick_tables():
    return {
        "t2": harness.table2(SUBSET, use_repair_args=False),
        "t3": harness.table3(SUBSET, use_repair_args=False),
        "t4": harness.table4(SUBSET, use_repair_args=False),
        "f16": harness.figure16(SUBSET, use_perf_args=False),
    }


class TestTable1:
    def test_all_rows_present(self):
        rows = harness.table1()
        assert len(rows) == 12
        assert rows[0]["benchmark"] == "fibonacci"
        assert all("paper_repair_input" in r for r in rows)

    def test_subset(self):
        rows = harness.table1(SUBSET)
        assert [r["benchmark"] for r in rows] == SUBSET


class TestFigure16:
    def test_shape_repaired_close_to_original(self, quick_tables):
        for row in quick_tables["f16"]:
            assert row["repaired_parallel"] <= 2 * row["original_parallel"] \
                + 50, row
            assert row["original_parallel"] <= row["sequential"]
            assert row["repaired_parallel"] <= row["sequential"]

    def test_speedups_computed(self, quick_tables):
        for row in quick_tables["f16"]:
            assert row["repaired_speedup"] >= 1.0


class TestTable2:
    def test_metrics_present_and_sane(self, quick_tables):
        for row in quick_tables["t2"]:
            assert row["converged"]
            assert row["dpst_nodes"] > 0
            assert row["races"] > 0
            assert row["detection_ms"] > 0
            assert row["repair_s"] > 0


class TestTable3:
    def test_srw_two_runs_mrw_totals(self, quick_tables):
        for row in quick_tables["t3"]:
            assert row["srw_runs"] >= 2  # repair + confirm
            assert row["mrw_runs"] >= 2
            assert row["srw_total_s"] > 0
            assert row["mrw_total_s"] > 0


class TestTable4:
    def test_mrw_geq_srw_everywhere(self, quick_tables):
        for row in quick_tables["t4"]:
            assert row["mrw_races"] >= row["srw_races"], row

    def test_quicksort_mrw_strictly_larger(self, quick_tables):
        by_name = {r["benchmark"]: r for r in quick_tables["t4"]}
        # Multiple unjoined writers per cell: quicksort is the paper's
        # showcase of SRW under-reporting (Table 4: 1,780 vs 17,727).
        assert by_name["quicksort"]["mrw_races"] \
            > by_name["quicksort"]["srw_races"]

    def test_fibonacci_equal(self, quick_tables):
        by_name = {r["benchmark"]: r for r in quick_tables["t4"]}
        # One writer + one reader per boxed field: SRW sees every race
        # (Table 4: 3,192 vs 3,192).
        assert by_name["fibonacci"]["mrw_races"] \
            == by_name["fibonacci"]["srw_races"]


class TestRendering:
    def test_figure16_chart(self, quick_tables):
        from repro.bench.harness import render_figure16_chart
        chart = render_figure16_chart(quick_tables["f16"])
        assert chart.startswith("Figure 16")
        for row in quick_tables["f16"]:
            assert row["benchmark"] in chart
        assert "#" in chart

    def test_format_rows(self, quick_tables):
        text = harness.format_rows(quick_tables["t4"], "Table 4")
        assert text.startswith("Table 4")
        assert "quicksort" in text

    def test_format_empty(self):
        assert "(no rows)" in harness.format_rows([], "X")
