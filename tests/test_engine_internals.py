"""Direct unit tests of the repair engine's helper machinery."""

import pytest

from repro.lang import parse
from repro.repair.engine import (
    _block_parents,
    _merge_spans,
    _region_covers,
    _regions_nested,
    _statement_positions,
)


class TestMergeSpans:
    def test_disjoint_kept(self):
        assert _merge_spans([(0, 1), (3, 4)]) == [(0, 1), (3, 4)]

    def test_overlapping_merged(self):
        assert _merge_spans([(0, 2), (2, 4)]) == [(0, 4)]
        assert _merge_spans([(0, 3), (1, 2)]) == [(0, 3)]

    def test_unsorted_input(self):
        assert _merge_spans([(5, 6), (0, 1), (1, 2)]) == [(0, 2), (5, 6)]

    def test_duplicates_collapse(self):
        assert _merge_spans([(1, 2), (1, 2)]) == [(1, 2)]

    def test_adjacent_not_merged(self):
        # (0,1) and (2,3) do not overlap: two separate finishes are fine.
        assert _merge_spans([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]


PROGRAM = """
def helper() {
    print(0);
}
def main() {
    print(1);
    if (true) {
        print(2);
        while (false) {
            print(3);
        }
    }
    print(4);
}
"""


class TestStatementPositions:
    def test_every_statement_mapped(self):
        program = parse(PROGRAM)
        positions = _statement_positions(program)
        main_block = program.main.body
        for idx, stmt in enumerate(main_block.stmts):
            assert positions[stmt.nid] == (main_block.nid, idx)

    def test_nested_blocks_have_own_positions(self):
        program = parse(PROGRAM)
        positions = _statement_positions(program)
        if_stmt = program.main.body.stmts[1]
        inner = if_stmt.then_block.stmts[0]
        assert positions[inner.nid] == (if_stmt.then_block.nid, 0)


class TestBlockParents:
    def test_parent_chain(self):
        program = parse(PROGRAM)
        parents = _block_parents(program)
        if_stmt = program.main.body.stmts[1]
        then_block = if_stmt.then_block
        assert parents[then_block.nid] == (program.main.body.nid, 1)
        while_stmt = then_block.stmts[1]
        assert parents[while_stmt.body.nid] == (then_block.nid, 1)

    def test_function_bodies_have_no_parent(self):
        program = parse(PROGRAM)
        parents = _block_parents(program)
        assert program.main.body.nid not in parents


class TestRegionNesting:
    @pytest.fixture
    def ctx(self):
        program = parse(PROGRAM)
        parents = _block_parents(program)
        main_block = program.main.body
        if_stmt = main_block.stmts[1]
        then_block = if_stmt.then_block
        while_body = then_block.stmts[1].body
        return parents, main_block, then_block, while_body

    def test_same_block_containment(self, ctx):
        parents, main_block, *_ = ctx
        outer = (main_block.nid, 0, 2)
        inner = (main_block.nid, 1, 1)
        assert _region_covers(parents, outer, inner)
        assert not _region_covers(parents, inner, outer)

    def test_same_block_partial_overlap_not_nested(self, ctx):
        parents, main_block, *_ = ctx
        a = (main_block.nid, 0, 1)
        b = (main_block.nid, 1, 2)
        assert not _regions_nested(parents, a, b)

    def test_cross_block_nesting(self, ctx):
        parents, main_block, then_block, while_body = ctx
        # A region over main stmts 1..1 (the if) covers anything inside
        # the then-block and the while body.
        outer = (main_block.nid, 1, 1)
        assert _region_covers(parents, outer, (then_block.nid, 0, 0))
        assert _region_covers(parents, outer, (while_body.nid, 0, 0))
        assert _regions_nested(parents, (then_block.nid, 0, 0), outer)

    def test_unrelated_blocks(self, ctx):
        parents, main_block, then_block, _ = ctx
        program = parse(PROGRAM)
        helper_block = program.functions["helper"].body
        helper_parents = _block_parents(program)
        assert not _regions_nested(helper_parents,
                                   (helper_block.nid, 0, 0),
                                   (program.main.body.nid, 0, 2))

    def test_region_outside_range_not_covered(self, ctx):
        parents, main_block, then_block, _ = ctx
        # The if statement is index 1; a region over index 0 only does
        # not cover the then-block.
        outer = (main_block.nid, 0, 0)
        assert not _region_covers(parents, outer, (then_block.nid, 0, 0))
