"""DOT exports of the analysis artefacts."""

from repro.graph import ComputationGraph
from repro.races import detect_races
from repro.repair.dependence import (
    build_dependence_graph,
    group_races_by_nslca,
)
from repro.viz import (
    computation_graph_to_dot,
    dependence_graph_to_dot,
    dpst_to_dot,
)
from tests.conftest import build

SOURCE = """
var x = 0;
def main() {
    var pre = 1;
    async { x = pre; }
    async { x = 2; }
    print(x);
}
"""


def detection():
    return detect_races(build(SOURCE))


class TestDpstDot:
    def test_structure(self):
        det = detection()
        dot = dpst_to_dot(det.dpst, det.report)
        assert dot.startswith("digraph sdpst {")
        assert dot.rstrip().endswith("}")
        assert "Async" in dot
        assert "Step" in dot

    def test_race_edges_rendered(self):
        det = detection()
        dot = dpst_to_dot(det.dpst, det.report)
        assert dot.count("style=dashed, color=red") == len(det.report)

    def test_max_nodes_respected(self):
        det = detection()
        dot = dpst_to_dot(det.dpst, max_nodes=3)
        assert dot.count("[label=") <= 3

    def test_labels_escaped(self):
        det = detection()
        dot = dpst_to_dot(det.dpst)
        assert '\\"' not in dot or '"' in dot  # no raw broken quotes


class TestDependenceDot:
    def test_nodes_and_edges(self):
        det = detection()
        pairs = det.report.distinct_step_pairs()
        groups = group_races_by_nslca(det.dpst, pairs)
        nslca, group = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, group)
        dot = dependence_graph_to_dot(graph)
        assert dot.count("d0") >= 1
        assert dot.count("->") == len(graph.edges)


class TestComputationDot:
    def test_critical_path_highlighted(self):
        det = detection()
        graph = ComputationGraph.from_dpst(det.dpst)
        dot = computation_graph_to_dot(graph)
        assert "fillcolor" in dot
        assert dot.count("s0") >= 0
        # every node appears
        for idx in graph.order:
            assert f"s{idx} [label=" in dot

    def test_without_highlight(self):
        det = detection()
        graph = ComputationGraph.from_dpst(det.dpst)
        dot = computation_graph_to_dot(graph, highlight_critical_path=False)
        assert "penwidth" not in dot
