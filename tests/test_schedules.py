"""Alternative legal schedules and the empirical determinism check.

Validates the paper's footnote 1 end-to-end: repaired (race-free)
programs behave identically under every legal schedule; racy programs
betray themselves.
"""

import pytest

from repro.bench import get_benchmark
from repro.lang import strip_finishes
from repro.races import detect_races
from repro.repair import repair_program
from repro.runtime import run_program
from repro.runtime.schedules import (
    check_determinism,
    run_deferred,
)
from tests.conftest import build

RACY = """
var x = 0;
def main() {
    async { x = 10; }
    async { x = 20; }
    print(x);
}
"""

SAFE = """
var x = 0;
def main() {
    finish {
        async { x = 10; }
    }
    finish {
        async { x = x + 5; }
    }
    print(x);
}
"""


class TestDeferredExecution:
    def test_deferred_respects_finish(self):
        # The finish must drain its tasks before the following read.
        result = run_deferred(build(SAFE))
        assert result.output == ["15"]

    def test_deferred_reorders_unjoined_tasks(self):
        outputs = {tuple(run_deferred(build(RACY), schedule_seed=s).output)
                   for s in range(1, 12)}
        # The racy write-write race shows up as different final values
        # (the print itself is deferred after both writes... the print is
        # main-task code, so it runs before both deferred tasks and sees
        # the initial value on every deferred schedule).
        depth_first = tuple(run_program(build(RACY)).output)
        assert depth_first == ("20",)
        assert ("0",) in outputs  # deferred: print before either write

    def test_nested_spawns_join_same_finish(self):
        source = """
        var total = 0;
        def main() {
            finish {
                async {
                    total = total + 1;
                    async { total = total + 10; }
                }
            }
            print(total);
        }"""
        for s in range(1, 6):
            assert run_deferred(build(source), schedule_seed=s).output \
                == ["11"]

    def test_nested_finishes(self):
        source = """
        var log = 0;
        def main() {
            finish {
                async { log = log * 10 + 1; }
                finish { async { log = log * 10 + 2; } }
                async { log = log * 10 + 3; }
            }
            print(log);
        }"""
        # The inner finish forces task 2 before the outer join, but tasks
        # 1 and 3 may run in several positions: all orders end with three
        # digits {1,2,3} where 2 precedes... digit-order varies; the
        # outer print always sees all three applied.
        for s in range(1, 8):
            out = run_deferred(build(source), schedule_seed=s).output
            assert len(out[0]) == 3
            assert sorted(out[0]) == ["1", "2", "3"]

    def test_schedules_are_deterministic_given_seed(self):
        a = run_deferred(build(RACY), schedule_seed=3).output
        b = run_deferred(build(RACY), schedule_seed=3).output
        assert a == b


class TestDeterminismCheck:
    def test_race_free_program_is_deterministic(self):
        report = check_determinism(build(SAFE), schedules=10)
        assert report.deterministic
        assert "identical" in report.summary()

    def test_racy_program_flagged(self):
        source = """
        var x = 0;
        def main() {
            async { x = 1; }
            var y = x * 100;
            print(y);
        }"""
        report = check_determinism(build(source), schedules=10)
        assert not report.deterministic
        assert report.disagreements

    def test_repaired_benchmarks_deterministic(self):
        for name in ("quicksort", "series", "nqueens"):
            spec = get_benchmark(name)
            result = repair_program(strip_finishes(spec.parse()),
                                    spec.test_args)
            report = check_determinism(result.repaired, spec.test_args,
                                       schedules=4)
            assert report.deterministic, (name, report.summary())

    def test_stripped_benchmark_nondeterministic(self):
        spec = get_benchmark("quicksort")
        buggy = strip_finishes(spec.parse())
        assert not detect_races(buggy, spec.test_args).report.is_race_free
        report = check_determinism(buggy, spec.test_args, schedules=6)
        # The unsorted array reaches the checksum/assert in some orders —
        # the assert fires, or the checksum differs.  Either way the
        # outputs disagree (assert failures raise; treat as disagreement).
        assert not report.deterministic

    def test_original_benchmarks_deterministic(self):
        for name in ("mergesort", "crypt"):
            spec = get_benchmark(name)
            report = check_determinism(spec.parse(), spec.test_args,
                                       schedules=3)
            assert report.deterministic, name
