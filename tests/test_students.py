"""The student-homework grader (Section 7.4)."""

import pytest

from repro.bench.students import (
    ASSIGNMENT,
    GRADING_INPUTS,
    MATCHED_TEMPLATES,
    OVERSYNC_TEMPLATES,
    RACY_TEMPLATES,
    Grade,
    grade_submission,
    run_student_experiment,
    synthesize_population,
    tool_reference,
)
from repro.lang import parse
from repro.races import detect_races

INPUTS = ((24,), (36,))


@pytest.fixture(scope="module")
def reference():
    return tool_reference(INPUTS)


class TestAssignment:
    def test_assignment_is_racy(self):
        det = detect_races(parse(ASSIGNMENT), INPUTS[0])
        assert not det.report.is_race_free

    def test_reference_is_race_free_on_all_inputs(self, reference):
        for args in INPUTS:
            assert detect_races(reference, args).report.is_race_free


class TestGrader:
    @pytest.mark.parametrize("description,source", RACY_TEMPLATES)
    def test_racy_templates(self, description, source, reference):
        grade = grade_submission(parse(source), reference, INPUTS)
        assert grade is Grade.RACY, description

    @pytest.mark.parametrize("description,source", OVERSYNC_TEMPLATES)
    def test_oversync_templates(self, description, source, reference):
        grade = grade_submission(parse(source), reference, INPUTS)
        assert grade is Grade.OVER_SYNCHRONIZED, description

    @pytest.mark.parametrize("description,source", MATCHED_TEMPLATES)
    def test_matched_templates(self, description, source, reference):
        grade = grade_submission(parse(source), reference, INPUTS)
        assert grade is Grade.MATCHED, description


class TestPopulation:
    def test_population_size_and_composition(self):
        population = synthesize_population()
        assert len(population) == 59
        expected = {Grade.RACY: 5, Grade.OVER_SYNCHRONIZED: 29,
                    Grade.MATCHED: 25}
        counts = {}
        for sub in population:
            counts[sub.expected] = counts.get(sub.expected, 0) + 1
        assert counts == expected

    def test_population_deterministic(self):
        a = [s.description for s in synthesize_population(seed=7)]
        b = [s.description for s in synthesize_population(seed=7)]
        assert a == b

    def test_population_shuffled(self):
        kinds = [s.expected for s in synthesize_population()]
        # Not all of one class at the front (the shuffle worked).
        assert len(set(kinds[:10])) > 1

    def test_identifiers_sequential(self):
        idents = [s.ident for s in synthesize_population()]
        assert idents == list(range(1, 60))


class TestExperiment:
    def test_counts_match_paper(self):
        result = run_student_experiment(INPUTS)
        assert result["total"] == 59
        assert result["racy"] == 5
        assert result["over_synchronized"] == 29
        assert result["matched"] == 25
        assert result["mismatches"] == []
