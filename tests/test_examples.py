"""The example scripts run end-to-end (subprocess smoke tests)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST = ["quickstart.py", "placement_tradeoffs.py", "race_detective.py",
        "coverage_and_context.py"]
SLOW = ["sorting_repair.py", "classroom_grading.py"]


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name", FAST)
def test_fast_examples(name):
    out = run_example(name)
    assert out.strip()


def test_quickstart_reproduces_figure15():
    out = run_example("quickstart.py")
    assert "repair converged" in out
    assert "fib( 10 ) = 55" in out
    assert "matches the serial elision: OK" in out


def test_placement_tradeoffs_matches_figure4():
    out = run_example("placement_tradeoffs.py")
    assert "CPL = 1510" in out
    assert "CPL = 1110" in out
    assert "CPL = 1100" in out          # the true optimum the DP finds
    assert "optimal on this instance: OK" in out


def test_race_detective_shows_srw_gap():
    out = run_example("race_detective.py")
    assert "SRW ESP-bags: 1 data race(s)" in out
    assert "MRW ESP-bags: 2 data race(s)" in out


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW)
def test_slow_examples(name):
    out = run_example(name)
    assert out.strip()
