"""The batch service's Job/JobResult model and in-process runner."""

import json
import pickle

import pytest

from repro import parse
from repro.repair import repair_program
from repro.service import Job, JobResult, run_job
from repro.service.jobs import DETERMINISTIC_ERRORS

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""


class TestJobModel:
    def test_roundtrip(self):
        job = Job("repair", RACY, source_name="a.hj", args=(40, "x"),
                  algorithm="srw", strip_finishes=True, max_iterations=7,
                  replay=False, timeout_s=2.5)
        clone = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone.to_dict() == job.to_dict()
        assert clone.args == (40, "x")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            Job("grade", RACY)

    def test_from_dict_requires_kind_and_source(self):
        with pytest.raises(ValueError, match="kind"):
            Job.from_dict({"source": RACY})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown job field"):
            Job.from_dict({"kind": "detect", "source": RACY, "bogus": 1})

    def test_semantic_fields_exclude_timing_knobs(self):
        a = Job("detect", RACY, replay=True, timeout_s=1.0)
        b = Job("detect", RACY, replay=False, timeout_s=9.0)
        assert a.semantic_fields() == b.semantic_fields()

    def test_semantic_fields_differ_by_kind_knobs(self):
        assert Job("repair", RACY, max_iterations=3).semantic_fields() != \
            Job("repair", RACY, max_iterations=4).semantic_fields()
        assert Job("detect", RACY, algorithm="mrw").semantic_fields() != \
            Job("detect", RACY, algorithm="srw").semantic_fields()


class TestRunJob:
    def test_detect(self):
        result = run_job(Job("detect", RACY, source_name="r.hj"))
        assert result.status == "ok"
        assert result.kind == "detect"
        assert result.result["race_count"] == 1
        assert not result.result["race_free"]
        assert result.result["races"][0]["kind"] == "W->R"
        assert result.elapsed_s > 0

    def test_repair_matches_library(self):
        result = run_job(Job("repair", RACY, source_name="r.hj"))
        assert result.status == "ok"
        assert result.result["converged"]
        expected = repair_program(parse(RACY))
        assert result.result["repaired_source"] == expected.repaired_source
        assert result.result["iterations"][0]["placements"]

    def test_measure(self):
        result = run_job(Job("measure", RACY, processors=4))
        assert result.status == "ok"
        assert result.result["processors"] == 4
        assert result.result["work"] >= result.result["span"]

    def test_strip_finishes(self):
        clean = ("var x = 0;\n"
                 "def main() { finish { async { x = 1; } } print(x); }")
        kept = run_job(Job("detect", clean))
        stripped = run_job(Job("detect", clean, strip_finishes=True))
        assert kept.result["race_free"]
        assert not stripped.result["race_free"]

    def test_result_payload_is_picklable_and_json(self):
        result = run_job(Job("repair", RACY))
        assert pickle.loads(pickle.dumps(result.result)) == result.result
        json.dumps(result.to_dict())


class TestErrorCapture:
    def test_parse_error(self):
        result = run_job(Job("detect", "def main( {", source_name="bad.hj"))
        assert result.status == "error"
        assert result.error["category"] == "parse"
        assert result.error["line"] == 1
        assert result.error["column"] is not None
        assert result.result is None

    def test_lex_error(self):
        result = run_job(Job("detect", "def main() { var x = `; }"))
        assert result.status == "error"
        assert result.error["category"] == "lex"

    def test_validation_error(self):
        result = run_job(Job("detect", "def f() { }"))  # no main()
        assert result.status == "error"
        assert result.error["category"] == "validate"

    def test_runtime_fault(self):
        source = "def main() { var a = new int[2]; a[5] = 1; }"
        result = run_job(Job("detect", source))
        assert result.status == "error"
        assert result.error["category"] == "runtime"

    def test_step_limit(self):
        result = run_job(Job("detect", RACY, max_ops=3))
        assert result.status == "error"
        assert result.error["category"] == "step-limit"

    def test_repair_error(self, monkeypatch):
        from repro.repair import insertion

        monkeypatch.setattr(insertion.InsertionFinder, "find",
                            lambda self, *a, **k: None)
        result = run_job(Job("repair", RACY))
        assert result.status == "error"
        assert result.error["category"] == "repair"

    def test_internal_error_keeps_traceback(self, monkeypatch):
        import repro.races.detect as detect_mod

        def boom(*args, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(detect_mod, "detect_races", boom)
        monkeypatch.setattr("repro.races.detect_races", boom)
        result = run_job(Job("detect", RACY))
        assert result.status == "error"
        assert result.error["category"] == "internal"
        assert "kaboom" in result.error["traceback"]

    def test_errors_never_raise(self):
        # A sweep of malformed inputs: run_job must always return.
        for source in ("", "}{", "def main() { undefinedcall(); }",
                       "var x = ;", "def main() { return 1 + true; }"):
            result = run_job(Job("detect", source))
            assert result.status == "error", source


class TestJobResult:
    def test_roundtrip(self):
        result = run_job(Job("detect", RACY))
        clone = JobResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.to_dict() == result.to_dict()

    def test_schema_guard(self):
        with pytest.raises(ValueError, match="schema"):
            JobResult.from_dict({"schema": 999, "status": "ok",
                                 "kind": "detect"})

    def test_deterministic_statuses(self):
        ok = run_job(Job("detect", RACY))
        assert ok.is_deterministic
        parse = run_job(Job("detect", "def main( {"))
        assert parse.is_deterministic
        assert parse.error["category"] in DETERMINISTIC_ERRORS
        job = Job("detect", RACY)
        for status in ("timeout", "crashed", "cancelled"):
            assert not JobResult.interrupted(job, status,
                                             "x").is_deterministic

    def test_describe_mentions_origin(self):
        result = run_job(Job("detect", RACY, source_name="d.hj"))
        assert "d.hj" in result.describe()
        assert "run" in result.describe()
        result.cached = True
        assert "cache" in result.describe()
