"""The multiprocessing worker pool: sharding, streaming, supervision.

The acceptance bar for the batch service is that concurrency is purely a
throughput feature: a batch must produce bit-identical race reports and
repaired sources to sequential single-shot runs, while timeouts, worker
crashes and cancellations are contained to the job they hit.
"""

import os
import signal
import time

import pytest

from repro.bench.students import population_sources
from repro.service import Job, ResultCache, WorkerPool, run_batch, run_job

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""

#: Monitored array writes keep the detector busy for a few seconds —
#: long enough for the supervisor tests to observe an in-flight job,
#: short enough to run to its natural end when a test needs that.
SLOW = """
def main() {
    var a = new int[64];
    for (var round = 0; round < 2500; round = round + 1) {
        for (var i = 0; i < 64; i = i + 1) {
            a[i] = a[i] + round;
        }
    }
}
"""


def _variant(index):
    """Distinct racy programs (different constants => different keys)."""
    return RACY.replace("x = 1", f"x = {index + 1}")


def _corpus_jobs(count=8, kind="repair"):
    sources = population_sources()[:count]
    return [Job(kind, source, source_name=name, args=(24,))
            for name, source in sources]


class TestBatchCorrectness:
    def test_batch_matches_sequential_single_shot(self):
        # The headline invariant: batch output == single-shot output,
        # for both race reports (detect) and repaired sources (repair).
        for kind in ("detect", "repair"):
            jobs = _corpus_jobs(count=8, kind=kind)
            sequential = {job.source_name: run_job(job) for job in jobs}
            batched = {job.source_name: result
                       for _, job, result in run_batch(jobs, workers=2)}
            assert set(batched) == set(sequential)
            for name, expected in sequential.items():
                got = batched[name]
                assert got.status == "ok", (name, got.error)
                if kind == "repair":
                    assert got.result["repaired_source"] == \
                        expected.result["repaired_source"], name
                    assert got.result["converged"] == \
                        expected.result["converged"]
                else:
                    assert got.result["races"] == \
                        expected.result["races"], name
                    assert got.result["race_count"] == \
                        expected.result["race_count"]

    def test_batch_with_cache_matches_sequential(self):
        jobs = _corpus_jobs(count=10)
        sequential = {job.source_name:
                      run_job(job).result["repaired_source"]
                      for job in jobs}
        cache = ResultCache()
        batched = {job.source_name: result for _, job, result
                   in run_batch(jobs, workers=2, cache=cache)}
        for name, expected_source in sequential.items():
            assert batched[name].result["repaired_source"] == \
                expected_source, name
        # The corpus repeats programs, so dedup must have fired.
        assert any(r.cached or r.coalesced for r in batched.values())

    def test_streaming_yields_every_job_exactly_once(self):
        jobs = [Job("detect", _variant(i), source_name=f"v{i}.hj")
                for i in range(7)]
        seen = [job.source_name
                for _, job, _ in run_batch(jobs, workers=3)]
        assert sorted(seen) == sorted(j.source_name for j in jobs)

    def test_error_jobs_do_not_poison_the_batch(self):
        jobs = [Job("detect", "def main( {", source_name="bad.hj"),
                Job("detect", RACY, source_name="ok.hj"),
                Job("detect", "def f() { }", source_name="nomain.hj")]
        results = {job.source_name: result
                   for _, job, result in run_batch(jobs, workers=2)}
        assert results["bad.hj"].status == "error"
        assert results["bad.hj"].error["category"] == "parse"
        assert results["nomain.hj"].error["category"] == "validate"
        assert results["ok.hj"].status == "ok"


class TestCoalescing:
    def test_in_batch_twins_run_once(self):
        cache = ResultCache()
        jobs = [Job("repair", RACY, source_name=f"twin{i}.hj")
                for i in range(5)]
        results = [r for _, _, r in run_batch(jobs, workers=2, cache=cache)]
        executed = [r for r in results if not r.cached and not r.coalesced]
        coalesced = [r for r in results if r.coalesced]
        assert len(executed) == 1
        assert len(coalesced) == 4
        assert len({r.result["repaired_source"] for r in results}) == 1
        assert cache.stats.stores == 1

    def test_second_batch_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path / "store"))
        jobs = [Job("repair", RACY, source_name="a.hj")]
        first = [r for _, _, r in run_batch(jobs, workers=1, cache=cache)]
        assert not first[0].cached
        fresh = ResultCache(str(tmp_path / "store"))  # new process' view
        second = [r for _, _, r in run_batch(jobs, workers=1, cache=fresh)]
        assert second[0].cached
        assert second[0].result == first[0].result


class TestSupervision:
    def test_timeout_kills_only_the_offender(self):
        jobs = [Job("detect", SLOW, source_name="slow.hj", timeout_s=0.6),
                Job("detect", RACY, source_name="quick.hj")]
        results = {job.source_name: result
                   for _, job, result in run_batch(jobs, workers=2)}
        assert results["slow.hj"].status == "timeout"
        assert "wall-clock" in results["slow.hj"].error["message"]
        assert results["quick.hj"].status == "ok"

    def test_pool_survives_timeout_and_reuses_replacement(self):
        with WorkerPool(workers=1) as pool:
            slow = pool.submit(Job("detect", SLOW, timeout_s=0.5))
            after = pool.submit(Job("detect", RACY, source_name="after.hj"))
            done = {}
            while len(done) < 2:
                item = pool.next_completed(timeout=10.0)
                assert item is not None, "pool stalled"
                done[item[0]] = item[1]
            assert done[slow].status == "timeout"
            assert done[after].status == "ok"

    def test_worker_crash_is_contained(self):
        with WorkerPool(workers=1) as pool:
            crash = pool.submit(Job("detect", SLOW, source_name="doomed.hj"))
            deadline = time.monotonic() + 10.0
            while pool.status(crash) != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.01)
            victim = next(h.process.pid for h in pool._handles
                          if h.job_id == crash)
            os.kill(victim, signal.SIGKILL)
            item = pool.next_completed(timeout=10.0)
            assert item is not None
            job_id, result = item
            assert job_id == crash
            assert result.status == "crashed"
            assert "died" in result.error["message"]
            # The replacement worker keeps serving.
            ok = pool.submit(Job("detect", RACY, source_name="next.hj"))
            item = pool.next_completed(timeout=10.0)
            assert item is not None and item[0] == ok
            assert item[1].status == "ok"

    def test_cancel_pending_drains_in_flight(self):
        with WorkerPool(workers=1) as pool:
            ids = [pool.submit(Job("detect", SLOW, source_name=f"{i}.hj",
                                   timeout_s=30.0))
                   for i in range(4)]
            deadline = time.monotonic() + 10.0
            while not any(pool.status(i) == "running" for i in ids):
                assert time.monotonic() < deadline
                time.sleep(0.01)
            cancelled = pool.cancel_pending()
            assert 0 < len(cancelled) <= 3
            done = {}
            while len(done) < len(ids):
                item = pool.next_completed(timeout=60.0)
                assert item is not None, "pool stalled"
                done[item[0]] = item[1]
            statuses = [done[i].status for i in ids]
            assert statuses.count("cancelled") == len(cancelled)
            # The in-flight job ran to its natural end.
            assert statuses.count("ok") == len(ids) - len(cancelled)

    def test_cancelled_results_are_not_cached(self):
        cache = ResultCache()
        with WorkerPool(workers=1, cache=cache) as pool:
            pool.submit(Job("detect", SLOW, source_name="busy.hj",
                            timeout_s=30.0))
            queued = pool.submit(Job("detect", _variant(9),
                                     source_name="queued.hj"))
            pool.cancel_pending()
            assert pool.result(queued) is not None or \
                pool.status(queued) != "queued"
        assert cache.lookup(Job("detect", _variant(9))) is None


class TestPoolApi:
    def test_workers_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_submit_requires_start(self):
        pool = WorkerPool(workers=1)
        with pytest.raises(RuntimeError, match="not started"):
            pool.submit(Job("detect", RACY))

    def test_status_lifecycle(self):
        with WorkerPool(workers=1) as pool:
            assert pool.status("job-999999") == "unknown"
            job_id = pool.submit(Job("detect", RACY))
            item = pool.next_completed(timeout=10.0)
            assert item is not None and item[0] == job_id
            assert pool.status(job_id) == "done"
            assert pool.result(job_id).status == "ok"

    def test_stats_accumulate(self):
        cache = ResultCache()
        with WorkerPool(workers=2, cache=cache) as pool:
            for _ in pool.run([Job("detect", RACY, source_name="a.hj"),
                               Job("detect", RACY, source_name="b.hj"),
                               Job("detect", "def main( {",
                                   source_name="c.hj")]):
                pass
            stats = pool.stats.to_dict()
        assert stats["submitted"] == 3
        assert stats["completed"] == 3
        assert stats["by_status"]["ok"] == 2
        assert stats["by_status"]["error"] == 1
        assert stats["coalesced"] == 1
        assert stats["latency"]["detect"]["count"] >= 1
        assert stats["jobs_per_sec"] > 0


class TestPoolTelemetry:
    def test_phase_histograms_and_snapshots(self):
        cache = ResultCache()
        with WorkerPool(workers=2, cache=cache) as pool:
            for _ in pool.run([Job("repair", RACY, source_name="a.hj"),
                               Job("repair", _variant(1),
                                   source_name="b.hj")]):
                pass
            stats = pool.stats_snapshot()
            metrics = pool.metrics_snapshot()
        # /stats shape: pool + workers + cache, workers enriched.
        assert stats["workers"] == 2
        assert stats["pool"]["completed"] == 2
        assert stats["pool"]["workers"]["configured"] == 2
        assert stats["pool"]["workers"]["restarts"] == 0
        assert stats["cache"]["entries"] >= 1
        # /metrics shape: per-phase summaries from job timings.
        phases = metrics["phases"]
        assert "detect_races" in phases and "placement" in phases
        entry = phases["detect_races"]
        assert entry["count"] == 2
        assert entry["max_ms"] >= entry["p95_ms"] >= entry["p50_ms"] > 0
        assert metrics["counters"]["repair.iterations"] >= 2
        assert metrics["jobs"]["completed"] == 2
        assert metrics["cache"]["misses"] >= 2

    def test_cached_results_do_not_skew_histograms(self):
        cache = ResultCache()
        with WorkerPool(workers=1, cache=cache) as pool:
            for _ in pool.run([Job("detect", RACY, source_name="a.hj")]):
                pass
            first = pool.metrics_snapshot()["phases"]["detect_races"]["count"]
            for _ in pool.run([Job("detect", RACY, source_name="b.hj")]):
                pass
            second = pool.metrics_snapshot()["phases"]["detect_races"]["count"]
        assert first == 1
        assert second == 1  # the cache hit contributed no sample

    def test_timeout_increments_worker_counters(self):
        with WorkerPool(workers=1) as pool:
            pool.submit(Job("detect", SLOW, timeout_s=0.5))
            item = pool.next_completed(timeout=30.0)
            assert item is not None and item[1].status == "timeout"
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                metrics = pool.metrics_snapshot()
                if metrics["workers"]["restarts"] >= 1:
                    break
                time.sleep(0.05)
        assert metrics["workers"]["timeouts"] == 1
        assert metrics["workers"]["restarts"] >= 1
        assert metrics["workers"]["crashes"] == 0

    def test_phase_sample_ring_is_bounded(self):
        from repro.service.pool import PoolStats
        from repro.service.jobs import JobResult

        stats = PoolStats()
        for index in range(PoolStats.MAX_PHASE_SAMPLES + 50):
            result = JobResult("ok", "detect", f"s{index}.hj", result={},
                               elapsed_s=0.001,
                               timings={"detect_races": 0.001})
            stats.record(result)
        samples = stats.phases["detect_races"]
        assert len(samples) == PoolStats.MAX_PHASE_SAMPLES
        assert stats.phases_dict()["detect_races"]["count"] \
            == PoolStats.MAX_PHASE_SAMPLES
