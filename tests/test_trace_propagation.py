"""Cross-process trace propagation: a job's spans — minted at submit,
recorded by whichever node leased it and whichever pool worker ran it —
must merge from N per-node logs into ONE connected tree per trace id.

Three levels, mirroring ``test_service_queue``: a real 2-node fleet of
OS processes draining one queue (the headline test), the pool's
SIGKILL-containment path (a timed-out worker must still leave an
explicit ``truncated`` terminal span), and the HTTP fleet-health
surface (``GET /metrics?format=prometheus`` must satisfy a strict
scraper).
"""

import json
import os
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.service import Job, JobQueue, WorkerPool
from repro.telemetry import (
    TraceContext,
    TraceLog,
    merge_trace_logs,
    parse_prometheus,
    read_records,
    trace_tree,
    validate_chrome_trace,
)

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""

#: Long enough to be mid-flight when a tiny timeout fires.
SLOW = """
def main() {
    var a = new int[64];
    for (var round = 0; round < 2500; round = round + 1) {
        for (var i = 0; i < 64; i = i + 1) {
            a[i] = a[i] + round;
        }
    }
}
"""


def make_traced_job(n, kind="detect"):
    return Job(kind, RACY.replace("x = 1", f"x = {n}"),
               source_name=f"v{n}.hj", trace=TraceContext.mint())


def _spawn_node(queue_path, node_id, trace_log):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p)
    env.pop("REPRO_TRACELOG", None)
    env.pop("REPRO_NODE_ID", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service.node",
         "--queue", queue_path, "--workers", "2",
         "--node-id", node_id, "--lease", "5.0",
         "--trace-log", trace_log],
        env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _tree_span_count(roots):
    total = 0
    stack = list(roots)
    while stack:
        span = stack.pop()
        total += 1
        stack.extend(span["children"])
    return total


class TestTwoNodePropagation:
    """Submit traced jobs, drain them with two real node processes,
    merge the three logs (submitter + 2 nodes) and audit every trace."""

    @pytest.mark.slow
    def test_spans_form_one_connected_tree_per_job(self, tmp_path):
        total = 6
        jobs = [make_traced_job(n + 1) for n in range(total)]
        queue_path = str(tmp_path / "q.db")
        queue = JobQueue(queue_path, lease_s=5.0)

        submit_log = TraceLog(str(tmp_path / "submit.jsonl"), node="cli")
        ids = []
        for job in jobs:
            submitted_at = time.time()
            queue_id = queue.submit(job, batch_id="b")
            ids.append(queue_id)
            trace = TraceContext.from_dict(job.trace)
            submit_log.span("submit", submitted_at, time.time(),
                            trace.trace_id, span_id=trace.span_id,
                            job=job.source_name, job_id=str(queue_id))

        logs = [str(tmp_path / "node-a.jsonl"),
                str(tmp_path / "node-b.jsonl")]
        nodes = [_spawn_node(queue_path, name, log)
                 for name, log in zip(("node-a", "node-b"), logs)]
        try:
            for node in nodes:
                assert node.wait(timeout=300) == 0
        finally:
            for node in nodes:
                node.kill()

        counts = queue.counts("b")
        assert counts["done"] == total, counts

        records = read_records(str(tmp_path / "submit.jsonl"))
        for log in logs:
            records.extend(read_records(log))

        for queue_id, job in zip(ids, jobs):
            trace = TraceContext.from_dict(job.trace)
            # The result row carries the trace id back to the submitter.
            assert queue.result(queue_id).trace_id == trace.trace_id

            trace_id, roots = trace_tree(records, trace.trace_id)
            assert trace_id == trace.trace_id
            # ONE connected tree: a single root — the submit span —
            # containing every span any process recorded for this job.
            assert len(roots) == 1, \
                [r["name"] for r in roots]
            root = roots[0]
            assert root["name"] == "submit"
            assert root["node"] == "cli"
            in_trace = [r for r in records
                        if r.get("trace_id") == trace.trace_id
                        and r.get("kind") == "span"]
            assert _tree_span_count(roots) == len(in_trace)

            hops = {child["name"] for child in root["children"]}
            assert "queue.wait" in hops  # the node's lease hop
            assert "job" in hops  # the worker's session root
            # The worker's phase spans made it across the process
            # boundary under the job root.
            job_span = next(c for c in root["children"]
                            if c["name"] == "job")
            phases = {c["name"] for c in job_span["children"]}
            assert "detect" in phases or "parse" in phases, phases

            # Hop latency is explainable: every child starts at or
            # after its parent did (same host, one clock).
            def check_monotone(span):
                for child in span["children"]:
                    assert child["ts_s"] >= span["ts_s"] - 0.005, \
                        (span["name"], child["name"])
                    check_monotone(child)
            check_monotone(root)

        # Every span of every job came from a known lane, and the
        # merged document is a loadable Chrome trace.
        lanes = {r["node"] for r in records}
        assert "cli" in lanes
        assert lanes & {"node-a", "node-b"}
        doc = merge_trace_logs([records])
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["records"] == len(records)


class TestTruncatedSpans:
    """A pool worker SIGKILL'd by the supervisor cannot flush its own
    session — the parent must write the ``truncated`` terminal span."""

    def test_timeout_leaves_truncated_span(self, tmp_path, monkeypatch):
        log_path = str(tmp_path / "pool.jsonl")
        monkeypatch.setenv("REPRO_TRACELOG", log_path)
        monkeypatch.setenv("REPRO_NODE_ID", "pool-host")

        job = Job("detect", SLOW, source_name="slow.hj", timeout_s=0.5,
                  trace=TraceContext.mint())
        trace = TraceContext.from_dict(job.trace)
        with WorkerPool(workers=1) as pool:
            pool.submit(job)
            item = pool.next_completed(timeout=60.0)
            assert item is not None
            _, result = item
            metrics = pool.metrics_snapshot()
        assert result.status == "timeout"
        assert result.trace_id == trace.trace_id
        assert metrics["workers"]["truncated_spans"] == 1

        truncated = [r for r in read_records(log_path)
                     if r["name"] == "truncated"]
        assert len(truncated) == 1
        rec = truncated[0]
        assert rec["level"] == "warn"
        assert rec["trace_id"] == trace.trace_id
        assert rec["parent_id"] == trace.span_id
        assert rec["args"]["reason"] == "timeout"
        assert rec["args"]["timeout_s"] == 0.5
        assert rec["node"] == "pool-host"

        # The truncated span still joins the submit-rooted tree.
        submit = {"schema": 1, "kind": "span", "level": "info",
                  "name": "submit", "node": "cli", "worker": 0,
                  "trace_id": trace.trace_id, "span_id": trace.span_id,
                  "parent_id": None, "ts_s": rec["ts_s"] - 0.001,
                  "end_s": rec["ts_s"], "args": {}}
        _, roots = trace_tree(read_records(log_path) + [submit],
                              trace.trace_id)
        assert len(roots) == 1
        assert "truncated" in {c["name"] for c in roots[0]["children"]}

    def test_ok_jobs_leave_no_truncated_span(self, tmp_path, monkeypatch):
        log_path = str(tmp_path / "pool-ok.jsonl")
        monkeypatch.setenv("REPRO_TRACELOG", log_path)
        job = make_traced_job(1)
        with WorkerPool(workers=1) as pool:
            pool.submit(job)
            _, result = pool.next_completed(timeout=60.0)
            metrics = pool.metrics_snapshot()
        assert result.status == "ok"
        assert metrics["workers"]["truncated_spans"] == 0
        names = {r["name"] for r in read_records(log_path)}
        assert "truncated" not in names
        assert "job" in names  # the session flushed normally


class TestPrometheusSurface:
    """The fleet-health endpoint must satisfy a strict scraper."""

    @pytest.fixture()
    def server(self, tmp_path):
        from repro.service import ServiceServer

        srv = ServiceServer(workers=1, port=0,
                            queue=str(tmp_path / "q.db"))
        srv.start()
        yield srv
        srv.close()

    def _get(self, server, path):
        host, port = server.address
        with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                    timeout=10) as reply:
            return reply.status, reply.headers, reply.read()

    def _run_one_job(self, server):
        host, port = server.address
        body = json.dumps({"kind": "detect", "source": RACY,
                           "source_name": "p.hj"}).encode("utf-8")
        request = urllib.request.Request(
            f"http://{host}:{port}/jobs", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=10) as reply:
            job_id = json.loads(reply.read())["ids"][0]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            _, _, payload = self._get(server, f"/jobs/{job_id}")
            if json.loads(payload)["status"] == "done":
                return
            time.sleep(0.05)
        raise AssertionError("job never completed")

    @pytest.mark.slow
    def test_prometheus_exposition_parses(self, server):
        self._run_one_job(server)
        status, headers, payload = self._get(
            server, "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        samples = parse_prometheus(payload.decode("utf-8"))
        names = {name for name, _labels, _value in samples}
        assert "repro_phase_seconds_bucket" in names
        assert "repro_queue_depth" in names
        assert "repro_jobs_by_status" in names
        assert "repro_workers_truncated_spans" in names
        depth = {labels["state"]: value for name, labels, value in samples
                 if name == "repro_queue_depth"}
        assert depth.get("done", 0) >= 1

        # The JSON shape carries the same fleet-health gauges.
        _, _, body = self._get(server, "/metrics")
        metrics = json.loads(body)
        health = metrics["queue_health"]
        assert health["retries_total"] >= 0
        assert set(health["counters"]) >= {"dedupe_hits",
                                           "expired_reclaims",
                                           "expired_failures"}

    def test_unknown_format_is_400(self, server):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as info:
            self._get(server, "/metrics?format=xml")
        assert info.value.code == 400
