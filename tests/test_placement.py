"""The dynamic finish-placement DP (Algorithms 1-3, Figures 12-13)."""

import pytest

from repro.errors import RepairError
from repro.repair.placement import (
    covers_all_edges,
    is_laminar,
    placement_cost,
    solve_placement,
)


def solve(times, is_async, edges, valid=None):
    solution = solve_placement(times, is_async, edges, valid)
    assert solution is not None
    return solution


class TestBaseCases:
    def test_single_step(self):
        solution = solve([7], [False], [])
        assert solution.cost == 7
        assert solution.finishes == []
        assert solution.est_after == 7

    def test_single_async(self):
        solution = solve([7], [True], [])
        assert solution.cost == 7
        assert solution.est_after == 0  # the next node starts immediately

    def test_two_independent_asyncs_run_in_parallel(self):
        solution = solve([10, 20], [True, True], [])
        assert solution.cost == 20
        assert solution.finishes == []

    def test_steps_serialize(self):
        solution = solve([10, 20], [False, False], [])
        assert solution.cost == 30

    def test_async_then_step_overlap(self):
        # The step runs while the async is in flight.
        solution = solve([10, 4], [True, False], [])
        assert solution.cost == 10

    def test_empty_graph_rejected(self):
        with pytest.raises(RepairError):
            solve_placement([], [], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(RepairError):
            solve_placement([1], [True, False], [])

    def test_bad_edge_rejected(self):
        with pytest.raises(RepairError):
            solve_placement([1, 2], [True, True], [(1, 0)])

    def test_non_async_source_rejected(self):
        with pytest.raises(RepairError):
            solve_placement([1, 2], [False, True], [(0, 1)])


class TestEdgeCovering:
    def test_simple_dependence_forces_finish(self):
        solution = solve([5, 5], [True, False], [(0, 1)])
        assert solution.finishes == [(0, 0)]
        assert solution.cost == 10

    def test_finish_set_covers_every_edge(self):
        times = [4, 9, 2, 7, 3]
        is_async = [True, True, False, True, False]
        edges = [(0, 2), (1, 4), (3, 4)]
        solution = solve(times, is_async, edges)
        assert covers_all_edges(edges, solution.finishes)

    def test_cost_matches_simulation(self):
        times = [4, 9, 2, 7, 3]
        is_async = [True, True, False, True, False]
        edges = [(0, 2), (1, 4), (3, 4)]
        solution = solve(times, is_async, edges)
        assert solution.cost == placement_cost(times, is_async,
                                               solution.finishes)


class TestPaperExamples:
    def test_figure_3_4_example(self):
        # A..F with times 500,10,10,400,600,500; deps B->D, A->F, D->F.
        times = [500, 10, 10, 400, 600, 500]
        is_async = [True] * 6
        edges = [(1, 3), (0, 5), (3, 5)]
        # The CPLs the paper lists in Figure 4:
        assert placement_cost(times, is_async, [(0, 0), (1, 1), (3, 3)]) == 1510
        assert placement_cost(times, is_async, [(0, 1), (3, 3)]) == 1500
        assert placement_cost(times, is_async, [(0, 2), (3, 3)]) == 1500
        assert placement_cost(times, is_async, [(0, 4), (1, 1)]) == 1110
        solution = solve(times, is_async, edges)
        assert solution.cost <= 1110
        assert covers_all_edges(edges, solution.finishes)

    def test_section_5_2_fibonacci_example(self):
        # Vertices 1..4 = Step:5, Async1:6, Async2:10, Step:14 with
        # t = (5, 20, 15, 5) and edges (2,4), (3,4): the paper infers the
        # placement {(2, 3)} — 0-based {(1, 2)}.
        solution = solve([5, 20, 15, 5], [False, True, True, False],
                         [(1, 3), (2, 3)])
        assert solution.finishes == [(1, 2)]
        assert solution.cost == 5 + max(20, 15) + 5

    def test_figure5_scoping_example(self):
        # A1 A2 A3 A4; edges A2->A4, A3->A4; a finish around {A2, A3} only
        # is not valid (it would have to cut through the if block).
        times = [5, 5, 5, 5]
        is_async = [True] * 4

        def valid(i, k):
            return not (i == 1 and k == 2)

        solution = solve(times, is_async, [(1, 3), (2, 3)], valid)
        assert covers_all_edges([(1, 3), (2, 3)], solution.finishes)
        assert (1, 2) not in solution.finishes


class TestValidity:
    def test_unsatisfiable_returns_none(self):
        # An edge must be covered but no finish is ever valid.
        solution = solve_placement([1, 1], [True, False], [(0, 1)],
                                   valid=lambda i, k: False)
        assert solution is None

    def test_valid_fallback_to_wider_finish(self):
        # (0,0) invalid but (0,1) allowed: the DP must pick the wider wrap.
        def valid(i, k):
            return (i, k) != (0, 0)

        solution = solve([5, 5, 5], [True, True, False], [(0, 2)], valid)
        assert covers_all_edges([(0, 2)], solution.finishes)
        assert (0, 0) not in solution.finishes

    def test_valid_memoised(self):
        calls = []

        def valid(i, k):
            calls.append((i, k))
            return True

        solve([1] * 6, [True] * 6, [(0, 5), (1, 4), (2, 3)], valid)
        assert len(calls) == len(set(calls))


class TestChains:
    def test_serial_chain_of_dependences(self):
        n = 5
        edges = [(i, i + 1) for i in range(n - 1)]
        solution = solve([3] * n, [True] * n, edges)
        assert solution.cost == 3 * n
        assert covers_all_edges(edges, solution.finishes)

    def test_all_pairs_conflicts_serialize(self):
        n = 4
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        solution = solve([2] * n, [True] * n, edges)
        assert solution.cost == 2 * n

    def test_fan_in(self):
        # Many asyncs feeding one sink: one finish around all of them.
        edges = [(i, 4) for i in range(4)]
        solution = solve([10, 20, 30, 40, 5], [True] * 4 + [False], edges)
        assert solution.cost == 45
        assert covers_all_edges(edges, solution.finishes)

    def test_independent_clusters(self):
        # Two separate source->sink islands; finishes stay local.
        times = [10, 2, 10, 2]
        is_async = [True, False, True, False]
        edges = [(0, 1), (2, 3)]
        solution = solve(times, is_async, edges)
        assert solution.cost == 24
        assert len(solution.finishes) == 2


class TestCostModel:
    def test_is_laminar_accepts_nesting(self):
        assert is_laminar([(0, 5), (1, 2), (3, 4)])
        assert is_laminar([(0, 3), (0, 1)])
        assert is_laminar([(2, 5), (3, 5)])

    def test_is_laminar_rejects_partial_overlap(self):
        assert not is_laminar([(0, 2), (1, 3)])

    def test_placement_cost_rejects_non_laminar(self):
        with pytest.raises(RepairError):
            placement_cost([1, 1, 1, 1], [True] * 4, [(0, 2), (1, 3)])

    def test_nested_finishes_cost(self):
        # finish { finish { A } B }: A joins, then B runs and joins.
        times = [10, 20]
        cost = placement_cost(times, [True, True], [(0, 1), (0, 0)])
        assert cost == 30

    def test_covers_all_edges_semantics(self):
        # (s, e) covers (x, y) iff s <= x <= e < y.
        assert covers_all_edges([(1, 3)], [(0, 2)])
        assert covers_all_edges([(1, 3)], [(1, 1)])
        assert not covers_all_edges([(1, 3)], [(1, 3)])  # e == y
        assert not covers_all_edges([(1, 3)], [(2, 2)])  # s > x
