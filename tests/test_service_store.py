"""The cache's durable layer: sharded stores, LRU bounding, sharing."""

import json
import os
import time

import pytest

from repro.service import (
    DirectoryStore,
    Job,
    JobResult,
    NullStore,
    ResultCache,
    open_store,
    run_job,
)

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""


def entry(tag, pad=0):
    return {"tag": tag, "pad": "x" * pad}


class TestDirectoryStoreLayout:
    def test_round_trip(self, tmp_path):
        store = DirectoryStore(str(tmp_path))
        store.write(KEY_A, entry("a"))
        assert store.read(KEY_A) == entry("a")
        assert store.read(KEY_B) is None
        assert store.count() == 1

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        store = DirectoryStore(str(tmp_path))
        store.write(KEY_A, entry("a"))
        store.write(KEY_B, entry("b"))
        assert (tmp_path / "aa" / f"{KEY_A}.json").is_file()
        assert (tmp_path / "bb" / f"{KEY_B}.json").is_file()
        assert not (tmp_path / f"{KEY_A}.json").exists()

    def test_legacy_flat_layout_still_readable(self, tmp_path):
        # Stores written before sharding put every file at the root.
        (tmp_path / f"{KEY_A}.json").write_text(json.dumps(entry("old")))
        store = DirectoryStore(str(tmp_path))
        assert store.read(KEY_A) == entry("old")
        assert store.count() == 1

    def test_rewrite_migrates_flat_entry_to_shard(self, tmp_path):
        (tmp_path / f"{KEY_A}.json").write_text(json.dumps(entry("old")))
        store = DirectoryStore(str(tmp_path))
        store.write(KEY_A, entry("new"))
        assert not (tmp_path / f"{KEY_A}.json").exists()
        assert store.read(KEY_A) == entry("new")
        assert store.count() == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = DirectoryStore(str(tmp_path))
        store.write(KEY_A, entry("a"))
        path = tmp_path / "aa" / f"{KEY_A}.json"
        path.write_text("{ not json")
        assert store.read(KEY_A) is None

    def test_two_instances_share_one_directory(self, tmp_path):
        writer = DirectoryStore(str(tmp_path))
        reader = DirectoryStore(str(tmp_path))
        writer.write(KEY_A, entry("shared"))
        assert reader.read(KEY_A) == entry("shared")


class TestEviction:
    def _aged_write(self, store, key, tag, pad, mtime):
        """Write an entry and pin its mtime (the LRU rank)."""
        store.write(key, entry(tag, pad))
        os.utime(store._shard_file(key), (mtime, mtime))

    def test_oldest_entries_evicted_beyond_budget(self, tmp_path):
        probe = DirectoryStore(str(tmp_path / "probe"))
        probe.write(KEY_A, entry("probe", 200))
        size = probe.size_bytes()
        store = DirectoryStore(str(tmp_path / "store"),
                               max_bytes=int(size * 2.5))
        base = time.time() - 1000
        self._aged_write(store, KEY_A, "a", 200, base)
        self._aged_write(store, KEY_B, "b", 200, base + 10)
        store.write(KEY_C, entry("c", 200))  # newest; pushes over budget
        assert store.read(KEY_A) is None, "oldest entry should be evicted"
        assert store.read(KEY_B) == entry("b", 200)
        assert store.read(KEY_C) == entry("c", 200)
        assert store.evictions == 1
        assert store.size_bytes() <= store.max_bytes

    def test_read_hit_refreshes_recency(self, tmp_path):
        probe = DirectoryStore(str(tmp_path / "probe"))
        probe.write(KEY_A, entry("probe", 200))
        size = probe.size_bytes()
        store = DirectoryStore(str(tmp_path / "store"),
                               max_bytes=int(size * 2.5))
        base = time.time() - 1000
        self._aged_write(store, KEY_A, "a", 200, base)
        self._aged_write(store, KEY_B, "b", 200, base + 10)
        assert store.read(KEY_A) is not None  # touch: A is now newest
        store.write(KEY_C, entry("c", 200))
        assert store.read(KEY_A) == entry("a", 200)
        assert store.read(KEY_B) is None, "the untouched entry goes first"

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = DirectoryStore(str(tmp_path))
        for index in range(20):
            store.write(f"{index:02x}" + "0" * 62, entry("x", 500))
        assert store.evictions == 0
        assert store.count() == 20

    def test_bad_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DirectoryStore(str(tmp_path), max_bytes=0)


class TestOpenStore:
    def test_no_path_is_memory_only(self):
        assert isinstance(open_store(None), NullStore)

    def test_path_is_directory_store(self, tmp_path):
        store = open_store(str(tmp_path), max_mb=1.0)
        assert isinstance(store, DirectoryStore)
        assert store.max_bytes == 1024 * 1024

    def test_max_mb_without_directory_rejected(self):
        with pytest.raises(ValueError):
            open_store(None, max_mb=1.0)


class TestCacheOverStore:
    def test_cache_max_mb_evicts_and_counts(self, tmp_path):
        job = Job("repair", RACY, source_name="r.hj")
        probe = ResultCache(str(tmp_path / "probe"))
        result = run_job(job)
        probe.put(probe.key_for(job), result)
        size = probe.store.size_bytes()

        cache = ResultCache(str(tmp_path / "cache"),
                            max_mb=(size * 1.5) / (1024 * 1024))
        variants = [RACY.replace("x = 1", f"x = {n}") for n in range(1, 5)]
        for index, source in enumerate(variants):
            vjob = Job("repair", source, source_name=f"v{index}.hj")
            cache.put(cache.key_for(vjob), run_job(vjob))
        stats = cache.stats_dict()
        assert stats["evictions"] >= 1
        assert cache.store.size_bytes() <= cache.store.max_bytes

    def test_nodes_share_hits_through_one_store(self, tmp_path):
        job = Job("repair", RACY, source_name="shared.hj")
        node_a = ResultCache(str(tmp_path / "shared"))
        node_b = ResultCache(str(tmp_path / "shared"))
        node_a.put(node_a.key_for(job), run_job(job))
        hit = node_b.lookup(job)
        assert hit is not None and hit.cached
        assert hit.result["converged"]
