"""The durable queue tier: leases, retries, nodes, crash-resume.

The queue's durability contract (DESIGN.md §13) is exercised at three
levels: the SQLite state machine directly (deterministic ``now=`` time
travel, no sleeps), :class:`QueueWorker` nodes in threads, and — the
real thing — a node *process* SIGKILL'd mid-batch, whose leased jobs
must land exactly once on a surviving node with results identical to an
undisturbed run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import (
    Job,
    JobQueue,
    JobResult,
    QueueWorker,
    ResultCache,
    batch_dedupe_key,
    derive_batch_id,
    run_job,
)

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""


def racy_variant(n):
    return RACY.replace("x = 1", f"x = {n}")


def make_job(n=1, kind="repair"):
    return Job(kind, racy_variant(n), source_name=f"v{n}.hj")


def ok_result(job):
    return JobResult("ok", job.kind, job.source_name, result={"n": 1})


class TestLeaseProtocol:
    def test_submit_claim_complete_round_trip(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        queue_id = queue.submit(make_job(), batch_id="b1")
        assert queue.counts()["queued"] == 1
        claimed = queue.claim("node-a")
        assert claimed is not None
        got_id, job, attempt = claimed
        assert got_id == queue_id and attempt == 1
        assert job.source_name == "v1.hj"
        assert queue.counts()["leased"] == 1
        assert queue.complete(queue_id, "node-a", ok_result(job))
        assert queue.counts()["done"] == 1
        stored = queue.result(queue_id)
        assert stored.status == "ok" and stored.result == {"n": 1}

    def test_claims_are_fifo(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        ids = [queue.submit(make_job(n), now=100.0 + n) for n in range(3)]
        claimed = [queue.claim("node-a")[0] for _ in range(3)]
        assert claimed == ids

    def test_empty_queue_claims_none(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        assert queue.claim("node-a") is None

    def test_completion_is_exactly_once(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        queue_id = queue.submit(make_job())
        _, job, _ = queue.claim("node-a")
        assert queue.complete(queue_id, "node-a", ok_result(job))
        assert not queue.complete(queue_id, "node-a", ok_result(job))

    def test_completion_fenced_on_owner(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        queue_id = queue.submit(make_job())
        _, job, _ = queue.claim("node-a")
        assert not queue.complete(queue_id, "node-b", ok_result(job))
        assert queue.counts()["leased"] == 1

    def test_expired_lease_is_reoffered(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), lease_s=10.0)
        queue_id = queue.submit(make_job(), now=0.0)
        assert queue.claim("node-a", now=100.0) is not None
        # Within the lease the job is invisible to other nodes.
        assert queue.claim("node-b", now=105.0) is None
        # Past it, node-b inherits the work with the attempt counted.
        reclaimed = queue.claim("node-b", now=111.0)
        assert reclaimed is not None
        assert reclaimed[0] == queue_id and reclaimed[2] == 2

    def test_late_completion_after_reclaim_is_discarded(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), lease_s=10.0)
        queue_id = queue.submit(make_job(), now=0.0)
        _, job, _ = queue.claim("node-a", now=100.0)
        queue.claim("node-b", now=111.0)
        # node-a comes back from the dead with a stale result.
        assert not queue.complete(queue_id, "node-a", ok_result(job))
        assert queue.complete(queue_id, "node-b", ok_result(job))
        assert queue.counts()["done"] == 1

    def test_heartbeat_extends_lease(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), lease_s=10.0)
        queue.submit(make_job(), now=0.0)
        queue_id, _, _ = queue.claim("node-a", now=100.0)
        assert queue.heartbeat(queue_id, "node-a", now=108.0)
        # Would have expired at 110 without the heartbeat (now 118).
        assert queue.claim("node-b", now=112.0) is None
        assert queue.claim("node-b", now=119.0) is not None

    def test_heartbeat_fails_once_lease_is_lost(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), lease_s=10.0)
        queue.submit(make_job(), now=0.0)
        queue_id, _, _ = queue.claim("node-a", now=100.0)
        queue.claim("node-b", now=111.0)
        assert not queue.heartbeat(queue_id, "node-a", now=112.0)

    def test_retry_budget_fails_job_with_structured_result(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"), lease_s=10.0,
                         max_attempts=2)
        queue_id = queue.submit(make_job(), now=0.0)
        assert queue.claim("node-a", now=100.0) is not None
        assert queue.claim("node-a", now=120.0) is not None  # attempt 2
        # Third expiry exhausts the budget: the job fails, not re-leases.
        assert queue.claim("node-a", now=140.0) is None
        assert queue.counts()["failed"] == 1
        outcome = queue.result(queue_id)
        assert outcome.status == "crashed"
        assert "retry budget" in outcome.error["message"]

    def test_release_refunds_the_attempt(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        queue_id = queue.submit(make_job())
        queue.claim("node-a")
        assert queue.release(queue_id, "node-a")
        row = queue.status(queue_id)
        assert row["state"] == "queued" and row["attempts"] == 0
        assert queue.claim("node-b")[2] == 1

    def test_drain_cancels_queued_not_leased(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        first = queue.submit(make_job(1), batch_id="b", now=1.0)
        second = queue.submit(make_job(2), batch_id="b", now=2.0)
        leased_id, _, _ = queue.claim("node-a")  # FIFO: leases `first`
        assert leased_id == first
        assert queue.drain("b") == 1
        counts = queue.counts("b")
        assert counts["cancelled"] == 1 and counts["leased"] == 1
        assert queue.status(second)["state"] == "cancelled"
        assert queue.result(second).status == "cancelled"


class TestDurabilityAndIdentity:
    def test_state_survives_reopen(self, tmp_path):
        path = str(tmp_path / "q.db")
        first = JobQueue(path)
        queue_id = first.submit(make_job(), batch_id="b")
        first.close()
        second = JobQueue(path)
        assert second.counts("b")["queued"] == 1
        claimed = second.claim("node-a")
        assert claimed is not None and claimed[0] == queue_id

    def test_dedupe_key_makes_submission_idempotent(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = make_job()
        key = batch_dedupe_key("b", job)
        first = queue.submit(job, batch_id="b", dedupe_key=key)
        assert queue.submit(job, batch_id="b", dedupe_key=key) == first
        assert queue.counts()["total"] == 1

    def test_resubmission_never_reruns_done_work(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        job = make_job()
        key = batch_dedupe_key("b", job)
        queue_id = queue.submit(job, dedupe_key=key)
        _, claimed, _ = queue.claim("node-a")
        queue.complete(queue_id, "node-a", ok_result(claimed))
        assert queue.submit(job, dedupe_key=key) == queue_id
        assert queue.counts()["done"] == 1 and queue.counts()["total"] == 1
        assert queue.claim("node-b") is None

    def test_batch_identity_is_content_derived(self):
        jobs_a = [make_job(1), make_job(2)]
        jobs_b = [make_job(1), make_job(2)]
        assert derive_batch_id(jobs_a) == derive_batch_id(jobs_b)
        assert derive_batch_id(jobs_a) != derive_batch_id([make_job(3)])

    def test_dedupe_keys_distinct_across_batches(self):
        job = make_job()
        assert batch_dedupe_key("b1", job) != batch_dedupe_key("b2", job)

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JobQueue(str(tmp_path / "q.db"), lease_s=0)
        with pytest.raises(ValueError):
            JobQueue(str(tmp_path / "q.db"), max_attempts=0)


class TestQueueWorker:
    def test_drains_a_batch_and_lands_results(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        ids = [queue.submit(make_job(n), batch_id="b") for n in (1, 2, 3)]
        worker = QueueWorker(queue, workers=2, node_id="n1")
        done = worker.run_until_drained("b")
        assert done == 3
        for queue_id in ids:
            stored = queue.result(queue_id)
            assert stored.status == "ok"
            assert stored.result["converged"]
        assert queue.unfinished("b") == 0

    def test_two_nodes_share_one_queue_exactly_once(self, tmp_path):
        import threading

        queue_path = str(tmp_path / "q.db")
        setup = JobQueue(queue_path)
        total = 6
        for n in range(total):
            setup.submit(make_job(n + 1), batch_id="b")
        workers = [QueueWorker(JobQueue(queue_path), workers=1,
                               node_id=f"n{i}") for i in range(2)]
        done_counts = [0, 0]

        def drain(index):
            done_counts[index] = workers[index].run_until_drained("b")

        threads = [threading.Thread(target=drain, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert sum(done_counts) == total, "each job lands exactly once"
        counts = setup.counts("b")
        assert counts["done"] == total
        assert counts["failed"] == 0 and counts["queued"] == 0

    def test_nodes_share_the_result_cache(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        cache_dir = str(tmp_path / "cache")
        queue.submit(make_job(1), batch_id="b1")
        QueueWorker(queue, cache=ResultCache(cache_dir),
                    node_id="n1").run_until_drained("b1")
        # A different node, later, same store directory: pure hits.
        queue_id = queue.submit(make_job(1), batch_id="b2")
        QueueWorker(queue, cache=ResultCache(cache_dir),
                    node_id="n2").run_until_drained("b2")
        assert queue.result(queue_id).cached

    def test_stop_releases_unfinished_leases(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q.db"))
        queue_id = queue.submit(make_job())
        worker = QueueWorker(queue, node_id="n1")
        # Claim by hand onto the node's books, then stop before running.
        claimed_id, _job, _ = queue.claim("n1")
        worker._in_flight["fake-pool-id"] = claimed_id
        worker.pool.start()
        worker.stop()
        assert worker.released == 1
        assert queue.status(queue_id)["state"] == "queued"


def _strip_clocks(value):
    """Drop wall-clock measurements (``*_s`` keys) recursively: they
    vary run to run; everything else must not."""
    if isinstance(value, dict):
        return {key: _strip_clocks(inner) for key, inner in value.items()
                if not key.endswith("_s")}
    if isinstance(value, list):
        return [_strip_clocks(inner) for inner in value]
    return value


def deterministic_payload(result_dict):
    """The run-invariant portion of a result: what must be identical
    between a crash-recovered batch and an undisturbed one."""
    return {key: _strip_clocks(result_dict[key])
            for key in ("status", "kind", "source_name", "result", "error")}


class TestCrashResume:
    """SIGKILL a real node process mid-batch; no job may be lost,
    duplicated, or answered differently."""

    @pytest.mark.slow
    def test_sigkilled_node_loses_nothing(self, tmp_path):
        total = 6
        jobs = [make_job(n + 1) for n in range(total)]
        queue_path = str(tmp_path / "q.db")
        queue = JobQueue(queue_path, lease_s=1.0)
        ids = [queue.submit(job, batch_id="b",
                            dedupe_key=batch_dedupe_key("b", job))
               for job in jobs]

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro.service.node",
             "--queue", queue_path, "--workers", "2",
             "--node-id", "victim", "--lease", "1.0"],
            env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Wait until the victim actually holds leases, then kill it
            # without ceremony -- the fault the lease protocol absorbs.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if queue.counts("b")["leased"] > 0:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("victim node never leased a job")
        finally:
            victim.kill()
            victim.wait(timeout=30)

        leaked = queue.counts("b")
        assert leaked["done"] + leaked["leased"] + leaked["queued"] == total

        survivor = QueueWorker(JobQueue(queue_path, lease_s=1.0),
                               workers=2, node_id="survivor", lease_s=1.0)
        survivor.run_until_drained("b")

        counts = queue.counts("b")
        assert counts["done"] == total, counts
        assert counts["failed"] == 0 and counts["cancelled"] == 0

        # Exactly once, with results identical to an undisturbed run.
        for queue_id, job in zip(ids, jobs):
            recovered = deterministic_payload(
                queue.result(queue_id).to_dict())
            undisturbed = deterministic_payload(run_job(job).to_dict())
            assert recovered == undisturbed, job.source_name
