"""Pretty-printer tests: rendering and the parse round trip."""

import pytest

from repro.lang import ast, parse, pretty
from repro.lang.pretty import expr_to_str, stmt_to_str
from repro.lang.transform import ast_equal


def roundtrip(source: str) -> None:
    program = parse(source)
    text = pretty(program)
    reparsed = parse(text)
    assert ast_equal(program, reparsed), f"round trip changed:\n{text}"


class TestRoundTrip:
    def test_simple_function(self):
        roundtrip("def main() { var x = 1; print(x); }")

    def test_control_flow(self):
        roundtrip("""
        def main() {
            for (var i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { print(i); } else { continue; }
            }
            while (false) { break; }
        }""")

    def test_async_finish(self):
        roundtrip("""
        def main() {
            finish {
                async { print(1); }
                async print(2);
            }
        }""")

    def test_structs_and_globals(self):
        roundtrip("""
        struct Pair { a, b }
        var g = 3;
        var h;
        def main() {
            var p = new Pair();
            p.a = g;
            print(p.a);
        }""")

    def test_operator_soup(self):
        roundtrip("""
        def main() {
            var x = 1 + 2 * 3 - 4 / 5 % 6;
            var y = (1 + 2) * (3 - 4);
            var z = x << 2 & 3 | 4 ^ 5;
            var w = -x + ~y * !true;
            var c = x < y && y <= z || !(x == z);
            print(c);
        }""")

    def test_nested_data_access(self):
        roundtrip("""
        struct Node { next, val }
        def main() {
            var arr = new int[4][5];
            arr[0][1] = 2;
            var n = new Node();
            n.val = arr[0][1];
            print(n.val);
        }""")

    def test_float_and_string_literals(self):
        roundtrip("""
        def main() {
            var a = 0.5;
            var b = 1e-09;
            var s = "tab\\t quote\\" end";
            print(a, b, s);
        }""")

    def test_synthetic_marker_survives_as_comment(self):
        source = "def main() { finish { async print(1); } }"
        program = parse(source)
        finish = program.main.body.stmts[0]
        finish.synthetic = True
        text = pretty(program)
        assert "// repair" in text
        # The comment is trivia: the reparsed program is structurally equal.
        assert ast_equal(program, parse(text))


class TestExprToStr:
    def test_minimal_parentheses(self):
        expr = parse("def main() { var x = 1 + 2 * 3; }") \
            .main.body.stmts[0].init
        assert expr_to_str(expr) == "1 + 2 * 3"

    def test_parentheses_preserved_when_needed(self):
        expr = parse("def main() { var x = (1 + 2) * 3; }") \
            .main.body.stmts[0].init
        assert expr_to_str(expr) == "(1 + 2) * 3"

    def test_unary_nesting(self):
        expr = parse("def main() { var x = -(1 + 2); }") \
            .main.body.stmts[0].init
        assert expr_to_str(expr) == "-(1 + 2)"

    def test_string_escaping(self):
        expr = parse(r'def main() { var s = "a\nb\"c"; }') \
            .main.body.stmts[0].init
        assert expr_to_str(expr) == r'"a\nb\"c"'

    def test_unknown_node_raises(self):
        with pytest.raises(TypeError):
            expr_to_str(object())


class TestStmtToStr:
    def test_single_statement(self):
        stmt = parse("def main() { x(); }").main.body.stmts[0]
        assert stmt_to_str(stmt) == "x();"

    def test_if_without_else(self):
        stmt = parse("def main() { if (true) { print(1); } }") \
            .main.body.stmts[0]
        text = stmt_to_str(stmt)
        assert text.startswith("if (true) {")
        assert "else" not in text
