"""The array detection core (races/arraycore.py): differential tests.

The core's contract is bit-identical output to the object engine — same
race report (order, kinds, step indices, AST nodes, task ids,
addresses), same S-DPST, same bag-union and access counters — for both
ESP-bags variants, on both the stdlib and numpy batch-filter paths.
These tests enforce that over the Table-1 bench corpus and the
student-homework corpus, mirroring how test_compiled_engine.py pins the
two execution engines to each other.
"""

from __future__ import annotations

import pytest

from repro.bench.students import (
    MATCHED_TEMPLATES,
    OVERSYNC_TEMPLATES,
    RACY_TEMPLATES,
)
from repro.bench.suite import BENCHMARK_ORDER, get_benchmark
from repro.dpst.tree import Dpst
from repro.lang import parse, strip_finishes
from repro.races import detect_races
from repro.races.arraycore import numpy_mode, run_arraycore
from repro.races.detect import CORES, default_core
from tests.conftest import build
from tests.test_replay import dpst_sig, norm_report

ALGORITHMS = ("mrw", "srw")
NUMPY_MODES = ("0", "1")

STUDENT_SOURCES = [
    pytest.param(source, id=f"student-{i}")
    for i, (_desc, source) in enumerate(
        RACY_TEMPLATES + OVERSYNC_TEMPLATES + MATCHED_TEMPLATES)
]

#: dup-heavy shapes: repeated same-address accesses inside one step
#: exercise the within-segment dedup filter on both race outcomes.
DUP_HEAVY = {
    "dup-racy": """
    var x = 0;
    var y = 0;
    def main() {
        async {
            for (var i = 0; i < 50; i = i + 1) { x = x + 1; }
        }
        for (var i = 0; i < 50; i = i + 1) { y = y + x; }
        print(y);
    }
    """,
    "dup-clean": """
    var x = 0;
    var y = 0;
    def main() {
        finish {
            async {
                for (var i = 0; i < 50; i = i + 1) { x = x + 1; }
            }
        }
        for (var i = 0; i < 50; i = i + 1) { y = y + x; }
        print(y);
    }
    """,
    "dup-mixed-kinds": """
    var a = 0;
    def main() {
        async { a = a + a; a = a + 1; }
        async { a = a + 2; }
        print(a + a + a);
    }
    """,
}


def detection_sig(detection):
    return (norm_report(detection.report), dpst_sig(detection.dpst),
            detection.detector.monitored_accesses,
            detection.detector.bags.unions,
            detection.dpst_node_count,
            detection.execution.ops)


def run_differential(program_factory, args, algorithm, monkeypatch,
                     numpy_env):
    monkeypatch.setenv("REPRO_NUMPY", numpy_env)
    array = detect_races(program_factory(), args, algorithm=algorithm,
                         core="array")
    obj = detect_races(program_factory(), args, algorithm=algorithm,
                       core="object")
    assert detection_sig(array) == detection_sig(obj)
    return array, obj


class TestBenchDifferential:
    @pytest.mark.parametrize("numpy_env", NUMPY_MODES)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_stripped_bench_identical(self, name, algorithm, numpy_env,
                                      monkeypatch):
        spec = get_benchmark(name)
        run_differential(lambda: strip_finishes(spec.parse()),
                         spec.test_args, algorithm, monkeypatch, numpy_env)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_original_bench_identical(self, algorithm, monkeypatch):
        # Race-free originals: the lazy-DPST path, spot-checked on two.
        for name in ("fibonacci", "mergesort"):
            spec = get_benchmark(name)
            array, _obj = run_differential(spec.parse, spec.test_args,
                                           algorithm, monkeypatch, "0")
            assert array.report.is_race_free


class TestStudentDifferential:
    @pytest.mark.parametrize("numpy_env", NUMPY_MODES)
    @pytest.mark.parametrize("source", STUDENT_SOURCES)
    def test_submission_identical(self, source, numpy_env, monkeypatch):
        for algorithm in ALGORITHMS:
            run_differential(lambda: parse(source), (40,), algorithm,
                             monkeypatch, numpy_env)


class TestDupHeavy:
    @pytest.mark.parametrize("numpy_env", NUMPY_MODES)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("name", sorted(DUP_HEAVY))
    def test_dedup_preserves_reports(self, name, algorithm, numpy_env,
                                     monkeypatch):
        run_differential(lambda: build(DUP_HEAVY[name]), (), algorithm,
                         monkeypatch, numpy_env)


class TestCoreSelection:
    def test_default_core_is_array(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARRAYCORE", raising=False)
        assert default_core() == "array"
        assert set(CORES) == {"array", "object"}

    @pytest.mark.parametrize("env,expected", [
        ("0", "object"), ("off", "object"), ("object", "object"),
        ("1", "array"), ("on", "array"), ("array", "array"),
        ("", "array"),
    ])
    def test_env_selects_core(self, env, expected, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAYCORE", env)
        assert default_core() == expected

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError, match="core"):
            detect_races(build("def main() {}"), core="jit")

    def test_custom_detector_uses_object_core(self):
        from repro.races import VectorClockDetector
        detection = detect_races(
            build("var x = 0; def main() { async { x = 1; } print(x); }"),
            detector=VectorClockDetector())
        assert isinstance(detection.detector, VectorClockDetector)
        assert not detection.report.is_race_free

    def test_numpy_mode_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMPY", "0")
        assert numpy_mode() == "off"
        monkeypatch.setenv("REPRO_NUMPY", "on")
        assert numpy_mode() == "on"
        monkeypatch.delenv("REPRO_NUMPY")
        assert numpy_mode() == "auto"


class TestArrayCoreBehavior:
    RACY = "var x = 0; def main() { async { x = 1; } print(x); }"
    CLEAN = ("var x = 0; def main() { finish { async { x = 1; } } "
             "print(x); }")

    def test_racefree_detection_defers_tree(self):
        detection = detect_races(build(self.CLEAN), core="array")
        assert callable(detection._dpst)  # not materialized yet
        count = detection.dpst_node_count  # known without the tree
        assert callable(detection._dpst)
        tree = detection.dpst  # first touch materializes ...
        assert isinstance(tree, Dpst)
        assert detection.dpst is tree  # ... and caches
        assert tree.node_count() == count

    def test_racy_detection_has_tree_backed_report(self):
        detection = detect_races(build(self.RACY), core="array")
        assert not detection.report.is_race_free
        tree = detection.dpst
        by_index = {node.index: node for node in tree.walk()}
        for race in detection.report:
            # Report steps are identity-shared with the tree (the
            # placement passes compute LCAs on them).
            assert by_index[race.source.index] is race.source
            assert by_index[race.sink.index] is race.sink

    def test_record_trace_returns_trace(self):
        detection = detect_races(build(self.RACY), core="array",
                                 record_trace=True)
        trace = detection.trace
        assert trace is not None
        assert trace.output == detection.execution.output
        assert trace.ops == detection.execution.ops
        # And the trace replays through the same core.
        from repro.races.replay import replay_detection
        replayed = replay_detection(trace, build(self.RACY))
        assert norm_report(replayed.report) == \
            norm_report(detection.report)

    def test_srw_shadow_is_constant_space(self):
        detection = detect_races(build(self.RACY), algorithm="srw",
                                 core="array")
        assert detection.detector.shadow
        for entry in detection.detector.shadow.values():
            assert len(entry) == 4

    def test_forced_numpy_matches_stdlib_rows(self, monkeypatch):
        pytest.importorskip("numpy")
        source = DUP_HEAVY["dup-racy"]
        rows = {}
        for env in NUMPY_MODES:
            monkeypatch.setenv("REPRO_NUMPY", env)
            detection = detect_races(build(source), core="array")
            # Raw addresses come from a process-global counter; compare
            # the normalized report, not raw payload rows.
            rows[env] = norm_report(detection.report)
        assert rows["0"] == rows["1"] and rows["0"]

    def test_payload_races_are_report_rows(self):
        detection = detect_races(build(self.RACY), core="array")
        payload = detection.to_payload()
        assert payload["races"] == detection.report.to_rows()
        assert payload["race_count"] == len(payload["races"])
