"""Integration tests over the 12-benchmark suite (Section 7.1) at tiny
test inputs: the original is race-free, the stripped version is racy, the
repair converges, and the repaired program is output-equivalent to the
serial elision with performance at least matching the original's shape.
"""

import pytest

from repro.bench import BENCHMARK_ORDER, get_benchmark
from repro.graph import measure_program
from repro.lang import count_finishes, serial_elision, strip_finishes, validate
from repro.races import detect_races
from repro.repair import repair_program
from repro.runtime import BUILTIN_NAMES, run_program


@pytest.fixture(scope="module")
def repaired_cache():
    cache = {}

    def get(name):
        if name not in cache:
            spec = get_benchmark(name)
            buggy = strip_finishes(spec.parse())
            cache[name] = (spec, repair_program(buggy, spec.test_args))
        return cache[name]

    return get


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
class TestBenchmarkSuite:
    def test_source_is_valid(self, name, repaired_cache):
        spec = get_benchmark(name)
        validate(spec.parse(), BUILTIN_NAMES)

    def test_original_is_race_free(self, name, repaired_cache):
        spec = get_benchmark(name)
        det = detect_races(spec.parse(), spec.test_args)
        assert det.report.is_race_free, det.report.summary()

    def test_stripped_version_races(self, name, repaired_cache):
        spec = get_benchmark(name)
        buggy = strip_finishes(spec.parse())
        assert count_finishes(buggy) == 0
        det = detect_races(buggy, spec.test_args)
        assert not det.report.is_race_free

    def test_repair_converges(self, name, repaired_cache):
        spec, result = repaired_cache(name)
        assert result.converged, result.summary()
        assert result.inserted_finish_count >= 1

    def test_repaired_is_race_free(self, name, repaired_cache):
        spec, result = repaired_cache(name)
        det = detect_races(result.repaired, spec.test_args)
        assert det.report.is_race_free

    def test_repaired_output_equals_serial_elision(self, name,
                                                   repaired_cache):
        spec, result = repaired_cache(name)
        elided = serial_elision(spec.parse())
        out_repaired = run_program(result.repaired, spec.test_args).output
        out_elided = run_program(elided, spec.test_args).output
        assert out_repaired == out_elided

    def test_original_output_equals_serial_elision(self, name,
                                                   repaired_cache):
        spec = get_benchmark(name)
        out_original = run_program(spec.parse(), spec.test_args).output
        out_elided = run_program(serial_elision(spec.parse()),
                                 spec.test_args).output
        assert out_original == out_elided

    def test_repaired_cpl_close_to_original(self, name, repaired_cache):
        # The Figure 16 claim at test scale: the repaired program keeps
        # parallelism comparable to the expert-written original (allow a
        # 2x band; tiny inputs have noisy constant factors).
        spec, result = repaired_cache(name)
        original = measure_program(spec.parse(), spec.test_args, 12)
        repaired = measure_program(result.repaired, spec.test_args, 12)
        assert repaired.span <= 2 * original.span + 50


class TestSuiteMetadata:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARK_ORDER) == 12

    def test_lookup_error_lists_names(self):
        with pytest.raises(KeyError, match="fibonacci"):
            get_benchmark("not-a-benchmark")

    def test_specs_have_all_input_sizes(self):
        for name in BENCHMARK_ORDER:
            spec = get_benchmark(name)
            assert spec.repair_args and spec.perf_args and spec.test_args
            assert spec.suite in ("HJ Bench", "BOTS", "JGF", "Shootout")
