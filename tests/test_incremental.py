"""Incremental re-detection (races/incremental.py): differential,
fallback and stride tests.

Incremental replay must be *indistinguishable* from a full replay and
from re-execution — identical race reports, identical S-DPST, identical
placements and byte-identical repaired source — while re-scanning only
the dirty window (MRW re-scans nothing at all: structure only).  These
tests enforce that bit-for-bit over the multi-iteration ``stress-*``
repair workloads and the student-homework corpus, for both ESP-bags
variants, and pin down every structural-miss fallback path.
"""

from __future__ import annotations

import importlib.util
import os

import pytest

from repro import telemetry
from repro.bench.students import (
    ASSIGNMENT,
    MATCHED_TEMPLATES,
    OVERSYNC_TEMPLATES,
    RACY_TEMPLATES,
)
from repro.errors import RepairError
from repro.lang import parse, strip_finishes
from repro.races import detect_races
from repro.races.incremental import (
    IncrementalMiss,
    checkpoint_stride,
    incremental_replay,
)
from repro.races.replay import _injection_chains, replay_detection
from repro.repair import repair_program
from repro.repair.engine import RepairEngine, incremental_enabled_default
from tests.test_replay import _placement_sig, dpst_sig, norm_report

ALGORITHMS = ("mrw", "srw")


def _load_stress_programs():
    """The multi-iteration repair workloads from scripts/bench.py —
    imported from the script itself so the differential matrix always
    covers exactly what the bench measures."""
    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "scripts", "bench.py")
    spec = importlib.util.spec_from_file_location("_bench_script", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.STRESS_PROGRAMS


STRESS_PROGRAMS = _load_stress_programs()
STRESS_PARAMS = [pytest.param(name, id=name) for name in STRESS_PROGRAMS]

STUDENT_SOURCES = [
    pytest.param(source, id=f"student-{i}")
    for i, (_desc, source) in enumerate(
        RACY_TEMPLATES + OVERSYNC_TEMPLATES + MATCHED_TEMPLATES)
]

#: An early *pre-existing* (recorded) finish followed by a racy region:
#: its ``exit_finish`` event is a checkpoint site before any dirty
#: window, so SRW incremental replay can resume instead of falling back.
SRW_RESUME_SOURCE = """
def main(n) {
    var a = new int[n];
    finish {
        async {
            for (var i = 0; i < n; i = i + 1) { a[i] = i * 2; }
        }
        for (var j = 0; j < n; j = j + 1) { print(j); }
    }
    var x = 0;
    async { x = 1; }
    x = x + 1;
}
"""


def _stress_workload(name):
    source, inputs = STRESS_PROGRAMS[name]
    return parse(source, source_name=name), inputs["test"]


# ----------------------------------------------------------------------
# Replay-level differential: incremental vs full replay vs re-execution
# ----------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("name", STRESS_PARAMS)
def test_incremental_matches_full_replay_and_reexecution(name, algorithm):
    program, args = _stress_workload(name)
    recorded = detect_races(program, args, algorithm=algorithm,
                            record_trace=True, incremental=True)
    baseline = recorded.inc_state
    assert baseline is not None
    repaired = repair_program(program, args, algorithm=algorithm,
                              reuse_trace=False).repaired
    for target in (program, repaired):
        full = replay_detection(recorded.trace, target, algorithm=algorithm)
        inc = replay_detection(recorded.trace, target, algorithm=algorithm,
                               incremental=True, baseline=baseline)
        fresh = detect_races(target, args, algorithm=algorithm)
        assert norm_report(inc.report) == norm_report(full.report)
        assert norm_report(inc.report) == norm_report(fresh.report)
        assert dpst_sig(inc.dpst) == dpst_sig(full.dpst)
        assert dpst_sig(inc.dpst) == dpst_sig(fresh.dpst)
        assert inc.execution.output == fresh.execution.output
        assert inc.execution.ops == fresh.execution.ops
        assert inc.inc_state is not None  # usable as the next baseline


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("name", STRESS_PARAMS)
def test_incremental_state_chains_across_iterations(name, algorithm):
    """Thread the state through successive edits the way the engine
    does: each iteration's ``inc_state`` is the next one's baseline."""
    program, args = _stress_workload(name)
    recorded = detect_races(program, args, algorithm=algorithm,
                            record_trace=True, incremental=True)
    state = recorded.inc_state
    result = repair_program(program, args, algorithm=algorithm,
                            reuse_trace=False)
    assert len(result.iterations) >= 2
    repaired = result.repaired
    for target in (repaired,) * 2:  # re-detect twice off the same state
        full = replay_detection(recorded.trace, target, algorithm=algorithm)
        inc = replay_detection(recorded.trace, target, algorithm=algorithm,
                               incremental=True, baseline=state)
        assert norm_report(inc.report) == norm_report(full.report)
        assert dpst_sig(inc.dpst) == dpst_sig(full.dpst)
        state = inc.inc_state


# ----------------------------------------------------------------------
# Repair-pipeline differential: incremental on vs off vs re-execution
# ----------------------------------------------------------------------

def _assert_incremental_repair_equivalent(make_program, args, algorithm):
    inc = repair_program(make_program(), args, algorithm=algorithm,
                         reuse_trace=True, incremental=True)
    full = repair_program(make_program(), args, algorithm=algorithm,
                          reuse_trace=True, incremental=False)
    ree = repair_program(make_program(), args, algorithm=algorithm,
                         reuse_trace=False)
    for other in (full, ree):
        assert inc.converged == other.converged
        assert len(inc.iterations) == len(other.iterations)
        assert inc.repaired_source == other.repaired_source
        assert _placement_sig(inc) == _placement_sig(other)
        for it_inc, it_other in zip(inc.iterations, other.iterations):
            assert (norm_report(it_inc.detection.report)
                    == norm_report(it_other.detection.report))
    return inc


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("name", STRESS_PARAMS)
def test_repair_differential_stress(name, algorithm):
    source, inputs = STRESS_PROGRAMS[name]
    _assert_incremental_repair_equivalent(
        lambda: parse(source, source_name=name), inputs["test"], algorithm)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("source", STUDENT_SOURCES)
def test_repair_differential_students(source, algorithm):
    try:
        _assert_incremental_repair_equivalent(
            lambda: parse(source), (40,), algorithm)
    except RepairError:
        # Unrepairable submissions must be unrepairable in every mode.
        for kwargs in ({"incremental": False}, {"reuse_trace": False}):
            with pytest.raises(RepairError):
                repair_program(parse(source), (40,), algorithm=algorithm,
                               **kwargs)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_repair_differential_assignment(algorithm):
    _assert_incremental_repair_equivalent(
        lambda: parse(ASSIGNMENT), (40,), algorithm)


# ----------------------------------------------------------------------
# The fast/resume paths actually engage (and say so in telemetry)
# ----------------------------------------------------------------------

def test_mrw_repair_hits_fast_path():
    program, args = _stress_workload("stress-nested")
    with telemetry.session("inc") as tel:
        result = repair_program(program, args, algorithm="mrw",
                                reuse_trace=True, incremental=True)
    assert result.converged and len(result.iterations) >= 2
    counters = tel.counters.as_dict()
    # Every post-iteration-0 re-detection took the MRW fast path: no
    # access events re-scanned, no fallbacks, no replay abandoned.
    assert counters.get("incremental.hits", 0) >= 2
    assert counters.get("incremental.fallbacks", 0) == 0
    assert counters.get("repair.replay_fallbacks", 0) == 0
    assert counters.get("incremental.window_events", 0) == 0
    assert counters.get("incremental.events_total", 0) > 0
    assert result.replay_fallbacks == []


def test_srw_repair_resumes_from_checkpoint(monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_STRIDE", "1")
    with telemetry.session("inc") as tel:
        inc = repair_program(parse(SRW_RESUME_SOURCE), (30,),
                             algorithm="srw", reuse_trace=True,
                             incremental=True)
    ree = repair_program(parse(SRW_RESUME_SOURCE), (30,), algorithm="srw",
                         reuse_trace=False)
    assert inc.repaired_source == ree.repaired_source
    counters = tel.counters.as_dict()
    assert counters.get("incremental.resumes", 0) >= 1
    assert counters.get("incremental.checkpoints", 0) >= 1
    # The resume skipped the pre-existing finish region: the re-scanned
    # window is a strict fraction of the trace.
    assert 0 < counters["incremental.window_events"] \
        < counters["incremental.events_total"]


def test_srw_without_usable_checkpoint_falls_back():
    """A finish-free baseline trace has no checkpoint sites before the
    dirty window, so SRW re-scans fully — with identical results."""
    program, args = _stress_workload("stress-nested")
    with telemetry.session("inc") as tel:
        inc = repair_program(program, args, algorithm="srw",
                             reuse_trace=True, incremental=True)
    ree = repair_program(_stress_workload("stress-nested")[0], args,
                         algorithm="srw", reuse_trace=False)
    assert inc.repaired_source == ree.repaired_source
    counters = tel.counters.as_dict()
    assert counters.get("incremental.resumes", 0) == 0
    assert counters.get("incremental.fallbacks", 0) >= 1
    assert counters.get("repair.replay_fallbacks", 0) == 0


# ----------------------------------------------------------------------
# Structural-miss fallbacks
# ----------------------------------------------------------------------

def _baseline_for(program, args, algorithm="mrw"):
    recorded = detect_races(program, args, algorithm=algorithm,
                            record_trace=True, incremental=True)
    return recorded.trace, recorded.inc_state


def test_miss_without_baseline():
    program, args = _stress_workload("stress-nested")
    trace, _state = _baseline_for(program, args)
    chains = _injection_chains(program, trace.finish_nids)
    with pytest.raises(IncrementalMiss):
        incremental_replay(trace, "mrw", chains, None)


def test_miss_on_foreign_trace_and_algorithm():
    program, args = _stress_workload("stress-nested")
    trace, state = _baseline_for(program, args)
    other_trace, _ = _baseline_for(program, args)
    chains = _injection_chains(program, trace.finish_nids)
    with pytest.raises(IncrementalMiss):
        incremental_replay(other_trace, "mrw", chains, state)
    with pytest.raises(IncrementalMiss):
        incremental_replay(trace, "srw", chains, state)


def test_shrinking_chains_fall_back_to_full_replay():
    """A baseline recorded against the *repaired* program, replayed
    against the original: chains shrink, the subsequence guard trips,
    and the full replay produces the exact full-scan result."""
    program, args = _stress_workload("stress-nested")
    trace, _ = _baseline_for(program, args)
    repaired = repair_program(program, args, reuse_trace=False).repaired
    rep_state = replay_detection(trace, repaired, algorithm="mrw",
                                 incremental=True, baseline=None).inc_state
    assert rep_state is not None
    with telemetry.session("inc") as tel:
        inc = replay_detection(trace, program, algorithm="mrw",
                               incremental=True, baseline=rep_state)
    full = replay_detection(trace, program, algorithm="mrw")
    assert tel.counters.as_dict().get("incremental.fallbacks", 0) == 1
    assert norm_report(inc.report) == norm_report(full.report)
    assert dpst_sig(inc.dpst) == dpst_sig(full.dpst)


#: Race-dense: every async write races with every other, so the MRW
#: row count rivals the access count and the row transform would cost
#: more than a full re-scan.
DENSE_SOURCE = "def main(n) {\n  var x = 0;\n" + "".join(
    "  async { x = x + 1; }\n" for _ in range(24)) + "  x = x + 1;\n}\n"


def test_race_dense_trace_takes_cost_guard_fallback():
    """When baseline rows × 4 ≥ accesses the MRW fast path would be
    slower than re-scanning; the cost guard falls back to full replay —
    with identical results."""
    with telemetry.session("inc") as tel:
        inc = repair_program(parse(DENSE_SOURCE), (40,), algorithm="mrw",
                             reuse_trace=True, incremental=True)
    full = repair_program(parse(DENSE_SOURCE), (40,), algorithm="mrw",
                          reuse_trace=True, incremental=False)
    assert inc.repaired_source == full.repaired_source
    counters = tel.counters.as_dict()
    assert counters.get("incremental.fallbacks", 0) >= 1
    assert counters.get("incremental.hits", 0) == 0
    assert counters.get("repair.replay_fallbacks", 0) == 0


# ----------------------------------------------------------------------
# Checkpoint stride: parsing and edge cases
# ----------------------------------------------------------------------

def test_checkpoint_stride_env(monkeypatch):
    monkeypatch.delenv("REPRO_CKPT_STRIDE", raising=False)
    assert checkpoint_stride(800) == 100
    assert checkpoint_stride(4) == 1
    for off in ("0", "off", "none"):
        monkeypatch.setenv("REPRO_CKPT_STRIDE", off)
        assert checkpoint_stride(800) is None
    monkeypatch.setenv("REPRO_CKPT_STRIDE", "17")
    assert checkpoint_stride(800) == 17


@pytest.mark.parametrize("stride", ["1", "1000000"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_stride_edge_cases(monkeypatch, stride, algorithm):
    """Stride 1 (checkpoint at every finish exit) and stride far beyond
    the trace length (no checkpoints at all) both stay bit-identical."""
    monkeypatch.setenv("REPRO_CKPT_STRIDE", stride)
    program, args = _stress_workload("stress-nested")
    inc = repair_program(program, args, algorithm=algorithm,
                         reuse_trace=True, incremental=True)
    monkeypatch.delenv("REPRO_CKPT_STRIDE")
    ree = repair_program(_stress_workload("stress-nested")[0], args,
                         algorithm=algorithm, reuse_trace=False)
    assert inc.converged
    assert inc.repaired_source == ree.repaired_source


def test_stride_disabled_still_correct(monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_STRIDE", "off")
    program, args = _stress_workload("stress-chain")
    with telemetry.session("inc") as tel:
        inc = repair_program(program, args, algorithm="mrw",
                             reuse_trace=True, incremental=True)
    monkeypatch.delenv("REPRO_CKPT_STRIDE")
    ree = repair_program(_stress_workload("stress-chain")[0], args,
                         algorithm="mrw", reuse_trace=False)
    assert inc.repaired_source == ree.repaired_source
    counters = tel.counters.as_dict()
    assert counters.get("incremental.checkpoints", 0) == 0
    assert counters.get("incremental.hits", 0) >= 2  # MRW needs none


# ----------------------------------------------------------------------
# Engine/env/CLI toggles and result surfacing
# ----------------------------------------------------------------------

def test_incremental_env_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL", "0")
    assert not incremental_enabled_default()
    assert not RepairEngine().incremental
    monkeypatch.setenv("REPRO_INCREMENTAL", "off")
    assert not incremental_enabled_default()
    monkeypatch.delenv("REPRO_INCREMENTAL")
    assert incremental_enabled_default()
    assert RepairEngine().incremental
    # Explicit argument beats the environment.
    monkeypatch.setenv("REPRO_INCREMENTAL", "0")
    assert RepairEngine(incremental=True).incremental
    monkeypatch.delenv("REPRO_INCREMENTAL")
    # Incremental rides on replay: no replay (or no ESP-bags) — no
    # incremental, regardless of the flag.
    assert not RepairEngine(reuse_trace=False, incremental=True).incremental
    assert not RepairEngine(algorithm="vc", incremental=True).incremental


def test_cli_incremental_flags(tmp_path, capsys):
    from repro.cli import main as cli_main

    source, inputs = STRESS_PROGRAMS["stress-nested"]
    path = tmp_path / "prog.hj"
    path.write_text(source)
    arg = str(inputs["test"][0])
    assert cli_main(["repair", str(path), "--arg", arg,
                     "--incremental"]) == 0
    first = capsys.readouterr()
    assert cli_main(["repair", str(path), "--arg", arg,
                     "--no-incremental"]) == 0
    second = capsys.readouterr()
    assert first.out == second.out  # byte-identical repaired source


def test_cli_timings_report_fallbacks(tmp_path, capsys, monkeypatch):
    """--timings surfaces the replay-fallback counter, and a forced
    fallback's reason reaches the text report."""
    from repro.cli import main as cli_main
    import repro.races.replay as replay_mod
    from repro.errors import ReplayError

    source, inputs = STRESS_PROGRAMS["stress-nested"]
    path = tmp_path / "prog.hj"
    path.write_text(source)
    calls = {"n": 0}
    real = replay_mod.replay_detection

    def flaky(trace, program, algorithm="mrw", **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise ReplayError("synthetic incremental test failure")
        return real(trace, program, algorithm=algorithm, **kwargs)

    monkeypatch.setattr(replay_mod, "replay_detection", flaky)
    assert cli_main(["repair", str(path), "--arg",
                     str(inputs["test"][0]), "--timings"]) == 0
    err = capsys.readouterr().err
    assert "1 replay fallback(s)" in err
    assert "synthetic incremental test failure" in err
    assert "repair.replay_fallbacks" in err


def test_repair_payload_carries_fallbacks():
    program, args = _stress_workload("stress-nested")
    result = repair_program(program, args, reuse_trace=True,
                            incremental=True)
    payload = result.to_payload()
    assert payload["replay_fallback_count"] == 0
    assert payload["replay_fallbacks"] == []


def test_job_carries_incremental_flag():
    from repro.service import Job

    source, inputs = STRESS_PROGRAMS["stress-nested"]
    job = Job("repair", source, args=inputs["test"], incremental=False)
    data = job.to_dict()
    assert data["incremental"] is False
    assert Job.from_dict(data).incremental is False
    # Speed knobs never enter the cache key.
    assert "incremental" not in job.semantic_fields()
    assert "replay" not in job.semantic_fields()
