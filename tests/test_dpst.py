"""S-DPST construction and queries (Definitions 2-5, Theorem 1)."""

import pytest

from repro.dpst import ASYNC, FINISH, SCOPE, STEP, Dpst, DpstBuilder, DpstNode
from repro.dpst.tree import path_between
from repro.errors import RepairError
from repro.lang import parse
from repro.runtime import Interpreter
from tests.conftest import build


def build_dpst(source: str, args=()):
    program = build(source)
    builder = DpstBuilder()
    Interpreter(program, builder).run(args)
    return builder.finish()


class TestConstruction:
    def test_root_is_main_task(self):
        tree = build_dpst("def main() { print(1); }")
        assert tree.root.kind == ASYNC
        assert tree.root.label == "main-task"

    def test_call_creates_scope(self):
        tree = build_dpst("def main() { print(1); }")
        call_scopes = [n for n in tree.walk()
                       if n.kind == SCOPE and n.scope_kind == "call"]
        assert len(call_scopes) == 1  # main's body

    def test_steps_are_leaves(self):
        tree = build_dpst("def main() { var x = 1; async { x = 2; } x = 3; }")
        for node in tree.walk():
            if node.kind == STEP:
                assert node.children == []

    def test_async_breaks_steps(self):
        tree = build_dpst("def main() { var a = 1; async { a = 2; } a = 3; }")
        main_scope = tree.root.children[0]
        kinds = [c.kind for c in main_scope.children]
        assert kinds == [STEP, ASYNC, STEP]

    def test_taken_if_creates_scope(self):
        tree = build_dpst("def main() { if (true) { print(1); } }")
        assert any(n.scope_kind == "if" for n in tree.walk()
                   if n.kind == SCOPE)

    def test_untaken_if_creates_no_scope(self):
        tree = build_dpst("def main() { if (false) { print(1); } }")
        assert not any(n.scope_kind in ("if", "else") for n in tree.walk()
                       if n.kind == SCOPE)

    def test_else_branch_scope(self):
        tree = build_dpst(
            "def main() { if (false) { print(1); } else { print(2); } }")
        assert any(n.scope_kind == "else" for n in tree.walk()
                   if n.kind == SCOPE)

    def test_loop_iterations_create_scopes(self):
        tree = build_dpst(
            "def main() { for (var i = 0; i < 3; i = i + 1) { print(i); } }")
        loops = [n for n in tree.walk()
                 if n.kind == SCOPE and n.scope_kind == "loop"]
        assert len(loops) == 3

    def test_empty_steps_are_elided(self):
        tree = build_dpst("def main() { }")
        # Only the root, the call scope; no zero-event steps.
        steps = tree.steps()
        assert all(s.cost > 0 or s.anchors for s in steps)

    def test_dfs_indices_are_preorder(self):
        tree = build_dpst("def main() { async { print(1); } print(2); }")
        indices = [n.index for n in tree.walk()]
        assert indices == sorted(indices)

    def test_node_count_matches_walk(self):
        tree = build_dpst("def main() { async print(1); print(2); }")
        assert tree.node_count() == len(list(tree.walk()))

    def test_counts_by_kind(self):
        tree = build_dpst(
            "def main() { finish { async print(1); } print(2); }")
        counts = tree.counts_by_kind()
        assert counts[FINISH] == 1
        assert counts[ASYNC] == 2  # the spawned task + the root main task

    def test_step_costs_accumulate(self):
        tree = build_dpst("def main() { var s = 0; s = s + 1; s = s + 2; }")
        total = sum(s.cost for s in tree.steps())
        assert total > 5

    def test_fibonacci_shape_matches_figure9(self, fib_source):
        # fib(2): Fib scope with [step, async, async, step] children.
        tree = build_dpst(fib_source, (2,))
        fib_scopes = [n for n in tree.walk() if n.kind == SCOPE
                      and n.scope_kind == "call" and len(n.children) == 4]
        assert fib_scopes, tree.render()
        kinds = [c.kind for c in fib_scopes[0].children]
        assert kinds == [STEP, ASYNC, ASYNC, STEP]

    def test_render_is_bounded(self):
        tree = build_dpst("def main() { for (var i = 0; i < 50; i = i + 1) { print(i); } }")
        text = tree.render(max_nodes=10)
        assert text.count("\n") <= 11


class TestLcaQueries:
    def _fib_tree(self, fib_source):
        return build_dpst(fib_source, (3,))

    def test_lca_of_siblings(self):
        tree = build_dpst("def main() { async print(1); async print(2); }")
        scope = tree.root.children[0]
        a1, a2 = [c for c in scope.children if c.kind == ASYNC]
        assert Dpst.lca(a1, a2) is scope

    def test_lca_with_ancestor(self):
        tree = build_dpst("def main() { async { print(1); } }")
        scope = tree.root.children[0]
        step = scope.children[0].children[0]
        assert Dpst.lca(scope, step) is scope

    def test_ns_lca_skips_scopes(self):
        tree = build_dpst("def main() { async print(1); async print(2); }")
        scope = tree.root.children[0]
        a1, a2 = [c for c in scope.children if c.kind == ASYNC]
        s1, s2 = a1.children[0], a2.children[0]
        assert Dpst.ns_lca(s1, s2) is tree.root

    def test_non_scope_children_flatten_scopes(self):
        tree = build_dpst("""
        def main() {
            if (true) {
                async print(1);
            }
            async print(2);
        }""")
        children = tree.non_scope_children(tree.root)
        assert [c.kind for c in children].count(ASYNC) == 2

    def test_non_scope_child_toward(self):
        tree = build_dpst("def main() { if (true) { async print(1); } }")
        children = tree.non_scope_children(tree.root)
        target = [c for c in children if c.kind == ASYNC][0]
        step = target.children[0]
        assert tree.non_scope_child_toward(tree.root, step) is target

    def test_non_scope_child_toward_requires_ancestry(self):
        tree = build_dpst("def main() { async print(1); async print(2); }")
        scope = tree.root.children[0]
        a1, a2 = [c for c in scope.children if c.kind == ASYNC]
        with pytest.raises(RepairError):
            tree.non_scope_child_toward(a1, a2.children[0])

    def test_path_between(self):
        tree = build_dpst("def main() { async { print(1); } }")
        scope = tree.root.children[0]
        step = scope.children[0].children[0]
        path = path_between(tree.root, step)
        assert path[0] is tree.root
        assert path[-1] is step


class TestMayHappenInParallel:
    def test_parallel_async_and_continuation(self):
        tree = build_dpst("def main() { var x = 0; async { x = 1; } x = 2; }")
        scope = tree.root.children[0]
        async_node = [c for c in scope.children if c.kind == ASYNC][0]
        async_step = async_node.children[0]
        after_step = scope.children[-1]
        assert Dpst.may_happen_in_parallel(async_step, after_step)
        # Symmetric.
        assert Dpst.may_happen_in_parallel(after_step, async_step)

    def test_finish_orders_steps(self):
        tree = build_dpst(
            "def main() { var x = 0; finish { async { x = 1; } } x = 2; }")
        finish = [n for n in tree.walk() if n.kind == FINISH][0]
        async_step = finish.children[0].children[0]
        scope = tree.root.children[0]
        after_step = scope.children[-1]
        assert not Dpst.may_happen_in_parallel(async_step, after_step)

    def test_step_not_parallel_with_itself(self):
        tree = build_dpst("def main() { print(1); }")
        step = tree.steps()[0]
        assert not Dpst.may_happen_in_parallel(step, step)

    def test_sequential_steps_not_parallel(self):
        tree = build_dpst("def main() { var x = 0; async { x = 1; } }")
        scope = tree.root.children[0]
        pre_step = scope.children[0]
        async_step = scope.children[1].children[0]
        # pre_step is before the spawn: ordered.
        assert not Dpst.may_happen_in_parallel(pre_step, async_step)

    def test_sibling_asyncs_parallel(self):
        tree = build_dpst("def main() { async print(1); async print(2); }")
        scope = tree.root.children[0]
        a1, a2 = [c for c in scope.children if c.kind == ASYNC]
        assert Dpst.may_happen_in_parallel(a1.children[0], a2.children[0])


class TestInsertFinishNode:
    def test_wrap_children(self):
        tree = build_dpst("def main() { async print(1); async print(2); }")
        scope = tree.root.children[0]
        positions = [i for i, c in enumerate(scope.children)
                     if c.kind == ASYNC]
        finish = tree.insert_finish_node(scope, positions[0], positions[-1])
        assert finish.kind == FINISH
        assert finish.parent is scope
        assert all(c.parent is finish for c in finish.children)

    def test_insert_resolves_parallelism(self):
        # Mirrors Figure 14: after wrapping the asyncs, the race pair is
        # ordered per Theorem 1.
        tree = build_dpst(
            "def main() { var x = 0; async { x = 1; } x = 2; }")
        scope = tree.root.children[0]
        async_idx = [i for i, c in enumerate(scope.children)
                     if c.kind == ASYNC][0]
        async_step = scope.children[async_idx].children[0]
        after_step = scope.children[-1]
        assert Dpst.may_happen_in_parallel(async_step, after_step)
        tree.insert_finish_node(scope, async_idx, async_idx)
        assert not Dpst.may_happen_in_parallel(async_step, after_step)

    def test_indices_renumbered(self):
        tree = build_dpst("def main() { async print(1); }")
        scope = tree.root.children[0]
        tree.insert_finish_node(scope, 0, len(scope.children) - 1)
        indices = [n.index for n in tree.walk()]
        assert indices == list(range(len(indices)))

    def test_bad_range_rejected(self):
        tree = build_dpst("def main() { print(1); }")
        with pytest.raises(RepairError):
            tree.insert_finish_node(tree.root, 0, 99)


class TestAnchors:
    def test_step_anchors_point_to_block_statements(self):
        program = build("def main() { var a = 1; var b = 2; }")
        builder = DpstBuilder()
        Interpreter(program, builder).run(())
        tree = builder.finish()
        step = tree.steps()[0]
        stmt_nids = [s.nid for s in program.main.body.stmts]
        assert step.anchors == stmt_nids

    def test_async_anchor_is_its_statement(self):
        program = build("def main() { async print(1); }")
        builder = DpstBuilder()
        Interpreter(program, builder).run(())
        tree = builder.finish()
        async_node = [n for n in tree.walk() if n.kind == ASYNC
                      and n is not tree.root][0]
        assert async_node.anchor_nid == program.main.body.stmts[0].nid
        assert async_node.block_nid == program.main.body.stmts[0].body.nid
