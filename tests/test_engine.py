"""End-to-end repair engine tests (the full Figure 6 pipeline)."""

import pytest

from repro.errors import RepairError
from repro.lang import ast, count_finishes, serial_elision, synthetic_finishes
from repro.races import detect_races
from repro.repair import (
    RepairEngine,
    repair_for_inputs,
    repair_program,
)
from repro.runtime import run_program
from tests.conftest import build


def assert_repaired(source: str, args=(), **kwargs):
    """Repair and verify the two core guarantees: race freedom for the
    input and output equivalence with the serial elision."""
    program = build(source)
    result = repair_program(program, args, **kwargs)
    assert result.converged, result.summary()
    confirm = detect_races(result.repaired, args)
    assert confirm.report.is_race_free
    repaired_out = run_program(result.repaired, args).output
    elided_out = run_program(serial_elision(program), args).output
    assert repaired_out == elided_out
    return result


class TestPaperExamples:
    def test_fibonacci_figure15(self, fib_source):
        result = assert_repaired(fib_source, (7,))
        # Two finishes: around the recursive asyncs and around Async0.
        assert result.inserted_finish_count == 2
        # The finish in fib wraps exactly the two asyncs (Figure 15) —
        # not the allocations before them.
        fib = result.repaired.functions["fib"]
        finish = [s for s in fib.body.stmts
                  if isinstance(s, ast.FinishStmt)][0]
        assert all(isinstance(s, ast.AsyncStmt) for s in finish.body.stmts)
        assert len(finish.body.stmts) == 2

    def test_figure7_multiple_readers(self, figure7_source):
        result = assert_repaired(figure7_source)
        assert result.inserted_finish_count >= 1

    def test_figure5_scoping(self):
        result = assert_repaired("""
        var x = 0;
        var y = 0;
        def main(flag) {
            if (flag) {
                async { print("A1"); }
                async { x = 1; }
            }
            async { y = 2; }
            print(x + y);
        }""", (True,))
        # No inserted finish may wrap A2 and A3 without A1; since that is
        # unexpressible, the repair uses well-formed placements only and
        # the re-run confirms race freedom (checked by assert_repaired).
        assert result.inserted_finish_count >= 1

    def test_mergesort_figure1_placement(self):
        result = assert_repaired("""
        def merge_halves(A, lo, mid, hi) {
            var merged = 0;
            for (var i = lo; i <= hi; i = i + 1) { merged = merged + A[i]; }
            A[lo] = merged;
        }
        def msort(A, lo, hi) {
            if (lo >= hi) { return; }
            var mid = lo + (hi - lo) / 2;
            async msort(A, lo, mid);
            async msort(A, mid + 1, hi);
            merge_halves(A, lo, mid, hi);
        }
        def main(n) {
            var A = new int[n];
            for (var i = 0; i < n; i = i + 1) { A[i] = i; }
            msort(A, 0, n - 1);
            print(A[0]);
        }""", (8,))
        msort = result.repaired.functions["msort"]
        finishes = [s for s in msort.body.stmts
                    if isinstance(s, ast.FinishStmt)]
        assert len(finishes) == 1


class TestRepairProperties:
    def test_already_race_free_is_untouched(self):
        source = """
        var x = 0;
        def main() { finish { async { x = 1; } } print(x); }
        """
        result = repair_program(build(source))
        assert result.converged
        assert result.iterations == []
        assert result.inserted_finish_count == 0

    def test_sequential_program_untouched(self):
        result = repair_program(build("def main() { print(1); }"))
        assert result.iterations == []

    def test_statement_order_preserved(self):
        source = """
        var x = 0;
        def main() { async { x = 1; } print(x); print(2); }
        """
        result = assert_repaired(source)
        prints = [n.args[0].value if not isinstance(n.args[0], ast.VarRef)
                  else "x"
                  for n in ast.walk(result.repaired)
                  if isinstance(n, ast.Call) and n.name == "print"]
        assert prints == ["x", 2]

    def test_existing_finishes_respected(self):
        # Programmer-written finishes stay; only new ones are synthetic.
        source = """
        var x = 0;
        var y = 0;
        def main() {
            finish { async { x = 1; } }
            async { y = 1; }
            print(x + y);
        }"""
        result = assert_repaired(source)
        total = count_finishes(result.repaired)
        synthetic = len(synthetic_finishes(result.repaired))
        assert total == synthetic + 1

    def test_loop_spawned_tasks(self):
        result = assert_repaired("""
        var total = 0;
        def main(n) {
            var slots = new int[n];
            for (var i = 0; i < n; i = i + 1) {
                var ii = i;
                async { slots[ii] = ii * ii; }
            }
            for (var i = 0; i < n; i = i + 1) { total = total + slots[i]; }
            print(total);
        }""", (6,))
        assert result.inserted_finish_count >= 1

    def test_conflicting_loop_tasks_serialize(self):
        result = assert_repaired("""
        var x = 0;
        def main(n) {
            for (var i = 0; i < n; i = i + 1) {
                async { x = x + 1; }
            }
            print(x);
        }""", (5,))
        # The only well-formed repair is a finish inside the loop body
        # (serializing) or around the loop; either way, race-free.
        assert result.inserted_finish_count >= 1

    def test_racy_function_called_twice_single_edit(self):
        source = """
        struct Box { v }
        def bump(b) {
            async { b.v = b.v + 1; }
            print(b.v);
        }
        def main() {
            var b1 = new Box();
            b1.v = 0;
            bump(b1);
            bump(b1);
        }"""
        result = assert_repaired(source)
        # Two dynamic instances, one static context: exactly one finish.
        assert result.inserted_finish_count == 1

    def test_nested_asyncs(self):
        assert_repaired("""
        var x = 0;
        def main() {
            async {
                async { x = 1; }
                x = 2;
            }
            print(x);
        }""")

    def test_repair_metrics_populated(self, figure7_source):
        result = repair_program(build(figure7_source))
        assert result.detection_time_s > 0
        assert result.repair_time_s > 0
        assert result.dpst_node_count > 0
        assert result.total_races_found == 2
        assert "converged" in result.summary()

    def test_trace_roundtrip_equivalence(self, figure7_source):
        with_trace = repair_program(build(figure7_source),
                                    trace_roundtrip=True)
        without = repair_program(build(figure7_source),
                                 trace_roundtrip=False)
        assert with_trace.repaired_source == without.repaired_source


class TestSrwMode:
    def test_srw_repairs_with_confirming_run(self, figure7_source):
        result = repair_program(build(figure7_source), algorithm="srw")
        assert result.converged
        confirm = detect_races(result.repaired)
        assert confirm.report.is_race_free

    def test_srw_may_need_more_iterations_than_mrw(self):
        # Two independent readers of x in separate asyncs ahead of two
        # separate writers: SRW tracks one reader/writer per location.
        source = """
        var x = 0;
        var y = 0;
        def main() {
            async { print(x); }
            async { print(x); }
            async { x = 1; }
            async { print(y); }
            async { print(y); }
            async { y = 1; }
        }"""
        srw = repair_program(build(source), algorithm="srw")
        mrw = repair_program(build(source), algorithm="mrw")
        assert srw.converged and mrw.converged
        assert len(mrw.iterations) == 1
        assert len(srw.iterations) >= 1


class TestFailureModes:
    def test_max_iterations_validation(self):
        with pytest.raises(ValueError):
            RepairEngine(max_iterations=0)

    def test_racy_loop_condition_still_repairable(self):
        # Even when the loop condition itself reads racy data, the tool
        # can serialize inside the loop body (a finish around each spawn),
        # ordering every condition evaluation after the prior task.
        assert_repaired("""
        var x = 0;
        def main() {
            for (var i = 0; i < 2 + x * 0; i = i + 1) {
                async { x = x + 1; }
            }
            print(x);
        }""", max_iterations=6)

    def test_no_valid_placement_raises(self, figure7_source, monkeypatch):
        from repro.repair import insertion

        monkeypatch.setattr(insertion.InsertionFinder, "find",
                            lambda self, *a, **k: None)
        with pytest.raises(RepairError, match="no valid finish placement"):
            repair_program(build(figure7_source))

    def test_progress_guard_detects_stall(self, figure7_source,
                                          monkeypatch):
        # If applying edits never changes the program (simulated by a
        # no-op apply), the engine must abort instead of looping.
        monkeypatch.setattr(RepairEngine, "_apply_edits",
                            lambda self, work, edits: None)
        with pytest.raises(RepairError, match="not making progress"):
            repair_program(build(figure7_source), max_iterations=10)


class TestMultiInput:
    def test_repair_for_inputs_covers_all(self):
        # A branch taken only for even n: repairing for n=3 alone misses
        # the race in the even branch.
        source = """
        var x = 0;
        var y = 0;
        def main(n) {
            if (n % 2 == 0) {
                async { x = 1; }
                print(x);
            } else {
                async { y = 1; }
                print(y);
            }
        }"""
        program = build(source)
        single = repair_program(program, (3,))
        leftover = detect_races(single.repaired, (4,))
        assert not leftover.report.is_race_free  # single input is blind
        multi = repair_for_inputs(program, [(3,), (4,)])
        assert multi.converged
        for args in [(3,), (4,)]:
            assert detect_races(multi.repaired, args).report.is_race_free

    def test_repair_for_inputs_requires_inputs(self):
        with pytest.raises(ValueError):
            repair_for_inputs(build("def main() { }"), [])

    def test_summary_mentions_rounds(self):
        result = repair_for_inputs(build("def main() { print(1); }"), [()])
        assert "round" in result.summary()
        assert result.inserted_finish_count == 0
