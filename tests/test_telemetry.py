"""The telemetry layer: spans, counters, exporters, and the overhead
contract (no per-access instrumentation, a shared no-op when disabled)."""

import json
import threading

import pytest

from repro import telemetry
from repro.lang import parse
from repro.races import detect_races
from repro.repair import repair_program
from repro.telemetry import (
    NOOP_SPAN,
    Counters,
    TelemetrySession,
    percentile,
    render_text,
    schedule_trace_events,
    summarize_samples,
    to_chrome_trace,
    to_json,
    validate_chrome_trace,
    write_chrome_trace,
)

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""

LOOPY = """
def main(n) {
    var a = new int[n];
    async {
        for (var i = 0; i < n; i = i + 1) {
            a[i] = i * 3;
        }
    }
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        s = s + a[i];
    }
    print(s);
}
"""


class TestSpans:
    def test_nesting_mirrors_with_blocks(self):
        with telemetry.session("t") as tel:
            with telemetry.span("outer"):
                with telemetry.span("inner-1"):
                    pass
                with telemetry.span("inner-2", detail=7):
                    pass
        roots = tel.roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner-1", "inner-2"]
        assert roots[0].children[1].meta == {"detail": 7}
        assert roots[0].duration_s >= sum(
            c.duration_s for c in roots[0].children)

    def test_exception_closes_span_and_flags_it(self):
        with telemetry.session("t") as tel:
            with pytest.raises(RuntimeError):
                with telemetry.span("outer"):
                    with telemetry.span("boom"):
                        raise RuntimeError("phase failed")
            # The stack is balanced again: new spans land at the root.
            with telemetry.span("after"):
                pass
        outer, after = tel.roots()
        assert outer.error and outer.children[0].error
        assert outer.end_s >= outer.children[0].end_s
        assert after.name == "after" and not after.error

    def test_annotate_is_chainable(self):
        with telemetry.session("t") as tel:
            with telemetry.span("phase") as sp:
                sp.annotate(races=3).annotate(converged=True)
        assert tel.roots()[0].meta == {"races": 3, "converged": True}

    def test_phase_totals_sums_same_name(self):
        with telemetry.session("t") as tel:
            for _ in range(3):
                with telemetry.span("iteration"):
                    pass
        totals = tel.phase_totals()
        assert set(totals) == {"iteration"}
        assert totals["iteration"] >= 0.0

    def test_threads_record_into_one_session(self):
        barrier = threading.Barrier(8)
        with telemetry.session("t") as tel:
            def work():
                barrier.wait(timeout=10)  # all alive at once: distinct ids
                with telemetry.span("worker-span"):
                    pass
            threads = [threading.Thread(target=work) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        names = [s.name for s in tel.all_spans()]
        assert names.count("worker-span") == 8
        assert len({s.thread_id for s in tel.roots()}) == 8


class TestDisabledPath:
    def test_span_returns_shared_noop_singleton(self):
        assert telemetry.current_session() is None
        assert telemetry.span("a") is NOOP_SPAN
        assert telemetry.span("b", category="x", k=1) is NOOP_SPAN
        with telemetry.span("c") as noop:
            assert noop is NOOP_SPAN
            assert noop.annotate(anything=1) is NOOP_SPAN

    def test_counter_is_noop_without_session(self):
        telemetry.counter("nobody.listens", 41)  # must not raise

    def test_sessions_stack_innermost_collects(self):
        with telemetry.session("outer") as outer:
            with telemetry.session("inner") as inner:
                with telemetry.span("phase"):
                    pass
            with telemetry.span("outer-phase"):
                pass
        assert [s.name for s in inner.roots()] == ["phase"]
        assert [s.name for s in outer.roots()] == ["outer-phase"]


class TestCounters:
    def test_inc_merge_max_and_views(self):
        counters = Counters()
        counters.inc("a")
        counters.inc("a", 4)
        counters.set_max("b", 3)
        counters.set_max("b", 2)
        other = Counters()
        other.inc("a", 10)
        other.inc("c", 1)
        counters.merge(other)
        assert counters["a"] == 15
        assert counters.get("b") == 3
        assert "c" in counters and counters.get("missing", -1) == -1
        assert counters.as_dict() == {"a": 15, "b": 3, "c": 1}
        assert len(counters) == 3 and set(counters) == {"a", "b", "c"}

    def test_detection_harvest_is_o1_not_per_access(self, monkeypatch):
        """The overhead policy: detection makes a small constant number
        of telemetry.counter calls, however many accesses it monitors."""
        calls = []
        real_counter = telemetry.counter
        monkeypatch.setattr(telemetry, "counter",
                            lambda name, n=1: (calls.append(name),
                                               real_counter(name, n)))
        program = parse(LOOPY)
        with telemetry.session("t") as tel:
            result = detect_races(program, (200,))
        accesses = result.detector.monitored_accesses
        assert accesses > 400  # plenty of per-access work happened ...
        assert len(calls) <= 8  # ... and O(1) counter calls recorded it
        assert tel.counters["detector.monitored_accesses"] == accesses
        assert tel.counters["runtime.ops"] == result.execution.ops

    def test_detection_produces_expected_counters(self):
        with telemetry.session("t") as tel:
            detect_races(parse(RACY))
        counters = tel.counters.as_dict()
        for name in ("runtime.ops", "dpst.nodes", "detector.races",
                     "detector.monitored_accesses", "detector.bag_unions"):
            assert name in counters, name
        assert counters["detector.races"] > 0


class TestPipelineSpans:
    def test_repair_span_tree_has_every_phase(self):
        with telemetry.session("t") as tel:
            result = repair_program(parse(RACY))
        assert result.converged
        names = {s.name for s in tel.all_spans()}
        for phase in ("lex", "parse", "repair", "iteration",
                      "detect_races", "execute", "dpst", "detect",
                      "placement"):
            assert phase in names, phase
        counters = tel.counters.as_dict()
        assert counters["repair.iterations"] >= 1
        assert counters["repair.edits"] >= 1

    def test_measure_span_tree(self):
        from repro.graph import measure_program

        with telemetry.session("t") as tel:
            measure_program(parse(RACY), processors=4)
        names = {s.name for s in tel.all_spans()}
        assert {"measure", "execute", "dpst", "graph",
                "schedule"} <= names
        assert tel.counters["schedule.steps"] > 0


class TestStatistics:
    def test_percentile_interpolates(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile(samples, 0.5) == pytest.approx(2.5)
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.95) == 7.0

    def test_summarize_samples_shape(self):
        summary = summarize_samples([0.010, 0.020, 0.030])
        assert summary["count"] == 3
        assert summary["mean_ms"] == pytest.approx(20.0)
        assert summary["p50_ms"] == pytest.approx(20.0)
        assert summary["max_ms"] == pytest.approx(30.0)
        assert summarize_samples([])["count"] == 0


class TestExporters:
    def _session(self):
        with telemetry.session("export-test") as tel:
            with telemetry.span("repair"):
                with telemetry.span("detect_races", algorithm="mrw"):
                    pass
            telemetry.counter("detector.races", 5)
        return tel

    def test_render_text(self):
        text = render_text(self._session())
        assert "telemetry: export-test" in text
        assert "detect_races" in text and "ms wall" in text
        assert "detector.races" in text

    def test_to_json_round_trips(self):
        doc = to_json(self._session())
        again = json.loads(json.dumps(doc))
        assert again["session"] == "export-test"
        assert again["spans"][0]["children"][0]["name"] == "detect_races"
        assert again["counters"]["detector.races"] == 5
        assert "repair" in again["phase_totals_s"]

    def test_chrome_trace_is_valid_and_complete(self):
        doc = to_chrome_trace(self._session())
        assert validate_chrome_trace(doc) == []
        by_phase = {}
        for event in doc["traceEvents"]:
            by_phase.setdefault(event["ph"], []).append(event)
        assert {e["name"] for e in by_phase["X"]} == {"repair",
                                                      "detect_races"}
        assert by_phase["C"][0]["args"]["value"] == 5
        assert any(e["name"] == "process_name" for e in by_phase["M"])

    def test_write_chrome_trace_loads_back(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._session(), str(path))
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{}]}) != []
        bad_ph = {"traceEvents": [
            {"name": "x", "ph": "q", "ts": 0.0, "pid": 1, "tid": 0}]}
        assert any("phase" in e for e in validate_chrome_trace(bad_ph))
        bad_ts = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": -1, "dur": 1,
             "pid": 1, "tid": 0}]}
        assert any("'ts'" in e for e in validate_chrome_trace(bad_ts))
        unserializable = {"traceEvents": [
            {"name": "x", "ph": "M", "pid": 1, "tid": 0,
             "args": {"bad": object()}}]}
        assert any("serializable" in e
                   for e in validate_chrome_trace(unserializable))


class TestScheduleExport:
    def test_schedule_events_one_row_per_processor(self):
        from repro.graph import measure_program

        schedule = measure_program(parse(RACY), processors=2,
                                   keep_timeline=True)
        events = schedule_trace_events(schedule)
        doc = {"traceEvents": events}
        assert validate_chrome_trace(doc) == []
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(schedule.timeline)
        # Every slice sits on a declared processor row and total slice
        # duration equals the schedule's work.
        rows = {e["tid"] for e in events if e["name"] == "thread_name"}
        assert {s["tid"] for s in slices} <= rows
        assert sum(s["dur"] for s in slices) == schedule.work

    def test_timeline_requires_keep_timeline(self):
        from repro.graph import measure_program

        schedule = measure_program(parse(RACY), processors=2)
        assert schedule.timeline is None
        with pytest.raises(ValueError, match="keep_timeline"):
            schedule_trace_events(schedule)

    def test_timeline_is_consistent_with_makespan(self):
        from repro.graph import measure_program

        schedule = measure_program(parse(LOOPY), (20,), processors=3,
                                   keep_timeline=True)
        assert schedule.timeline
        assert max(end for _, _, _, end in schedule.timeline) \
            == schedule.makespan
        # No two slices on one processor overlap.
        by_proc = {}
        for _, proc, start, end in schedule.timeline:
            by_proc.setdefault(proc, []).append((start, end))
        for intervals in by_proc.values():
            intervals.sort()
            for (_, prev_end), (next_start, _) in zip(intervals,
                                                      intervals[1:]):
                assert next_start >= prev_end


class TestJobTelemetry:
    def test_run_job_attaches_timings_and_counters(self):
        from repro.service import Job, run_job

        result = run_job(Job("repair", RACY))
        assert result.status == "ok"
        assert "detect_races" in result.timings
        assert "placement" in result.timings
        assert result.counters["repair.iterations"] >= 1
        # And the fields round-trip through the wire format.
        again = type(result).from_dict(result.to_dict())
        assert again.timings == result.timings
        assert again.counters == result.counters

    def test_failed_job_still_reports_phases(self):
        from repro.service import Job, run_job

        result = run_job(Job("detect", "def main() { boom(); }"))
        assert result.status == "error"
        assert "parse" in result.timings

    def test_run_job_leaves_no_active_session(self):
        from repro.service import Job, run_job

        run_job(Job("detect", RACY))
        assert telemetry.current_session() is None
