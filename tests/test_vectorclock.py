"""The vector-clock baseline detector: agreement with MRW ESP-bags."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.races import VectorClockDetector, detect_races
from tests.conftest import build
from tests.test_properties import programs


def detect(source: str, args=(), algorithm="vc"):
    return detect_races(build(source), args, algorithm=algorithm)


class TestHappensBefore:
    def test_spawn_orders_parent_prefix(self):
        det = detect("""
        var x = 0;
        def main() { x = 1; async { print(x); } }
        """)
        assert det.report.is_race_free

    def test_unjoined_task_races(self):
        det = detect("""
        var x = 0;
        def main() { async { x = 1; } print(x); }
        """)
        assert len(det.report) == 1
        assert det.report.races[0].kind == "W->R"

    def test_finish_join(self):
        det = detect("""
        var x = 0;
        def main() { finish { async { x = 1; } } print(x); }
        """)
        assert det.report.is_race_free

    def test_transitive_join(self):
        det = detect("""
        var x = 0;
        def deep(n) {
            if (n == 0) { x = 1; return; }
            async deep(n - 1);
        }
        def main() { finish { async deep(4); } print(x); }
        """)
        assert det.report.is_race_free

    def test_sibling_tasks_concurrent(self):
        det = detect("""
        var x = 0;
        def main() { async { x = 1; } async { x = 2; } }
        """)
        assert len(det.report) == 1
        assert det.report.races[0].kind == "W->W"

    def test_join_then_spawn_is_ordered(self):
        det = detect("""
        var x = 0;
        def main() {
            finish { async { x = 1; } }
            async { print(x); }     // spawned after the join: sees x
        }
        """)
        assert det.report.is_race_free

    def test_clock_work_is_counted(self):
        det = detect("""
        var x = 0;
        def main() { async { x = 1; } print(x); }
        """)
        assert det.detector.clock_work > 0


class TestAgreementWithMrw:
    CASES = [
        """
        var x = 0;
        def main() { async { x = 1; } async { x = 2; } print(x); }
        """,
        """
        var x = 0;
        var y = 0;
        def main() {
            finish { async { x = 1; } async { y = 1; } }
            async { x = 2; }
            print(x + y);
        }
        """,
        """
        def rec(a, n) {
            if (n == 0) { a[0] = a[0] + 1; return; }
            async rec(a, n - 1);
            finish { async rec(a, n - 1); }
        }
        def main() { var a = new int[1]; rec(a, 3); print(a[0]); }
        """,
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_vc_equals_mrw(self, source):
        program = build(source)
        vc = detect_races(program, algorithm="vc")
        mrw = detect_races(program, algorithm="mrw")
        assert {r.step_pair() for r in vc.report} == \
            {r.step_pair() for r in mrw.report}

    @given(source=programs())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_vc_equals_mrw_property(self, source):
        from repro.lang import parse
        program = parse(source)
        vc = detect_races(program, algorithm="vc")
        mrw = detect_races(program, algorithm="mrw")
        assert {r.step_pair() for r in vc.report} == \
            {r.step_pair() for r in mrw.report}

    def test_benchmark_agreement(self):
        from repro.bench import get_benchmark
        from repro.lang import strip_finishes
        spec = get_benchmark("quicksort")
        buggy = strip_finishes(spec.parse())
        vc = detect_races(buggy, spec.test_args, algorithm="vc")
        mrw = detect_races(buggy, spec.test_args, algorithm="mrw")
        assert {r.step_pair() for r in vc.report} == \
            {r.step_pair() for r in mrw.report}


class TestBaselineCost:
    def test_clock_work_grows_with_task_count(self):
        # The reason ESP-bags exist: vector-clock cost scales with the
        # number of tasks, the bags' union-find is effectively constant.
        def clock_work(n_tasks):
            body = "\n".join("async { g = g + 1; }" for _ in range(n_tasks))
            source = f"var g = 0;\ndef main() {{ {body} print(g); }}"
            det = detect(source)
            return det.detector.clock_work / max(1, n_tasks)

        # Per-task clock work increases with task count (superlinear
        # total): each spawn copies a clock that keeps growing.
        assert clock_work(40) > clock_work(5)
