"""The ``repro serve`` HTTP front-end: submit, poll, stats, errors,
queue mode, auth, rate limits, SSE progress and readiness."""

import http.client
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service import Job, JobQueue, ResultCache, ServiceServer

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""


@pytest.fixture(scope="module")
def server():
    srv = ServiceServer(workers=1, port=0, cache=ResultCache())
    srv.start()
    yield srv
    srv.close()


def _url(server, path):
    host, port = server.address
    return f"http://{host}:{port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10) as reply:
        return reply.status, json.loads(reply.read())


def _post(server, path, payload, headers=None):
    body = json.dumps(payload).encode("utf-8")
    all_headers = {"Content-Type": "application/json"}
    all_headers.update(headers or {})
    request = urllib.request.Request(
        _url(server, path), data=body, headers=all_headers)
    with urllib.request.urlopen(request, timeout=10) as reply:
        return reply.status, json.loads(reply.read())


def _poll_done(server, job_id, budget_s=60.0):
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        status, reply = _get(server, f"/jobs/{job_id}")
        assert status == 200
        if reply["status"] == "done":
            return reply
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never completed")


class TestSubmitAndPoll:
    def test_full_cycle(self, server):
        status, reply = _post(server, "/jobs", {
            "jobs": [{"kind": "repair", "source": RACY,
                      "source_name": "r.hj"}]})
        assert status == 202
        assert reply["submitted"] == 1
        reply = _poll_done(server, reply["ids"][0])
        result = reply["result"]
        assert result["status"] == "ok"
        assert result["result"]["converged"]
        assert result["source_name"] == "r.hj"

    def test_single_job_body_shorthand(self, server):
        status, reply = _post(server, "/jobs",
                              {"kind": "detect", "source": RACY})
        assert status == 202
        result = _poll_done(server, reply["ids"][0])["result"]
        assert result["result"]["race_count"] == 1

    def test_error_job_reports_structured_error(self, server):
        _, reply = _post(server, "/jobs",
                         {"kind": "detect", "source": "def main( {",
                          "source_name": "bad.hj"})
        result = _poll_done(server, reply["ids"][0])["result"]
        assert result["status"] == "error"
        assert result["error"]["category"] == "parse"

    def test_repeat_submission_hits_cache(self, server):
        body = {"kind": "repair", "source": RACY, "source_name": "again.hj"}
        _, first = _post(server, "/jobs", body)
        _poll_done(server, first["ids"][0])
        _, second = _post(server, "/jobs", body)
        result = _poll_done(server, second["ids"][0])["result"]
        assert result["cached"]

    def test_stats_endpoint(self, server):
        _, reply = _post(server, "/jobs",
                         {"kind": "detect", "source": RACY})
        _poll_done(server, reply["ids"][0])
        status, stats = _get(server, "/stats")
        assert status == 200
        assert stats["workers"] == 1
        assert stats["pool"]["completed"] >= 1
        assert "hit_rate" in stats["cache"]
        assert stats["cache"]["entries"] >= 1


class TestHttpErrors:
    def _expect_error(self, server, method, path, body=None):
        if method == "GET":
            call = lambda: _get(server, path)
        else:
            call = lambda: _post(server, path, body)
        with pytest.raises(urllib.error.HTTPError) as info:
            call()
        return info.value.code, json.loads(info.value.read())

    def test_unknown_job_id_is_404(self, server):
        code, reply = self._expect_error(server, "GET", "/jobs/job-999999")
        assert code == 404
        assert "unknown job id" in reply["error"]

    def test_unknown_endpoint_is_404(self, server):
        code, _ = self._expect_error(server, "GET", "/nope")
        assert code == 404
        code, _ = self._expect_error(server, "POST", "/nope",
                                     {"kind": "detect", "source": RACY})
        assert code == 404

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            _url(server, "/jobs"), data=b"{ not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        assert "invalid JSON" in json.loads(info.value.read())["error"]

    def test_bad_job_field_is_400(self, server):
        code, reply = self._expect_error(
            server, "POST", "/jobs",
            {"kind": "detect", "source": RACY, "bogus": 1})
        assert code == 400
        assert "unknown job field" in reply["error"]

    def test_missing_body_is_400(self, server):
        request = urllib.request.Request(_url(server, "/jobs"), data=b"")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_empty_batch_is_400(self, server):
        code, reply = self._expect_error(server, "POST", "/jobs",
                                         {"jobs": []})
        assert code == 400
        assert "at least one job" in reply["error"]


class TestMetricsEndpoint:
    def test_metrics_shape_after_jobs(self, server):
        _, reply = _post(server, "/jobs",
                         {"kind": "repair", "source": RACY,
                          "source_name": "metrics.hj"})
        _poll_done(server, reply["ids"][0])
        status, metrics = _get(server, "/metrics")
        assert status == 200
        phases = metrics["phases"]
        assert "detect_races" in phases
        entry = phases["detect_races"]
        for key in ("count", "mean_ms", "p50_ms", "p95_ms", "max_ms",
                    "total_s"):
            assert key in entry, key
        assert entry["count"] >= 1
        assert entry["max_ms"] >= entry["p95_ms"] >= entry["p50_ms"] > 0
        assert metrics["counters"].get("runtime.ops", 0) > 0
        assert metrics["jobs"]["completed"] >= 1
        for key in ("restarts", "timeouts", "crashes", "configured"):
            assert key in metrics["workers"], key
        assert "hits" in metrics["cache"]
        assert "entries" in metrics["cache"]

    def test_job_results_carry_timings_over_http(self, server):
        _, reply = _post(server, "/jobs",
                         {"kind": "detect", "source": RACY,
                          "source_name": "timed.hj"})
        result = _poll_done(server, reply["ids"][0])["result"]
        assert result["schema"] == 3
        assert "execute" in result["timings"]
        assert result["counters"]["detector.races"] >= 1


class TestContentLength:
    def _raw(self, server, method, path, body=None):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(method, path, body=body)
            reply = conn.getresponse()
            payload = reply.read()
            return reply.status, reply.getheader("Content-Length"), payload
        finally:
            conn.close()

    def test_success_responses_declare_length(self, server):
        for path in ("/stats", "/metrics"):
            status, length, payload = self._raw(server, "GET", path)
            assert status == 200
            assert length is not None and int(length) == len(payload)

    def test_handler_errors_declare_length(self, server):
        status, length, payload = self._raw(server, "GET", "/nope")
        assert status == 404
        assert length is not None and int(length) == len(payload)
        assert json.loads(payload)["error"]

    def test_http_server_errors_are_json_with_length(self, server):
        # An unsupported method never reaches do_GET/do_POST: the base
        # class answers through send_error, which must also emit JSON
        # with an explicit Content-Length.
        status, length, payload = self._raw(server, "PUT", "/jobs")
        assert status == 501
        assert length is not None and int(length) == len(payload)
        assert "error" in json.loads(payload)


class TestHealthz:
    def test_ready_pool_mode(self, server):
        status, reply = _get(server, "/healthz")
        assert status == 200
        assert reply["status"] == "ok"
        assert reply["workers"]["alive"] >= 1
        assert not reply["queue"]["attached"]

    def test_unreachable_queue_is_503(self, tmp_path):
        srv = ServiceServer(workers=1, port=0, cache=ResultCache(),
                            queue=str(tmp_path / "q.db"), node_id="hz")
        srv.start()
        try:
            status, reply = _get(srv, "/healthz")
            assert status == 200 and reply["queue"]["reachable"]
            # Point the queue somewhere unopenable: fresh handler threads
            # fail to connect, so readiness must flip to 503.
            srv.queue.path = str(tmp_path)  # a directory, not a database
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(srv, "/healthz")
            assert info.value.code == 503
            payload = json.loads(info.value.read())
            assert payload["status"] == "unavailable"
            assert "queue" in payload["failing"]
        finally:
            srv.queue.path = str(tmp_path / "q.db")
            srv.close()


@pytest.fixture(scope="module")
def auth_server():
    srv = ServiceServer(workers=1, port=0, cache=ResultCache(),
                        auth_token="sesame")
    srv.start()
    yield srv
    srv.close()


class TestAuth:
    BODY = {"kind": "detect", "source": RACY}

    def _denied(self, srv, headers):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(srv, "/jobs", self.BODY, headers=headers)
        return info.value.code, json.loads(info.value.read())

    def test_missing_token_is_401(self, auth_server):
        code, reply = self._denied(auth_server, None)
        assert code == 401
        assert "bearer" in reply["error"].lower()

    def test_wrong_token_is_401(self, auth_server):
        code, _ = self._denied(
            auth_server, {"Authorization": "Bearer wrong"})
        assert code == 401

    def test_wrong_scheme_is_401(self, auth_server):
        code, _ = self._denied(
            auth_server, {"Authorization": "Basic sesame"})
        assert code == 401

    def test_valid_token_is_accepted(self, auth_server):
        status, reply = _post(auth_server, "/jobs", self.BODY,
                              headers={"Authorization": "Bearer sesame"})
        assert status == 202
        _poll_done(auth_server, reply["ids"][0])

    def test_read_endpoints_stay_open(self, auth_server):
        for path in ("/stats", "/metrics", "/healthz"):
            status, _ = _get(auth_server, path)
            assert status == 200, path

    def test_stats_reports_auth_required(self, auth_server):
        _, stats = _get(auth_server, "/stats")
        assert stats["auth"]["required"]


class TestRateLimit:
    def test_tenant_bucket_empties_to_429(self):
        srv = ServiceServer(workers=1, port=0, cache=ResultCache(),
                            rate_limit=0.001, rate_burst=2)
        srv.start()
        try:
            body = {"kind": "detect", "source": RACY}
            headers = {"X-Tenant": "alice"}
            for _ in range(2):
                status, _ = _post(srv, "/jobs", body, headers=headers)
                assert status == 202
            with pytest.raises(urllib.error.HTTPError) as info:
                _post(srv, "/jobs", body, headers=headers)
            assert info.value.code == 429
            # Another tenant has its own bucket.
            status, _ = _post(srv, "/jobs", body,
                              headers={"X-Tenant": "bob"})
            assert status == 202
            _, stats = _get(srv, "/stats")
            assert stats["rate_limiter"]["rejected"] >= 1
            assert stats["rate_limiter"]["tenants"] >= 2
        finally:
            srv.close()


@pytest.fixture(scope="module")
def queue_server(tmp_path_factory):
    root = tmp_path_factory.mktemp("queue-server")
    srv = ServiceServer(workers=1, port=0,
                        cache=ResultCache(str(root / "cache")),
                        queue=str(root / "q.db"), node_id="srv-node",
                        lease_s=30.0)
    srv.start()
    yield srv
    srv.close()


class TestQueueMode:
    def test_submission_lands_in_queue_and_completes(self, queue_server):
        status, reply = _post(queue_server, "/jobs", {
            "kind": "repair", "source": RACY, "source_name": "q.hj"})
        assert status == 202
        job_id = reply["ids"][0]
        assert isinstance(job_id, int)
        done = _poll_done(queue_server, job_id)
        assert done["queue_state"] == "done"
        assert done["attempts"] == 1
        assert done["result"]["status"] == "ok"
        assert done["result"]["result"]["converged"]

    def test_poll_carries_queue_extras(self, queue_server):
        _, reply = _post(queue_server, "/jobs",
                         {"kind": "detect", "source": RACY})
        reply = _poll_done(queue_server, reply["ids"][0])
        assert reply["queue_state"] in ("done",)
        assert reply["attempts"] >= 1

    def test_tenant_recorded_on_queue_rows(self, queue_server):
        _, reply = _post(queue_server, "/jobs",
                         {"kind": "detect", "source": RACY},
                         headers={"X-Tenant": "class-2026"})
        job_id = reply["ids"][0]
        _poll_done(queue_server, job_id)
        row = queue_server.queue.status(job_id)
        assert row["tenant"] == "tenant:class-2026"

    def test_metrics_carry_queue_and_node_blocks(self, queue_server):
        _, reply = _post(queue_server, "/jobs",
                         {"kind": "detect", "source": RACY})
        _poll_done(queue_server, reply["ids"][0])
        _, metrics = _get(queue_server, "/metrics")
        assert metrics["queue"]["done"] >= 1
        assert metrics["node"]["node_id"] == "srv-node"
        assert metrics["node"]["completed"] >= 1
        assert "evictions" in metrics["cache"]

    def test_unknown_queue_id_is_404(self, queue_server):
        for bogus in ("999999", "not-a-number"):
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(queue_server, f"/jobs/{bogus}")
            assert info.value.code == 404


def _read_sse(server, path, timeout=60.0):
    """Collect a whole SSE stream as ``[(event, data_dict), ...]``."""
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        reply = conn.getresponse()
        assert reply.status == 200
        assert reply.getheader("Content-Type") == "text/event-stream"
        raw = reply.read().decode("utf-8")  # stream ends when job does
    finally:
        conn.close()
    events = []
    for block in raw.split("\n\n"):
        name, data = None, None
        for line in block.splitlines():
            if line.startswith("event: "):
                name = line[len("event: "):]
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
        if name is not None:
            events.append((name, data))
    return events


class TestEventStream:
    def test_full_lifecycle_events(self, queue_server):
        _, reply = _post(queue_server, "/jobs", {
            "kind": "repair", "source": RACY, "source_name": "sse.hj"})
        job_id = reply["ids"][0]
        events = _read_sse(queue_server, f"/jobs/{job_id}/events")
        names = [name for name, _ in events]
        assert names[0] == "status"
        assert names[-1] == "result"
        statuses = [data["status"] for name, data in events
                    if name == "status"]
        assert statuses[-1] == "done"
        phases = {data["phase"]: data["ms"] for name, data in events
                  if name == "phase"}
        assert "repair" in phases and "execute" in phases
        assert all(ms >= 0 for ms in phases.values())
        final = events[-1][1]["result"]
        assert final["status"] == "ok"
        assert final["source_name"] == "sse.hj"

    def test_stream_after_completion_replays_result(self, queue_server):
        _, reply = _post(queue_server, "/jobs",
                         {"kind": "detect", "source": RACY})
        job_id = reply["ids"][0]
        _poll_done(queue_server, job_id)
        events = _read_sse(queue_server, f"/jobs/{job_id}/events")
        assert events[0][0] == "status"
        assert events[0][1]["status"] == "done"
        assert events[-1][0] == "result"

    def test_events_for_unknown_job_404(self, queue_server):
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(queue_server, "/jobs/424242/events")
        assert info.value.code == 404

    def test_pool_mode_streams_too(self, server):
        _, reply = _post(server, "/jobs",
                         {"kind": "detect", "source": RACY,
                          "source_name": "pool-sse.hj"})
        events = _read_sse(server, f"/jobs/{reply['ids'][0]}/events")
        assert events[-1][0] == "result"
        assert events[-1][1]["result"]["result"]["race_count"] == 1
