"""The ``repro serve`` HTTP front-end: submit, poll, stats, errors."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service import Job, ResultCache, ServiceServer

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""


@pytest.fixture(scope="module")
def server():
    srv = ServiceServer(workers=1, port=0, cache=ResultCache())
    srv.start()
    yield srv
    srv.close()


def _url(server, path):
    host, port = server.address
    return f"http://{host}:{port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10) as reply:
        return reply.status, json.loads(reply.read())


def _post(server, path, payload):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        _url(server, path), data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=10) as reply:
        return reply.status, json.loads(reply.read())


def _poll_done(server, job_id, budget_s=60.0):
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        status, reply = _get(server, f"/jobs/{job_id}")
        assert status == 200
        if reply["status"] == "done":
            return reply
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never completed")


class TestSubmitAndPoll:
    def test_full_cycle(self, server):
        status, reply = _post(server, "/jobs", {
            "jobs": [{"kind": "repair", "source": RACY,
                      "source_name": "r.hj"}]})
        assert status == 202
        assert reply["submitted"] == 1
        reply = _poll_done(server, reply["ids"][0])
        result = reply["result"]
        assert result["status"] == "ok"
        assert result["result"]["converged"]
        assert result["source_name"] == "r.hj"

    def test_single_job_body_shorthand(self, server):
        status, reply = _post(server, "/jobs",
                              {"kind": "detect", "source": RACY})
        assert status == 202
        result = _poll_done(server, reply["ids"][0])["result"]
        assert result["result"]["race_count"] == 1

    def test_error_job_reports_structured_error(self, server):
        _, reply = _post(server, "/jobs",
                         {"kind": "detect", "source": "def main( {",
                          "source_name": "bad.hj"})
        result = _poll_done(server, reply["ids"][0])["result"]
        assert result["status"] == "error"
        assert result["error"]["category"] == "parse"

    def test_repeat_submission_hits_cache(self, server):
        body = {"kind": "repair", "source": RACY, "source_name": "again.hj"}
        _, first = _post(server, "/jobs", body)
        _poll_done(server, first["ids"][0])
        _, second = _post(server, "/jobs", body)
        result = _poll_done(server, second["ids"][0])["result"]
        assert result["cached"]

    def test_stats_endpoint(self, server):
        _, reply = _post(server, "/jobs",
                         {"kind": "detect", "source": RACY})
        _poll_done(server, reply["ids"][0])
        status, stats = _get(server, "/stats")
        assert status == 200
        assert stats["workers"] == 1
        assert stats["pool"]["completed"] >= 1
        assert "hit_rate" in stats["cache"]
        assert stats["cache"]["entries"] >= 1


class TestHttpErrors:
    def _expect_error(self, server, method, path, body=None):
        if method == "GET":
            call = lambda: _get(server, path)
        else:
            call = lambda: _post(server, path, body)
        with pytest.raises(urllib.error.HTTPError) as info:
            call()
        return info.value.code, json.loads(info.value.read())

    def test_unknown_job_id_is_404(self, server):
        code, reply = self._expect_error(server, "GET", "/jobs/job-999999")
        assert code == 404
        assert "unknown job id" in reply["error"]

    def test_unknown_endpoint_is_404(self, server):
        code, _ = self._expect_error(server, "GET", "/nope")
        assert code == 404
        code, _ = self._expect_error(server, "POST", "/nope",
                                     {"kind": "detect", "source": RACY})
        assert code == 404

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            _url(server, "/jobs"), data=b"{ not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        assert "invalid JSON" in json.loads(info.value.read())["error"]

    def test_bad_job_field_is_400(self, server):
        code, reply = self._expect_error(
            server, "POST", "/jobs",
            {"kind": "detect", "source": RACY, "bogus": 1})
        assert code == 400
        assert "unknown job field" in reply["error"]

    def test_missing_body_is_400(self, server):
        request = urllib.request.Request(_url(server, "/jobs"), data=b"")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_empty_batch_is_400(self, server):
        code, reply = self._expect_error(server, "POST", "/jobs",
                                         {"jobs": []})
        assert code == 400
        assert "at least one job" in reply["error"]


class TestMetricsEndpoint:
    def test_metrics_shape_after_jobs(self, server):
        _, reply = _post(server, "/jobs",
                         {"kind": "repair", "source": RACY,
                          "source_name": "metrics.hj"})
        _poll_done(server, reply["ids"][0])
        status, metrics = _get(server, "/metrics")
        assert status == 200
        phases = metrics["phases"]
        assert "detect_races" in phases
        entry = phases["detect_races"]
        for key in ("count", "mean_ms", "p50_ms", "p95_ms", "max_ms",
                    "total_s"):
            assert key in entry, key
        assert entry["count"] >= 1
        assert entry["max_ms"] >= entry["p95_ms"] >= entry["p50_ms"] > 0
        assert metrics["counters"].get("runtime.ops", 0) > 0
        assert metrics["jobs"]["completed"] >= 1
        for key in ("restarts", "timeouts", "crashes", "configured"):
            assert key in metrics["workers"], key
        assert "hits" in metrics["cache"]
        assert "entries" in metrics["cache"]

    def test_job_results_carry_timings_over_http(self, server):
        _, reply = _post(server, "/jobs",
                         {"kind": "detect", "source": RACY,
                          "source_name": "timed.hj"})
        result = _poll_done(server, reply["ids"][0])["result"]
        assert result["schema"] == 2
        assert "execute" in result["timings"]
        assert result["counters"]["detector.races"] >= 1


class TestContentLength:
    def _raw(self, server, method, path, body=None):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(method, path, body=body)
            reply = conn.getresponse()
            payload = reply.read()
            return reply.status, reply.getheader("Content-Length"), payload
        finally:
            conn.close()

    def test_success_responses_declare_length(self, server):
        for path in ("/stats", "/metrics"):
            status, length, payload = self._raw(server, "GET", path)
            assert status == 200
            assert length is not None and int(length) == len(payload)

    def test_handler_errors_declare_length(self, server):
        status, length, payload = self._raw(server, "GET", "/nope")
        assert status == 404
        assert length is not None and int(length) == len(payload)
        assert json.loads(payload)["error"]

    def test_http_server_errors_are_json_with_length(self, server):
        # An unsupported method never reaches do_GET/do_POST: the base
        # class answers through send_error, which must also emit JSON
        # with an explicit Content-Length.
        status, length, payload = self._raw(server, "PUT", "/jobs")
        assert status == 501
        assert length is not None and int(length) == len(payload)
        assert "error" in json.loads(payload)
