"""The paper's §9 future-work extensions: S-DPST pruning and
test-coverage analysis for repair inputs."""

import pytest

from repro.dpst import prune_race_free
from repro.graph.computation import span_parts
from repro.lang import parse, strip_finishes
from repro.races import detect_races
from repro.repair import measure_coverage, repair_for_inputs
from repro.repair.dependence import (
    build_dependence_graph,
    group_races_by_nslca,
)
from tests.conftest import build


class TestPruning:
    SOURCE = """
    var x = 0;
    def busywork(n) {
        var s = 0;
        for (var i = 0; i < n; i = i + 1) { s = s + i; }
        return s;
    }
    def main() {
        finish { async { busywork(20); } }    // race-free subtree
        busywork(30);                          // race-free scope
        async { x = 1; }                       // racy
        print(x);
    }
    """

    def _detect(self):
        return detect_races(build(self.SOURCE))

    def test_prune_removes_nodes(self):
        det = self._detect()
        before = det.dpst.node_count()
        removed = prune_race_free(det.dpst, det.report)
        assert removed > 0
        assert det.dpst.node_count() == before - removed

    def test_prune_preserves_total_span(self):
        det = self._detect()
        span_before = span_parts(det.dpst.root, {})[1]
        prune_race_free(det.dpst, det.report)
        assert span_parts(det.dpst.root, {})[1] == span_before

    def test_race_endpoints_survive(self):
        det = self._detect()
        sources = {r.source for r in det.report}
        sinks = {r.sink for r in det.report}
        prune_race_free(det.dpst, det.report)
        alive = set(det.dpst.walk())
        assert sources <= alive
        assert sinks <= alive

    def test_placement_still_works_on_pruned_tree(self):
        det = self._detect()
        prune_race_free(det.dpst, det.report)
        pairs = det.report.distinct_step_pairs()
        groups = group_races_by_nslca(det.dpst, pairs)
        for nslca, group in groups.items():
            graph = build_dependence_graph(det.dpst, nslca, group)
            assert graph.edges

    def test_prune_on_race_free_program_collapses_everything(self):
        det = detect_races(build(
            "def main() { finish { async { print(1); } } print(2); }"))
        assert det.report.is_race_free
        removed = prune_race_free(det.dpst, det.report)
        assert removed >= 0
        # The pruned tree is tiny: root plus a handful of summaries.
        assert det.dpst.node_count() <= 6

    def test_quicksort_prunes_substantially(self):
        from repro.bench import get_benchmark
        spec = get_benchmark("quicksort")
        det = detect_races(strip_finishes(spec.parse()), (50,))
        before = det.dpst.node_count()
        span = span_parts(det.dpst.root, {})[1]
        removed = prune_race_free(det.dpst, det.report)
        assert removed > before * 0.1
        assert span_parts(det.dpst.root, {})[1] == span


class TestCoverage:
    SOURCE = """
    var x = 0;
    def main(n) {
        if (n > 10) {
            async { x = 1; }
        } else {
            x = 3;
        }
        async { x = 2; }
        print(x);
    }
    """

    def test_unspawned_async_detected(self):
        cov = measure_coverage(build(self.SOURCE), [(5,)])
        assert not cov.is_adequate
        assert len(cov.unspawned_asyncs()) == 1
        assert cov.async_coverage == 0.5

    def test_adequate_with_both_inputs(self):
        cov = measure_coverage(build(self.SOURCE), [(5,), (20,)])
        assert cov.is_adequate
        assert cov.async_coverage == 1.0
        assert cov.branch_coverage() == 1.0

    def test_statement_coverage_partial(self):
        cov = measure_coverage(build(self.SOURCE), [(5,)])
        assert 0 < cov.statement_coverage < 1

    def test_finish_coverage(self):
        source = """
        var x = 0;
        def main(flag) {
            if (flag) { finish { async { x = 1; } } }
            print(x);
        }"""
        cov = measure_coverage(build(source), [(False,)])
        assert cov.finish_coverage == 0.0
        cov = measure_coverage(build(source), [(True,)])
        assert cov.finish_coverage == 1.0

    def test_summary_warns(self):
        cov = measure_coverage(build(self.SOURCE), [(5,)])
        assert "WARNING" in cov.summary()
        cov = measure_coverage(build(self.SOURCE), [(5,), (20,)])
        assert "WARNING" not in cov.summary()

    def test_trivial_program_fully_covered(self):
        cov = measure_coverage(build("def main() { print(1); }"), [()])
        assert cov.statement_coverage == 1.0
        assert cov.async_coverage == 1.0
        assert cov.is_adequate

    def test_coverage_guides_multi_input_repair(self):
        # The §9 workflow: check coverage, then repair for an adequate
        # input set; both branches end up synchronized.
        program = build(self.SOURCE)
        inputs = [(5,), (20,)]
        assert measure_coverage(program, inputs).is_adequate
        result = repair_for_inputs(program, inputs)
        assert result.converged
        for args in inputs:
            assert detect_races(result.repaired,
                                args).report.is_race_free
