"""Static well-formedness checks."""

import pytest

from repro.errors import ValidationError
from repro.lang import parse, validate
from repro.runtime import BUILTIN_NAMES


def check(source: str, require_main: bool = True) -> None:
    validate(parse(source), BUILTIN_NAMES, require_main=require_main)


class TestScoping:
    def test_valid_program_passes(self):
        check("def main() { var x = 1; print(x); }")

    def test_undeclared_variable(self):
        with pytest.raises(ValidationError, match="undeclared"):
            check("def main() { print(nope); }")

    def test_use_before_declaration(self):
        with pytest.raises(ValidationError):
            check("def main() { print(x); var x = 1; }")

    def test_duplicate_in_same_scope(self):
        with pytest.raises(ValidationError, match="duplicate"):
            check("def main() { var x = 1; var x = 2; }")

    def test_shadowing_in_nested_scope_allowed(self):
        check("def main() { var x = 1; { var x = 2; print(x); } print(x); }")

    def test_block_scope_does_not_leak(self):
        with pytest.raises(ValidationError):
            check("def main() { { var x = 1; } print(x); }")

    def test_for_init_scoped_to_loop(self):
        with pytest.raises(ValidationError):
            check("def main() { for (var i = 0; i < 3; i = i + 1) { } print(i); }")

    def test_globals_visible_in_functions(self):
        check("var g = 1; def main() { print(g); }")

    def test_params_visible(self):
        check("def f(a) { print(a); } def main() { f(1); }")

    def test_assignment_to_undeclared(self):
        with pytest.raises(ValidationError):
            check("def main() { y = 3; }")


class TestControlPlacement:
    def test_break_outside_loop(self):
        with pytest.raises(ValidationError, match="break"):
            check("def main() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(ValidationError, match="continue"):
            check("def main() { continue; }")

    def test_break_inside_loop_ok(self):
        check("def main() { while (true) { break; } }")

    def test_break_cannot_cross_async(self):
        with pytest.raises(ValidationError, match="break"):
            check("def main() { while (true) { async { break; } } }")

    def test_return_inside_async_rejected(self):
        with pytest.raises(ValidationError, match="return inside async"):
            check("def f() { async { return; } } def main() { f(); }")

    def test_return_inside_finish_ok(self):
        check("def f() { finish { return; } } def main() { f(); }")

    def test_loop_inside_async_can_break(self):
        check("def main() { async { while (true) { break; } } }")


class TestCallsAndTypes:
    def test_unknown_function(self):
        with pytest.raises(ValidationError, match="unknown function"):
            check("def main() { mystery(); }")

    def test_builtin_recognized(self):
        check("def main() { print(sqrt(2.0)); }")

    def test_user_function_arity(self):
        with pytest.raises(ValidationError, match="expected 2"):
            check("def f(a, b) { } def main() { f(1); }")

    def test_unknown_struct(self):
        with pytest.raises(ValidationError, match="unknown struct"):
            check("def main() { var p = new Ghost(); }")

    def test_known_struct(self):
        check("struct S { x } def main() { var s = new S(); }")

    def test_main_required(self):
        with pytest.raises(ValidationError, match="main"):
            check("def helper() { }")

    def test_main_not_required_when_disabled(self):
        check("def helper() { }", require_main=False)
