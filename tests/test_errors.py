"""The error hierarchy and error-reporting contracts."""

import pytest

from repro.errors import (
    LexError,
    ParseError,
    RepairError,
    ReproError,
    RuntimeFault,
    SourceError,
    StepLimitExceeded,
    ValidationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (SourceError, LexError, ParseError, ValidationError,
                    RuntimeFault, StepLimitExceeded, RepairError):
            assert issubclass(cls, ReproError)

    def test_source_errors_carry_position(self):
        err = ParseError("bad token", 3, 7)
        assert err.line == 3
        assert err.column == 7
        assert "3:7" in str(err)
        assert err.bare_message == "bad token"

    def test_position_optional(self):
        err = RuntimeFault("boom")
        assert err.line is None
        assert str(err) == "boom"

    def test_step_limit_is_runtime_fault(self):
        assert issubclass(StepLimitExceeded, RuntimeFault)

    def test_one_catch_at_tool_boundary(self):
        # The CLI catches ReproError; every library error must be caught.
        from repro.lang import parse
        with pytest.raises(ReproError):
            parse("def ( {")

    def test_column_unknown_rendering(self):
        err = LexError("odd", 5, None)
        assert "5:?" in str(err)
