"""Unit tests for the distributed-tracing layer: trace contexts, the
per-node JSONL :class:`TraceLog` (atomic appends, level filtering,
rotation, tolerant reads), session export, the Chrome trace merger, the
per-job tree reconstruction, and the fleet-health metrics (fixed-bucket
histograms + Prometheus text exposition)."""

import json
import math
import os
import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    DEFAULT_BUCKETS_S,
    Histogram,
    TraceContext,
    TraceLog,
    merge_trace_logs,
    parse_prometheus,
    read_records,
    render_prometheus,
    render_trace_tree,
    session_records,
    trace_tree,
)
from repro.telemetry import validate_chrome_trace
from repro.telemetry.tracelog import TRACELOG_SCHEMA


class TestTraceContext:
    def test_mint_shapes(self):
        trace = TraceContext.mint()
        assert len(trace.trace_id) == 32
        assert len(trace.span_id) == 16
        int(trace.trace_id, 16)  # hex

    def test_mint_is_unique(self):
        ids = {TraceContext.mint().trace_id for _ in range(64)}
        assert len(ids) == 64

    def test_child_keeps_trace_id_fresh_span(self):
        trace = TraceContext.mint()
        child = trace.child()
        assert child.trace_id == trace.trace_id
        assert child.span_id != trace.span_id

    def test_round_trip(self):
        trace = TraceContext.mint()
        again = TraceContext.from_dict(trace.to_dict())
        assert (again.trace_id, again.span_id) \
            == (trace.trace_id, trace.span_id)

    @pytest.mark.parametrize("bad", [
        None, "not-a-dict", 7, {}, {"trace_id": "abc"},
        {"trace_id": "", "span_id": "x"},
        {"trace_id": 5, "span_id": "x"},
        {"trace_id": "abc", "span_id": None},
    ])
    def test_from_dict_is_tolerant(self, bad):
        assert TraceContext.from_dict(bad) is None

    def test_from_dict_passes_through_instances(self):
        trace = TraceContext.mint()
        assert TraceContext.from_dict(trace) is trace


class TestTraceLog:
    def test_span_record_shape(self, tmp_path):
        path = str(tmp_path / "node.jsonl")
        log = TraceLog(path, node="alpha")
        span_id = log.span("queue.wait", 10.0, 10.5, "t" * 32,
                           parent_id="p" * 16, queue_id=3, job="a.hj")
        records = read_records(path)
        assert len(records) == 1
        rec = records[0]
        assert rec["schema"] == TRACELOG_SCHEMA
        assert rec["kind"] == "span"
        assert rec["name"] == "queue.wait"
        assert rec["node"] == "alpha"
        assert rec["span_id"] == span_id
        assert rec["parent_id"] == "p" * 16
        assert (rec["ts_s"], rec["end_s"]) == (10.0, 10.5)
        assert rec["args"] == {"queue_id": 3, "job": "a.hj"}

    def test_event_record(self, tmp_path):
        path = str(tmp_path / "node.jsonl")
        TraceLog(path, node="alpha").event("lease.lost", trace_id="t" * 32,
                                           ts_s=5.0, queue_id=9)
        (rec,) = read_records(path)
        assert rec["kind"] == "event"
        assert rec["ts_s"] == 5.0
        assert rec["args"]["queue_id"] == 9

    def test_level_filtering_at_emission(self, tmp_path):
        path = str(tmp_path / "node.jsonl")
        log = TraceLog(path, level="warn")
        assert log.span("quiet", 0.0, 1.0, "t" * 32) is None
        assert log.span("loud", 0.0, 1.0, "t" * 32, level="error")
        records = read_records(path)
        assert [r["name"] for r in records] == ["loud"]

    def test_rejects_unknown_level(self, tmp_path):
        with pytest.raises(ValueError):
            TraceLog(str(tmp_path / "x.jsonl"), level="loudest")

    def test_rotation_keeps_one_generation(self, tmp_path):
        path = str(tmp_path / "node.jsonl")
        log = TraceLog(path, node="alpha", max_bytes=600)
        for i in range(12):
            log.span(f"s{i}", float(i), float(i) + 1, "t" * 32)
        assert os.path.exists(path + ".1")
        names = [r["name"] for r in read_records(path)]
        assert names == sorted(names, key=lambda n: int(n[1:]))
        assert len(names) < 12  # rotated file holds the rest
        assert len(read_records(path, include_rotated=False)) < len(names)

    def test_concurrent_appends_never_tear(self, tmp_path):
        path = str(tmp_path / "node.jsonl")
        log = TraceLog(path, node="alpha")

        def emit(tag):
            for i in range(40):
                log.span(f"{tag}-{i}", 0.0, 0.001, "t" * 32,
                         payload="x" * 200)

        threads = [threading.Thread(target=emit, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = read_records(path)
        assert len(records) == 160  # every line parsed back whole

    def test_read_skips_torn_tail_and_future_schema(self, tmp_path):
        path = str(tmp_path / "node.jsonl")
        log = TraceLog(path)
        log.span("ok", 0.0, 1.0, "t" * 32)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": TRACELOG_SCHEMA + 1,
                                     "kind": "span", "name": "future"})
                         + "\n")
            handle.write('{"kind": "span", "name": "torn')  # SIGKILL tail
        names = [r["name"] for r in read_records(path)]
        assert names == ["ok"]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_records(str(tmp_path / "absent.jsonl")) == []


class TestEnvPlumbing:
    def test_get_tracelog_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACELOG", raising=False)
        assert telemetry.get_tracelog() is None

    def test_get_tracelog_reads_env(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_TRACELOG", path)
        monkeypatch.setenv("REPRO_TRACELOG_LEVEL", "warn")
        log = telemetry.get_tracelog()
        assert log is not None and log.path == path
        assert log.level == "warn"
        assert telemetry.get_tracelog() is log  # cached per (pid, path)

    def test_bad_level_falls_back_to_info(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACELOG", str(tmp_path / "e.jsonl"))
        monkeypatch.setenv("REPRO_TRACELOG_LEVEL", "shouting")
        assert telemetry.get_tracelog().level == "info"

    def test_set_tracelog_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACELOG", raising=False)
        monkeypatch.delenv("REPRO_NODE_ID", raising=False)
        path = str(tmp_path / "set.jsonl")
        telemetry.set_tracelog(path, node="beta")
        try:
            assert os.environ["REPRO_TRACELOG"] == path
            assert os.environ["REPRO_NODE_ID"] == "beta"
            assert telemetry.get_tracelog().node == "beta"
        finally:
            telemetry.set_tracelog(None)
        assert "REPRO_TRACELOG" not in os.environ
        assert telemetry.get_tracelog() is None


class TestSessionExport:
    def _session(self):
        tel = telemetry.TelemetrySession("job")
        with tel.span("job", category="job"):
            with tel.span("detect"):
                with tel.span("dpst"):
                    pass
            with tel.span("replay"):
                pass
        return tel

    def test_roots_parent_to_trace_span(self):
        tel = self._session()
        trace = TraceContext.mint()
        records = session_records(tel, trace, node="alpha", job="a.hj")
        assert len(records) == 4
        by_name = {r["name"]: r for r in records}
        assert by_name["job"]["parent_id"] == trace.span_id
        assert by_name["detect"]["parent_id"] == by_name["job"]["span_id"]
        assert by_name["dpst"]["parent_id"] == by_name["detect"]["span_id"]
        assert all(r["trace_id"] == trace.trace_id for r in records)
        assert all(r["args"]["job"] == "a.hj" for r in records)
        assert all("cpu_ms" in r["args"] for r in records)

    def test_epoch_mapping_is_plausible(self):
        import time

        tel = self._session()
        records = session_records(tel, TraceContext.mint())
        now = time.time()
        for rec in records:
            assert now - 60 < rec["ts_s"] <= rec["end_s"] <= now + 60

    def test_error_spans_export_at_error_level(self):
        tel = telemetry.TelemetrySession("job")
        with pytest.raises(RuntimeError):
            with tel.span("job"):
                raise RuntimeError("boom")
        (rec,) = session_records(tel, TraceContext.mint())
        assert rec["level"] == "error"

    def test_log_session_writes_and_counts(self, tmp_path):
        tel = self._session()
        log = TraceLog(str(tmp_path / "s.jsonl"), node="alpha")
        written = log.session(tel, TraceContext.mint(), job="a.hj")
        assert written == 4
        assert len(read_records(log.path)) == 4


class TestMergeAndTree:
    def _two_node_records(self):
        trace = TraceContext.mint()
        submit = {"schema": 1, "kind": "span", "level": "info",
                  "name": "submit", "node": "cli", "worker": 1,
                  "trace_id": trace.trace_id, "span_id": trace.span_id,
                  "parent_id": None, "ts_s": 100.0, "end_s": 100.001,
                  "args": {"job": "a.hj", "job_id": "7"}}
        wait = {"schema": 1, "kind": "span", "level": "info",
                "name": "queue.wait", "node": "node-a", "worker": 2,
                "trace_id": trace.trace_id, "span_id": "b" * 16,
                "parent_id": trace.span_id, "ts_s": 100.0,
                "end_s": 100.2, "args": {"queue_id": 7}}
        job = {"schema": 1, "kind": "span", "level": "info",
               "name": "job", "node": "node-a", "worker": 3,
               "trace_id": trace.trace_id, "span_id": "c" * 16,
               "parent_id": trace.span_id, "ts_s": 100.2,
               "end_s": 100.9, "args": {"job": "a.hj"}}
        mark = {"schema": 1, "kind": "event", "level": "info",
                "name": "lease.renewed", "node": "node-a", "worker": 2,
                "trace_id": trace.trace_id, "span_id": "d" * 16,
                "parent_id": None, "ts_s": 100.5, "args": {}}
        return trace, [submit], [wait, job, mark]

    def test_merge_is_valid_chrome_trace(self, tmp_path):
        _, cli, node = self._two_node_records()
        cli_path = str(tmp_path / "cli.jsonl")
        node_path = str(tmp_path / "node.jsonl")
        for path, records in ((cli_path, cli), (node_path, node)):
            with open(path, "w", encoding="utf-8") as handle:
                for rec in records:
                    handle.write(json.dumps(rec) + "\n")
        doc = merge_trace_logs([cli_path, node_path])
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["nodes"] == ["cli", "node-a"]
        assert doc["otherData"]["records"] == 4

    def test_merge_lanes_one_pid_per_node_tid_per_worker(self):
        _, cli, node = self._two_node_records()
        doc = merge_trace_logs([cli, node])
        events = doc["traceEvents"]
        pid_names = {e["pid"]: e["args"]["name"] for e in events
                     if e["name"] == "process_name"}
        assert sorted(pid_names.values()) == ["node cli", "node node-a"]
        node_pid = next(pid for pid, name in pid_names.items()
                        if name == "node node-a")
        node_tids = {e["tid"] for e in events
                     if e["pid"] == node_pid and e.get("ph") in ("X", "i")}
        assert len(node_tids) == 2  # workers 2 and 3

    def test_merge_rebases_to_zero_and_keeps_ids(self):
        trace, cli, node = self._two_node_records()
        doc = merge_trace_logs([cli, node])
        xs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert min(e["ts"] for e in xs) == 0.0
        assert all(e["args"]["trace_id"] == trace.trace_id for e in xs)
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert [e["name"] for e in instants] == ["lease.renewed"]

    def test_trace_tree_selectors(self):
        trace, cli, node = self._two_node_records()
        records = cli + node
        for selector in (trace.trace_id, trace.trace_id[:8],
                         "a.hj", "7"):
            trace_id, roots = trace_tree(records, selector)
            assert trace_id == trace.trace_id, selector
            assert len(roots) == 1
            root = roots[0]
            assert root["name"] == "submit"
            assert [c["name"] for c in root["children"]] \
                == ["queue.wait", "job"]

    def test_trace_tree_selects_by_basename_of_path(self):
        trace, cli, node = self._two_node_records()
        cli[0]["args"]["job"] = "/corpus/sub/a.hj"
        node[1]["args"]["job"] = "/corpus/sub/a.hj"
        trace_id, roots = trace_tree(cli + node, "a.hj")
        assert trace_id == trace.trace_id
        assert len(roots) == 1

    def test_trace_tree_ambiguous_or_missing_is_none(self):
        _, cli, node = self._two_node_records()
        other = dict(cli[0])
        other["trace_id"] = "f" * 32
        assert trace_tree(cli + node + [other], "a.hj") == (None, [])
        assert trace_tree(cli + node, "no-such-job") == (None, [])

    def test_orphan_spans_surface_as_roots(self):
        trace, _cli, node = self._two_node_records()
        # Drop the submit record: the SIGKILL'd-submitter case.
        trace_id, roots = trace_tree(node, trace.trace_id)
        assert trace_id == trace.trace_id
        assert [r["name"] for r in roots] == ["queue.wait", "job"]

    def test_render_tree_shows_hops_and_gaps(self):
        trace, cli, node = self._two_node_records()
        trace_id, roots = trace_tree(cli + node, "a.hj")
        text = render_trace_tree(trace_id, roots, events=cli + node)
        assert f"trace {trace.trace_id}" in text
        assert "[cli/1]" in text and "[node-a/3]" in text
        assert "after parent" in text
        assert "* lease.renewed" in text


class TestHistogram:
    def test_cumulative_counts(self):
        hist = Histogram(bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 3]
        assert hist.count == 4
        assert hist.sum_s == pytest.approx(55.55)

    def test_default_bounds_are_log_spaced(self):
        assert len(DEFAULT_BUCKETS_S) == 18
        assert DEFAULT_BUCKETS_S[0] == 0.0001
        assert DEFAULT_BUCKETS_S[-1] == 50.0
        assert list(DEFAULT_BUCKETS_S) == sorted(DEFAULT_BUCKETS_S)

    def test_quantile_upper_bound(self):
        hist = Histogram(bounds=(0.1, 1.0, 10.0))
        for _ in range(99):
            hist.observe(0.05)
        assert hist.quantile(0.5) == 0.1
        hist.observe(100.0)
        assert hist.quantile(0.999) == math.inf
        assert Histogram().quantile(0.5) == 0.0

    def test_merge_adds_elementwise(self):
        a, b = Histogram(), Histogram()
        a.observe(0.01)
        b.observe(0.01)
        b.observe(30.0)
        a.merge(b)
        assert a.count == 3
        assert a.quantile(0.5) == 0.01
        with pytest.raises(ValueError):
            a.merge(Histogram(bounds=(1.0,)))

    def test_dict_round_trip_and_merge_from_dict(self):
        hist = Histogram()
        for value in (0.002, 0.2, 2.0):
            hist.observe(value)
        again = Histogram.from_dict(hist.to_dict())
        assert again.counts == hist.counts
        assert again.count == hist.count
        assert again.sum_s == pytest.approx(hist.sum_s)
        merged = Histogram()
        merged.merge(hist.to_dict())
        assert merged.counts == hist.counts

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))


class TestPrometheus:
    def _metrics(self):
        hist = Histogram()
        hist.observe(0.01)
        hist.observe(0.2)
        return {
            "histograms": {"detect": hist.to_dict()},
            "jobs": {"completed": 5, "by_status": {"ok": 4, "timeout": 1}},
            "queue": {"queued": 2, "leased": 1, "done": 4, "total": 7},
            "queue_health": {"oldest_lease_age_s": 0.5,
                             "retries_total": 3,
                             "counters": {"dedupe_hits": 2}},
            "counters": {"jobs_submitted": 9},
            "workers": {"truncated_spans": 1},
        }

    def test_render_parses_strictly(self):
        samples = parse_prometheus(render_prometheus(self._metrics()))
        assert samples  # non-empty and no ValueError

    def test_families_and_labels(self):
        samples = parse_prometheus(render_prometheus(self._metrics()))
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        buckets = dict((labels["le"], value) for labels, value
                       in by_name["repro_phase_seconds_bucket"]
                       if labels["phase"] == "detect")
        assert buckets["+Inf"] == 2.0
        assert buckets["0.25"] == 2.0 and buckets["0.1"] == 1.0
        assert ({(labels["status"], value) for labels, value
                 in by_name["repro_jobs_by_status"]}
                == {("ok", 4.0), ("timeout", 1.0)})
        depth = {labels["state"]: value for labels, value
                 in by_name["repro_queue_depth"]}
        assert depth == {"queued": 2.0, "leased": 1.0, "done": 4.0}
        assert by_name["repro_counter_jobs_submitted_total"][0][1] == 9.0
        # Generic flattening picks up nested leaves without renderer edits.
        assert by_name["repro_queue_health_counters_dedupe_hits"][0][1] == 2.0
        assert by_name["repro_workers_truncated_spans"][0][1] == 1.0

    def test_renders_histogram_sum_and_count(self):
        samples = parse_prometheus(render_prometheus(self._metrics()))
        values = {name: value for name, labels, value in samples
                  if labels.get("phase") == "detect"
                  and not name.endswith("_bucket")}
        assert values["repro_phase_seconds_count"] == 2.0
        assert values["repro_phase_seconds_sum"] == pytest.approx(0.21)

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not prometheus\n")
        with pytest.raises(ValueError):
            parse_prometheus('metric{label="unclosed} 1\n')
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE thing flavor\nthing 1\n")

    def test_escapes_label_values(self):
        text = render_prometheus({
            "jobs": {"by_status": {'we"ird\nstatus': 1}}})
        (sample,) = [s for s in parse_prometheus(text)
                     if s[0] == "repro_jobs_by_status"]
        assert sample[1]["status"] == 'we"ird\nstatus'
