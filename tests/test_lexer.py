"""Unit tests for the mini-HJ lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def types(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only(self):
        assert types("  \t\n\r  ") == [TokenType.EOF]

    def test_identifier(self):
        (tok, _) = tokenize("hello_World42")
        assert tok.type is TokenType.IDENT
        assert tok.value == "hello_World42"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_x")[0].value == "_x"

    def test_keywords_are_not_identifiers(self):
        assert types("async finish if while for def var")[:-1] == [
            TokenType.ASYNC, TokenType.FINISH, TokenType.IF,
            TokenType.WHILE, TokenType.FOR, TokenType.DEF, TokenType.VAR]

    def test_keyword_prefix_is_identifier(self):
        tok = tokenize("asyncs")[0]
        assert tok.type is TokenType.IDENT
        assert tok.value == "asyncs"

    def test_booleans_and_null(self):
        assert types("true false null")[:-1] == [
            TokenType.TRUE, TokenType.FALSE, TokenType.NULL]


class TestNumbers:
    def test_integer(self):
        tok = tokenize("12345")[0]
        assert tok.type is TokenType.INT
        assert tok.value == 12345

    def test_zero(self):
        assert tokenize("0")[0].value == 0

    def test_float(self):
        tok = tokenize("3.25")[0]
        assert tok.type is TokenType.FLOAT
        assert tok.value == 3.25

    def test_float_with_exponent(self):
        assert tokenize("1.5e3")[0].value == 1500.0

    def test_int_with_exponent_is_float(self):
        tok = tokenize("2e2")[0]
        assert tok.type is TokenType.FLOAT
        assert tok.value == 200.0

    def test_negative_exponent(self):
        assert tokenize("1e-2")[0].value == pytest.approx(0.01)

    def test_dot_without_digit_is_member_access(self):
        # `1.` should lex as INT then DOT, not a malformed float.
        assert types("p.x") == [TokenType.IDENT, TokenType.DOT,
                                TokenType.IDENT, TokenType.EOF]


class TestStrings:
    def test_simple_string(self):
        assert tokenize('"hello"')[0].value == "hello"

    def test_escapes(self):
        assert tokenize(r'"a\nb\tc\\d\"e"')[0].value == 'a\nb\tc\\d"e'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestOperators:
    def test_two_char_operators(self):
        assert types("== != <= >= && || << >> += -= *= /=")[:-1] == [
            TokenType.EQ, TokenType.NE, TokenType.LE, TokenType.GE,
            TokenType.AND, TokenType.OR, TokenType.SHL, TokenType.SHR,
            TokenType.PLUS_ASSIGN, TokenType.MINUS_ASSIGN,
            TokenType.STAR_ASSIGN, TokenType.SLASH_ASSIGN]

    def test_single_char_operators(self):
        assert types("+ - * / % < > ! & | ^ ~ =")[:-1] == [
            TokenType.PLUS, TokenType.MINUS, TokenType.STAR,
            TokenType.SLASH, TokenType.PERCENT, TokenType.LT, TokenType.GT,
            TokenType.NOT, TokenType.BITAND, TokenType.BITOR,
            TokenType.BITXOR, TokenType.BITNOT, TokenType.ASSIGN]

    def test_maximal_munch(self):
        # `<<=` is SHL then ASSIGN (no <<= token in the language).
        assert types("<<=")[:-1] == [TokenType.SHL, TokenType.ASSIGN]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("@")


class TestComments:
    def test_line_comment(self):
        assert types("x // comment here\n y") == [
            TokenType.IDENT, TokenType.IDENT, TokenType.EOF]

    def test_line_comment_at_eof(self):
        assert types("x // no newline") == [TokenType.IDENT, TokenType.EOF]

    def test_block_comment(self):
        assert types("a /* b c */ d") == [
            TokenType.IDENT, TokenType.IDENT, TokenType.EOF]

    def test_multiline_block_comment(self):
        assert types("a /* line1\nline2\n*/ b") == [
            TokenType.IDENT, TokenType.IDENT, TokenType.EOF]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(LexError) as info:
            tokenize("x\n  $")
        assert info.value.line == 2
        assert info.value.column == 3
