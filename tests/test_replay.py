"""Trace replay (races/replay.py): differential and fallback tests.

The replay fast path must be *indistinguishable* from re-execution:
identical race reports, identical S-DPST, identical placements and
repaired source.  These tests enforce that bit-for-bit over the full
Table-1 benchmark suite and the student-homework corpus, for both
ESP-bags variants.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import BENCHMARK_ORDER, get_benchmark
from repro.bench.students import (
    ASSIGNMENT,
    MATCHED_TEMPLATES,
    OVERSYNC_TEMPLATES,
    RACY_TEMPLATES,
)
from repro.errors import RepairError, ReplayError
from repro.lang import parse, strip_finishes
from repro.races import detect_races
from repro.races.replay import replay_detection
from repro.repair import repair_program
from repro.repair.engine import RepairEngine, replay_enabled_default

ALGORITHMS = ("mrw", "srw")

STUDENT_SOURCES = [
    pytest.param(source, id=f"student-{i}")
    for i, (_desc, source) in enumerate(
        RACY_TEMPLATES + OVERSYNC_TEMPLATES + MATCHED_TEMPLATES)
]


# ----------------------------------------------------------------------
# Normalization helpers: raw addresses come from a process-global counter
# and are not stable across runs, so reports are compared after renaming
# every address by its first occurrence.
# ----------------------------------------------------------------------

def _norm_addr(addr, table):
    if addr not in table:
        table[addr] = len(table)
    kind = addr[0]
    if kind == "field":
        return ("field", table[addr], addr[2])
    return (kind, table[addr])


def norm_report(report):
    table = {}
    rows = []
    for race in report:
        rows.append((
            race.kind,
            _norm_addr(race.addr, table),
            race.source.index, race.sink.index,
            race.source_ast.nid, race.sink_ast.nid,
            race.source_task, race.sink_task,
        ))
    return rows


def dpst_sig(dpst):
    return [(n.kind, n.index, n.depth, n.cost, tuple(n.anchors),
             n.anchor_nid, n.block_nid, n.construct_nid, n.scope_kind)
            for n in dpst.walk()]


def _placement_sig(result):
    return [
        [(p.graph_size, p.edge_count, p.cost, tuple(p.finishes))
         for p in it.placements]
        for it in result.iterations
    ]


# ----------------------------------------------------------------------
# Detection differential: replay of the recorded trace vs a fresh run
# ----------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_replay_matches_reexecution(name, algorithm):
    spec = get_benchmark(name)
    program = strip_finishes(spec.parse())
    args = spec.test_args
    recorded = detect_races(program, args, algorithm=algorithm,
                            record_trace=True)
    assert recorded.trace is not None and not recorded.replayed
    replayed = replay_detection(recorded.trace, program, algorithm=algorithm)
    fresh = detect_races(program, args, algorithm=algorithm)

    assert replayed.replayed
    assert norm_report(replayed.report) == norm_report(fresh.report)
    assert dpst_sig(replayed.dpst) == dpst_sig(fresh.dpst)
    assert replayed.execution.output == fresh.execution.output
    assert replayed.execution.ops == fresh.execution.ops
    assert replayed.execution.value == fresh.execution.value
    # The recorded run itself must also be unperturbed by recording.
    assert norm_report(recorded.report) == norm_report(fresh.report)
    assert dpst_sig(recorded.dpst) == dpst_sig(fresh.dpst)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_replay_after_repair_matches_reexecution(name, algorithm):
    """Replaying the *original* trace against the repaired program (the
    engine's confirming run) rebuilds the same S-DPST as executing the
    repaired program for real — the injected finish brackets land exactly
    where execution would put them."""
    spec = get_benchmark(name)
    program = strip_finishes(spec.parse())
    args = spec.test_args
    recorded = detect_races(program, args, algorithm=algorithm,
                            record_trace=True)
    repaired = repair_program(program, args, algorithm=algorithm,
                              reuse_trace=False).repaired
    replayed = replay_detection(recorded.trace, repaired, algorithm=algorithm)
    fresh = detect_races(repaired, args, algorithm=algorithm)
    assert replayed.report.is_race_free and fresh.report.is_race_free
    assert dpst_sig(replayed.dpst) == dpst_sig(fresh.dpst)


# ----------------------------------------------------------------------
# Repair differential: the full pipeline with replay on vs off
# ----------------------------------------------------------------------

def _assert_repair_equivalent(program, args, algorithm):
    on = repair_program(program, args, algorithm=algorithm, reuse_trace=True)
    off = repair_program(program, args, algorithm=algorithm, reuse_trace=False)
    assert on.converged == off.converged
    assert len(on.iterations) == len(off.iterations)
    assert on.repaired_source == off.repaired_source
    assert _placement_sig(on) == _placement_sig(off)
    for it_on, it_off in zip(on.iterations, off.iterations):
        assert (norm_report(it_on.detection.report)
                == norm_report(it_off.detection.report))
    # Replay engages from iteration 1 onward: when iteration 0 found races,
    # every later detection (including the confirming run) replays on the
    # fast path — and never on the slow one.  An already race-free program
    # converges on the executed iteration-0 run itself.
    assert not off.final_detection.replayed
    if on.iterations:
        assert on.final_detection.replayed
        for it in on.iterations[1:]:
            assert it.detection.replayed
    else:
        assert not on.final_detection.replayed
    return on


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_repair_differential_bench(name, algorithm):
    spec = get_benchmark(name)
    program = strip_finishes(spec.parse())
    _assert_repair_equivalent(program, spec.test_args, algorithm)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("source", STUDENT_SOURCES)
def test_repair_differential_students(source, algorithm):
    program = parse(source)
    try:
        _assert_repair_equivalent(program, (40,), algorithm)
    except RepairError:
        # A few racy submissions are not repairable by finish insertion;
        # both paths must agree on that too.
        with pytest.raises(RepairError):
            repair_program(program, (40,), algorithm=algorithm,
                           reuse_trace=False)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_repair_differential_assignment(algorithm):
    _assert_repair_equivalent(parse(ASSIGNMENT), (40,), algorithm)


# ----------------------------------------------------------------------
# Multi-iteration repair: nested asyncs whose inner placement is deferred
# ----------------------------------------------------------------------

NESTED_DEFERRAL = """
def main(n) {
    var x = 0;
    var y = 0;
    async {
        async {
            var t = 0;
            for (var i = 0; i < n; i = i + 1) { t = t + i; }
            y = t;
        }
        y = y + 1;
        x = 5;
    }
    x = x + 1;
}
"""


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_multi_iteration_repair_replays(algorithm):
    on = repair_program(parse(NESTED_DEFERRAL), (50,), algorithm=algorithm,
                        reuse_trace=True)
    off = repair_program(parse(NESTED_DEFERRAL), (50,), algorithm=algorithm,
                         reuse_trace=False)
    assert len(on.iterations) >= 2  # the inner edit is deferred one round
    assert on.converged
    # Iteration 0 executes (and records); every later detection replays.
    assert not on.iterations[0].detection.replayed
    assert all(it.detection.replayed for it in on.iterations[1:])
    assert on.final_detection.replayed
    assert on.repaired_source == off.repaired_source


# ----------------------------------------------------------------------
# Access-trace invariance (the correctness premise of replay): finish
# insertion does not change the recorded access stream.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_access_trace_invariant_across_repair(name):
    spec = get_benchmark(name)
    program = strip_finishes(spec.parse())
    args = spec.test_args
    before = detect_races(program, args, record_trace=True).trace
    repaired = repair_program(program, args, reuse_trace=False).repaired
    after = detect_races(repaired, args, record_trace=True).trace
    # Address ids are interned in first-occurrence order, so equal acodes
    # lists mean the same reads/writes of the same locations in the same
    # order, independent of raw address allocation.
    assert after.acodes == before.acodes
    assert ([n.nid for n in after.anodes] == [n.nid for n in before.anodes])
    assert sum(after.segcosts) == sum(before.segcosts)
    assert after.output == before.output
    assert after.ops == before.ops
    # The repaired run has extra finish events but the same statements.
    assert before.stmt_nids <= after.stmt_nids


# ----------------------------------------------------------------------
# Fallbacks and toggles
# ----------------------------------------------------------------------

def test_replay_rejects_unsupported_algorithm():
    program = parse("def main() { var x = 0; async { x = 1; } x = 2; }")
    trace = detect_races(program, (), record_trace=True).trace
    with pytest.raises(ReplayError):
        replay_detection(trace, program, algorithm="vc")


def test_replay_rejects_foreign_program():
    program = parse("def main() { var x = 0; async { x = 1; } x = 2; }")
    # A different (smaller) program: the recorded statement ids do not
    # all exist in it, so replay refuses rather than mis-attributing.
    other = parse("def main() { var y = 0; }")
    trace = detect_races(program, (), record_trace=True).trace
    with pytest.raises(ReplayError):
        replay_detection(trace, other, algorithm="mrw")


def test_engine_falls_back_to_reexecution(monkeypatch):
    """A ReplayError mid-repair silently re-executes (and re-records)."""
    import repro.races.replay as replay_mod

    calls = {"n": 0}
    real = replay_mod.replay_detection

    def flaky(trace, program, algorithm="mrw", **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise ReplayError("synthetic failure")
        return real(trace, program, algorithm=algorithm, **kwargs)

    monkeypatch.setattr(replay_mod, "replay_detection", flaky)
    program = parse(NESTED_DEFERRAL)
    result = repair_program(program, (50,), reuse_trace=True)
    reference = repair_program(program, (50,), reuse_trace=False)
    assert calls["n"] >= 1
    assert result.converged
    assert result.repaired_source == reference.repaired_source
    # The failed replay re-executed, so that iteration is not replayed...
    assert not result.iterations[1].detection.replayed
    # ...but it re-recorded, so the confirming run replays again.
    assert result.final_detection.replayed


def test_replay_env_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY", "0")
    assert not replay_enabled_default()
    assert not RepairEngine().reuse_trace
    monkeypatch.setenv("REPRO_REPLAY", "off")
    assert not replay_enabled_default()
    monkeypatch.delenv("REPRO_REPLAY")
    assert replay_enabled_default()
    assert RepairEngine().reuse_trace
    # Explicit argument beats the environment.
    monkeypatch.setenv("REPRO_REPLAY", "0")
    assert RepairEngine(reuse_trace=True).reuse_trace
    # The vector-clock detector cannot replay regardless.
    monkeypatch.delenv("REPRO_REPLAY")
    assert not RepairEngine(algorithm="vc").reuse_trace


def test_cli_replay_flags(tmp_path, capsys):
    from repro.cli import main as cli_main

    path = tmp_path / "prog.hj"
    path.write_text(NESTED_DEFERRAL)
    assert cli_main(["repair", str(path), "--arg", "20", "--replay"]) == 0
    replay_err = capsys.readouterr().err
    assert "(replayed)" in replay_err
    assert cli_main(["repair", str(path), "--arg", "20", "--no-replay"]) == 0
    noreplay_err = capsys.readouterr().err
    assert "(replayed)" not in noreplay_err
    assert "(executed)" in noreplay_err
