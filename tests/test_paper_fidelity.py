"""Paper-statement fidelity tests: each test encodes one claim made in
the paper's text and checks this implementation satisfies it."""

import pytest

from repro.bench import get_benchmark
from repro.dpst import Dpst
from repro.lang import ast, strip_finishes
from repro.races import detect_races
from repro.repair import repair_program
from repro.repair.dependence import group_races_by_nslca
from tests.conftest import build


class TestProblemStatement:
    """Problem 1's five criteria, on a representative repair."""

    SOURCE = """
    var a = 0;
    var b = 0;
    def main() {
        async { a = 1; }
        async { b = 2; }
        print(a + b);
    }
    """

    @pytest.fixture(scope="class")
    def repaired(self):
        return repair_program(build(self.SOURCE))

    def test_criterion1_race_free_for_input(self, repaired):
        assert detect_races(repaired.repaired).report.is_race_free

    def test_criterion2_lexical_scope(self, repaired):
        # Every synthetic finish is a well-formed statement wrapping a
        # contiguous statement run of exactly one block (re-parse proves
        # well-formedness).
        from repro.lang import parse, pretty
        reparsed = parse(pretty(repaired.repaired))
        assert "main" in reparsed.functions

    def test_criterion4_serial_elision_semantics(self, repaired):
        from repro.lang import serial_elision
        from repro.runtime import run_program
        assert run_program(repaired.repaired).output == \
            run_program(serial_elision(build(self.SOURCE))).output

    def test_criterion5_statement_order(self, repaired):
        prints = [n for n in ast.walk(repaired.repaired)
                  if isinstance(n, ast.Call) and n.name == "print"]
        assert len(prints) == 1  # nothing duplicated or dropped


class TestSection2Examples:
    def test_figure1_mergesort_placement(self):
        # "A finish statement is needed around lines 4-5 for correctness
        # and maximal parallelism" — around the two recursive asyncs.
        spec = get_benchmark("mergesort")
        result = repair_program(strip_finishes(spec.parse()), (16,))
        msort = result.repaired.functions["mergesort"]
        finishes = [s for s in msort.body.stmts
                    if isinstance(s, ast.FinishStmt) and s.synthetic]
        assert len(finishes) == 1
        # It sits before the merge call and after the mid computation.
        idx = msort.body.stmts.index(finishes[0])
        following = msort.body.stmts[idx + 1]
        assert isinstance(following, ast.ExprStmt)
        assert following.expr.name == "merge"

    def test_figure2_quicksort_no_finish_inside_recursion_needed(self):
        # The tool finds a repair joining the whole sort before the reads
        # in main; quicksort's own body needs no internal finish for this
        # program shape (the paper's "line 11" discussion).
        spec = get_benchmark("quicksort")
        result = repair_program(strip_finishes(spec.parse()), (60,))
        qsort = result.repaired.functions["quicksort"]
        internal = [n for n in ast.walk(qsort)
                    if isinstance(n, ast.FinishStmt)]
        main_fin = [n for n in ast.walk(result.repaired.main)
                    if isinstance(n, ast.FinishStmt)]
        assert main_fin, "a finish must guard main's reads"
        assert not internal


class TestSection4Claims:
    def test_srw_summary_is_constant_space(self, figure7_source):
        # "each location's access summary requires O(1) space"
        detection = detect_races(build(figure7_source), algorithm="srw")
        for entry in detection.detector.shadow.values():
            # one writer slot + one reader slot + two cached clock ints:
            # constant per location, regardless of how many accesses hit it
            assert len(entry) == 4

    def test_mrw_reports_all_races_in_one_run(self, figure7_source):
        # Repairing with MRW needs exactly one repair iteration here;
        # the confirming run finds nothing.
        result = repair_program(build(figure7_source), algorithm="mrw")
        assert len(result.iterations) == 1
        assert result.final_detection.report.is_race_free

    def test_detection_iff_race_exists(self):
        # "detects data races in a given program if and only if a data
        # race exists" — race-free program => no report; racy => report.
        clean = build("""
        var x = 0;
        def main() { finish { async { x = 1; } } print(x); }
        """)
        racy = build("""
        var x = 0;
        def main() { async { x = 1; } print(x); }
        """)
        assert detect_races(clean).report.is_race_free
        assert not detect_races(racy).report.is_race_free


class TestTheorem3:
    """A finish resolving race Di can resolve Dj only if their NS-LCAs
    coincide."""

    SOURCE = """
    var x = 0;
    var y = 0;
    def main() {
        if (true) {
            async { x = 1; }
            print(x);
        }
        async { y = 1; }
        print(y);
    }
    """

    def test_fix_at_one_nslca_leaves_other_group_racy(self):
        program = build(self.SOURCE)
        detection = detect_races(program)
        pairs = detection.report.distinct_step_pairs()
        groups = group_races_by_nslca(detection.dpst, pairs)
        # Two races; both NS-LCAs here are the root (scope nodes are
        # transparent), so craft the structural variant instead: wrap
        # only the x-race's async in a finish node and check the y-race
        # stays parallel.
        tree = detection.dpst
        x_source, x_sink = pairs[0]
        y_source, y_sink = pairs[1]
        nslca = tree.ns_lca(x_source, x_sink)
        toward = tree.non_scope_child_toward(nslca, x_source)
        parent = toward.parent
        idx = parent.children.index(toward)
        tree.insert_finish_node(parent, idx, idx)
        assert not Dpst.may_happen_in_parallel(x_source, x_sink)
        assert Dpst.may_happen_in_parallel(y_source, y_sink)


class TestTable1Fidelity:
    def test_repair_inputs_match_paper(self):
        paper = {
            "fibonacci": (16,),
            "quicksort": (1000,),
            "mergesort": (1000,),
            "nqueens": (6,),
            "fannkuch": (6,),
        }
        for name, args in paper.items():
            spec = get_benchmark(name)
            assert spec.repair_args[0] == args[0], name

    def test_spanning_tree_paper_parameters(self):
        spec = get_benchmark("spanningtree")
        nodes, degree, _chunks = spec.repair_args
        assert (nodes, degree) == (200, 4)

    def test_sor_paper_parameters(self):
        spec = get_benchmark("sor")
        size, iters, _ = spec.repair_args
        assert (size, iters) == (100, 1)
