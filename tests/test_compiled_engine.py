"""Differential tests: the closure-compiled engine must be observationally
identical to the tree-walking interpreter.

The compiled engine's contract (DESIGN.md, "Execution engines") is that
for any program and input it produces the same output lines, final value,
``ops`` count, and the *same observer event sequence* — so the cost
model, S-DPST, and every race report are bit-for-bit unchanged.  These
tests enforce the contract over the whole bench corpus (original and
finish-stripped variants) and the synthetic student-program corpus.
"""

import pytest

from repro.bench import all_benchmarks
from repro.bench.students import GRADING_INPUTS, synthesize_population
from repro.errors import RuntimeFault, StepLimitExceeded
from repro.lang import strip_finishes
from repro.races import detect_races
from repro.runtime import ExecutionObserver, run_program
from repro.runtime.interpreter import (
    ENGINES,
    get_default_engine,
    set_default_engine,
)
from tests.conftest import build


class RecordingObserver(ExecutionObserver):
    """Records every primitive observer event, with addresses renamed to
    their first-seen order so runtime object ids never leak into the
    comparison.  It deliberately does *not* override the fused
    ``cost_read``/``cost_write`` hooks: their default decomposition into
    ``add_cost`` + ``read``/``write`` is itself part of the equivalence
    contract under test.
    """

    def __init__(self):
        self.events = []
        self._addr_names = {}

    def _addr(self, addr):
        name = self._addr_names.get(addr)
        if name is None:
            name = (addr[0], len(self._addr_names))
            self._addr_names[addr] = name
        return name

    def enter_async(self, stmt):
        self.events.append(("enter_async", stmt.nid))

    def exit_async(self):
        self.events.append(("exit_async",))

    def enter_finish(self, stmt):
        self.events.append(("enter_finish", stmt.nid))

    def exit_finish(self):
        self.events.append(("exit_finish",))

    def enter_scope(self, kind, construct_nid, block_nid):
        self.events.append(("enter_scope", kind, construct_nid, block_nid))

    def exit_scope(self):
        self.events.append(("exit_scope",))

    def at_statement(self, stmt_nid):
        self.events.append(("at_statement", stmt_nid))

    def read(self, addr, node):
        self.events.append(("read", self._addr(addr), node.nid))

    def write(self, addr, node):
        self.events.append(("write", self._addr(addr), node.nid))

    def add_cost(self, units):
        self.events.append(("cost", units))


def run_both(program_factory, args):
    """Run a program under both engines with full event recording."""
    results = {}
    for engine in ENGINES:
        observer = RecordingObserver()
        result = run_program(program_factory(), args, observer=observer,
                             engine=engine)
        results[engine] = (result, observer.events)
    return results["tree"], results["compiled"]


def assert_equivalent(program_factory, args, label):
    (tree_res, tree_events), (comp_res, comp_events) = \
        run_both(program_factory, args)
    assert tree_res.output == comp_res.output, label
    assert tree_res.value == comp_res.value, label
    assert tree_res.ops == comp_res.ops, label
    if tree_events != comp_events:
        for i, (a, b) in enumerate(zip(tree_events, comp_events)):
            assert a == b, f"{label}: event #{i}: tree={a} compiled={b}"
        assert len(tree_events) == len(comp_events), label
    assert tree_events == comp_events, label


def race_signature(detection):
    """Race report as engine-independent data, in report order: step
    indices come from the S-DPST (identical across engines when the event
    streams match); array/struct ids are runtime object identities, so
    they are renamed to first-seen order while indices/field names (the
    stable coordinates) are kept."""
    ids = {}
    sig = []
    for race in detection.report:
        addr = race.addr
        owner = ids.setdefault((addr[0], addr[1]), len(ids))
        norm = (addr[0], owner) + tuple(addr[2:])
        sig.append((race.kind, norm, race.source.index, race.sink.index))
    return sig


class TestBenchCorpus:
    @pytest.mark.parametrize("spec", all_benchmarks(),
                             ids=lambda spec: spec.name)
    def test_original_program_equivalent(self, spec):
        assert_equivalent(spec.parse, spec.test_args, spec.name)

    @pytest.mark.parametrize("spec", all_benchmarks(),
                             ids=lambda spec: spec.name)
    def test_stripped_program_equivalent(self, spec):
        assert_equivalent(lambda: strip_finishes(spec.parse()),
                          spec.test_args, f"{spec.name} (stripped)")

    @pytest.mark.parametrize("spec", all_benchmarks(),
                             ids=lambda spec: spec.name)
    @pytest.mark.parametrize("algorithm", ["srw", "mrw"])
    def test_race_reports_identical(self, spec, algorithm):
        reports = {}
        for engine in ENGINES:
            detection = detect_races(strip_finishes(spec.parse()),
                                     spec.test_args, algorithm=algorithm,
                                     engine=engine)
            reports[engine] = (race_signature(detection),
                               detection.execution.ops,
                               detection.detector.monitored_accesses)
        assert reports["tree"] == reports["compiled"], \
            f"{spec.name} [{algorithm}]"


class TestStudentCorpus:
    @pytest.mark.parametrize(
        "submission", synthesize_population(),
        ids=lambda sub: f"{sub.expected.name.lower()}-{sub.description[:30]}")
    def test_submission_equivalent(self, submission):
        assert_equivalent(submission.parse, GRADING_INPUTS[0],
                          submission.description)


class TestErrorParity:
    FAULTY = """
    var a = 0;
    def main(n) {
        a = 1 / (n - n);
    }
    """

    def test_runtime_fault_matches(self):
        errors = {}
        for engine in ENGINES:
            with pytest.raises(RuntimeFault) as excinfo:
                run_program(build(self.FAULTY), (3,), engine=engine)
            errors[engine] = str(excinfo.value)
        assert errors["tree"] == errors["compiled"]

    def test_step_limit_parity(self):
        source = """
        def main() {
            var i = 0;
            while (true) { i = i + 1; }
        }
        """
        ops = {}
        for engine in ENGINES:
            with pytest.raises(StepLimitExceeded):
                run_program(build(source), (), max_ops=5000, engine=engine)
            ops[engine] = True
        assert ops["tree"] and ops["compiled"]


class TestLimits:
    """Regression tests for the two interpreter-limit bugs fixed in PR 2."""

    LOOP = """
    def main() {
        var i = 0;
        while (true) { i = i + 1; }
    }
    """

    @pytest.mark.parametrize("engine", ENGINES)
    def test_recursion_limit_restored_after_run(self, engine):
        import sys
        before = sys.getrecursionlimit()
        run_program(build("def main() { print(1); }"), (), engine=engine)
        assert sys.getrecursionlimit() == before

    @pytest.mark.parametrize("engine", ENGINES)
    def test_recursion_limit_restored_after_fault(self, engine):
        import sys
        before = sys.getrecursionlimit()
        with pytest.raises(RuntimeFault):
            run_program(build("def main() { print(1 / 0); }"), (),
                        engine=engine)
        assert sys.getrecursionlimit() == before

    @pytest.mark.parametrize("engine", ENGINES)
    def test_small_step_limit_stops_near_limit(self, engine):
        # max_ops far below the old 4096-op check interval: the run must
        # stop at (not thousands of ops past) the cap.
        from repro.runtime import Interpreter
        interp = Interpreter(build(self.LOOP), max_ops=100, engine=engine)
        with pytest.raises(StepLimitExceeded):
            interp.run(())
        assert 100 <= interp.ops <= 110

    @pytest.mark.parametrize("engine", ENGINES)
    def test_limit_not_exceeded_by_interval(self, engine):
        from repro.runtime import Interpreter
        interp = Interpreter(build(self.LOOP), max_ops=5000, engine=engine)
        with pytest.raises(StepLimitExceeded):
            interp.run(())
        assert 5000 <= interp.ops <= 5010


class TestEngineSelection:
    def test_default_engine_is_compiled(self):
        assert get_default_engine() == "compiled"

    def test_set_default_engine_round_trip(self):
        previous = get_default_engine()
        try:
            set_default_engine("tree")
            assert get_default_engine() == "tree"
        finally:
            set_default_engine(previous)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            set_default_engine("jit")
        with pytest.raises(ValueError):
            run_program(build("def main() {}"), (), engine="jit")
