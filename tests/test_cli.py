"""The repro-repair command-line interface."""

import pytest

from repro.cli import main

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""

CLEAN = """
var x = 0;
def main() {
    finish { async { x = 1; } }
    print(x);
}
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.hj"
    path.write_text(RACY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.hj"
    path.write_text(CLEAN)
    return str(path)


class TestDetect:
    def test_detect_reports_races(self, racy_file, capsys):
        code = main(["detect", racy_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "1 data race(s)" in out

    def test_detect_clean_program(self, clean_file, capsys):
        code = main(["detect", clean_file])
        assert code == 0
        assert "no data races" in capsys.readouterr().out

    def test_detect_srw(self, racy_file, capsys):
        assert main(["detect", racy_file, "--algorithm", "srw"]) == 1

    def test_strip_finishes_option(self, clean_file):
        assert main(["detect", clean_file, "--strip-finishes"]) == 1


class TestRepair:
    def test_repair_prints_fixed_source(self, racy_file, capsys):
        code = main(["repair", racy_file])
        captured = capsys.readouterr()
        assert code == 0
        assert "finish {" in captured.out
        assert "converged" in captured.err

    def test_repair_to_output_file(self, racy_file, tmp_path, capsys):
        out_file = tmp_path / "fixed.hj"
        code = main(["repair", racy_file, "-o", str(out_file)])
        assert code == 0
        # The written file must itself be race-free.
        assert main(["detect", str(out_file)]) == 0

    def test_repair_with_args(self, tmp_path):
        path = tmp_path / "p.hj"
        path.write_text("""
        var x = 0;
        def main(n) {
            async { x = n; }
            print(x);
        }""")
        assert main(["repair", str(path), "--arg", "5"]) == 0


class TestMeasure:
    def test_measure_outputs_metrics(self, clean_file, capsys):
        code = main(["measure", clean_file, "--processors", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "T1" in out and "Tinf" in out and "speedup" in out

    def test_measure_sequential(self, clean_file, capsys):
        assert main(["measure", clean_file, "--sequential"]) == 0


class TestBench:
    def test_bench_quick_table4(self, capsys):
        code = main(["bench", "--quick", "--benchmarks", "fibonacci",
                     "--experiments", "table4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fibonacci" in out

    def test_bench_unknown_experiment(self, capsys):
        assert main(["bench", "--experiments", "tableX"]) == 2


class TestCoverage:
    def test_coverage_adequate(self, racy_file, capsys):
        code = main(["coverage", racy_file, "--inputs", ""])
        out = capsys.readouterr().out
        assert code == 0
        assert "async coverage" in out

    def test_coverage_flags_missing_input(self, tmp_path, capsys):
        path = tmp_path / "branchy.hj"
        path.write_text("""
        var x = 0;
        def main(n) {
            if (n > 10) { async { x = 1; } }
            print(x);
        }""")
        assert main(["coverage", str(path), "--inputs", "5"]) == 1
        assert "WARNING" in capsys.readouterr().out
        assert main(["coverage", str(path), "--inputs", "5", "20"]) == 0


class TestDot:
    def test_dpst_dot(self, racy_file, capsys):
        assert main(["dot", racy_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph sdpst")

    def test_graph_dot(self, clean_file, capsys):
        assert main(["dot", clean_file, "--view", "graph"]) == 0
        assert capsys.readouterr().out.startswith("digraph computation")


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["detect", "/nonexistent/p.hj"]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.hj"
        path.write_text("def main( {")
        assert main(["detect", str(path)]) == 2
        assert "error" in capsys.readouterr().err
