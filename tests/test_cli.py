"""The repro-repair command-line interface."""

import json

import pytest

from repro.cli import main

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""

CLEAN = """
var x = 0;
def main() {
    finish { async { x = 1; } }
    print(x);
}
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.hj"
    path.write_text(RACY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.hj"
    path.write_text(CLEAN)
    return str(path)


class TestDetect:
    def test_detect_reports_races(self, racy_file, capsys):
        code = main(["detect", racy_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "1 data race(s)" in out

    def test_detect_clean_program(self, clean_file, capsys):
        code = main(["detect", clean_file])
        assert code == 0
        assert "no data races" in capsys.readouterr().out

    def test_detect_srw(self, racy_file, capsys):
        assert main(["detect", racy_file, "--algorithm", "srw"]) == 1

    def test_strip_finishes_option(self, clean_file):
        assert main(["detect", clean_file, "--strip-finishes"]) == 1


class TestRepair:
    def test_repair_prints_fixed_source(self, racy_file, capsys):
        code = main(["repair", racy_file])
        captured = capsys.readouterr()
        assert code == 0
        assert "finish {" in captured.out
        assert "converged" in captured.err

    def test_repair_to_output_file(self, racy_file, tmp_path, capsys):
        out_file = tmp_path / "fixed.hj"
        code = main(["repair", racy_file, "-o", str(out_file)])
        assert code == 0
        # The written file must itself be race-free.
        assert main(["detect", str(out_file)]) == 0

    def test_repair_with_args(self, tmp_path):
        path = tmp_path / "p.hj"
        path.write_text("""
        var x = 0;
        def main(n) {
            async { x = n; }
            print(x);
        }""")
        assert main(["repair", str(path), "--arg", "5"]) == 0


class TestMeasure:
    def test_measure_outputs_metrics(self, clean_file, capsys):
        code = main(["measure", clean_file, "--processors", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "T1" in out and "Tinf" in out and "speedup" in out

    def test_measure_sequential(self, clean_file, capsys):
        assert main(["measure", clean_file, "--sequential"]) == 0


class TestBench:
    def test_bench_quick_table4(self, capsys):
        code = main(["bench", "--quick", "--benchmarks", "fibonacci",
                     "--experiments", "table4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fibonacci" in out

    def test_bench_unknown_experiment(self, capsys):
        assert main(["bench", "--experiments", "tableX"]) == 2


class TestCoverage:
    def test_coverage_adequate(self, racy_file, capsys):
        code = main(["coverage", racy_file, "--inputs", ""])
        out = capsys.readouterr().out
        assert code == 0
        assert "async coverage" in out

    def test_coverage_flags_missing_input(self, tmp_path, capsys):
        path = tmp_path / "branchy.hj"
        path.write_text("""
        var x = 0;
        def main(n) {
            if (n > 10) { async { x = 1; } }
            print(x);
        }""")
        assert main(["coverage", str(path), "--inputs", "5"]) == 1
        assert "WARNING" in capsys.readouterr().out
        assert main(["coverage", str(path), "--inputs", "5", "20"]) == 0


class TestDot:
    def test_dpst_dot(self, racy_file, capsys):
        assert main(["dot", racy_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph sdpst")

    def test_graph_dot(self, clean_file, capsys):
        assert main(["dot", clean_file, "--view", "graph"]) == 0
        assert capsys.readouterr().out.startswith("digraph computation")


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["detect", "/nonexistent/p.hj"]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.hj"
        path.write_text("def main( {")
        assert main(["detect", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_is_one_line_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "bad.hj"
        path.write_text("def main( {")
        assert main(["detect", str(path)]) == 2
        err = capsys.readouterr().err.strip()
        assert len(err.splitlines()) == 1
        # file:line:col: category: message — clickable and greppable.
        assert err.startswith(f"{path}:1:")
        assert "syntax error:" in err

    def test_lex_error_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "bad.hj"
        path.write_text("def main() { var x = `; }")
        assert main(["detect", str(path)]) == 2
        err = capsys.readouterr().err.strip()
        assert err.startswith(f"{path}:1:") and "lex error:" in err

    def test_validation_error_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "nomain.hj"
        path.write_text("def helper() { }")
        assert main(["repair", str(path)]) == 2
        err = capsys.readouterr().err.strip()
        assert len(err.splitlines()) == 1
        assert str(path) in err and "validation error:" in err


class TestJsonMode:
    def test_detect_json_schema(self, racy_file, capsys):
        code = main(["detect", racy_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["schema"] == 3
        assert payload["status"] == "ok"
        assert payload["kind"] == "detect"
        assert payload["result"]["race_count"] == 1
        assert payload["result"]["races"][0]["kind"] == "W->R"

    def test_detect_json_clean_exit_zero(self, clean_file, capsys):
        assert main(["detect", clean_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["race_free"]

    def test_repair_json_matches_plain_repair(self, racy_file, tmp_path,
                                              capsys):
        plain_out = tmp_path / "plain.hj"
        assert main(["repair", racy_file, "-o", str(plain_out)]) == 0
        capsys.readouterr()
        json_out = tmp_path / "json.hj"
        code = main(["repair", racy_file, "--json", "-o", str(json_out)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["result"]["converged"]
        # --json changes the report format, never the repair.
        assert json_out.read_text() == plain_out.read_text()
        assert payload["result"]["repaired_source"] == plain_out.read_text()

    def test_json_error_is_structured(self, tmp_path, capsys):
        path = tmp_path / "bad.hj"
        path.write_text("def main( {")
        assert main(["detect", str(path), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "error"
        assert payload["error"]["category"] == "parse"
        assert payload["error"]["line"] == 1


class TestBatch:
    @pytest.fixture
    def corpus(self, tmp_path):
        directory = tmp_path / "corpus"
        directory.mkdir()
        (directory / "racy.hj").write_text(RACY)
        (directory / "clean.hj").write_text(CLEAN)
        (directory / "twin.hj").write_text("// same program\n" + RACY)
        return directory

    def test_batch_repairs_directory(self, corpus, tmp_path, capsys):
        out_dir = tmp_path / "fixed"
        code = main(["batch", str(corpus), "--workers", "2",
                     "--output-dir", str(out_dir)])
        captured = capsys.readouterr()
        assert code == 0
        assert "3 job(s)" in captured.err
        assert sorted(p.name for p in out_dir.iterdir()) == \
            ["clean.hj", "racy.hj", "twin.hj"]
        # Per-program output identical to single-shot repair.
        single = tmp_path / "single.hj"
        assert main(["repair", str(corpus / "racy.hj"),
                     "-o", str(single)]) == 0
        assert (out_dir / "racy.hj").read_text() == single.read_text()

    def test_batch_json_stream(self, corpus, capsys):
        code = main(["batch", str(corpus), "--kind", "detect", "--json"])
        captured = capsys.readouterr()
        # Races found are results, not failures: the batch succeeded.
        assert code == 0
        lines = [json.loads(line) for line in
                 captured.out.strip().splitlines()]
        assert len(lines) == 3
        by_name = {entry["source_name"].rsplit("/", 1)[-1]: entry
                   for entry in lines}
        assert not by_name["racy.hj"]["result"]["race_free"]
        assert by_name["clean.hj"]["result"]["race_free"]

    def test_batch_bad_file_does_not_poison(self, corpus, capsys):
        (corpus / "bad.hj").write_text("def main( {")
        code = main(["batch", str(corpus), "--kind", "detect", "--json"])
        captured = capsys.readouterr()
        assert code == 1  # one job genuinely failed
        lines = [json.loads(line) for line in
                 captured.out.strip().splitlines()]
        by_name = {entry["source_name"].rsplit("/", 1)[-1]: entry
                   for entry in lines}
        assert by_name["bad.hj"]["status"] == "error"
        assert by_name["racy.hj"]["status"] == "ok"

    def test_batch_cache_across_runs(self, corpus, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", str(corpus), "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["batch", str(corpus), "--cache-dir", cache_dir,
                     "--json"]) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.strip().splitlines()]
        assert all(entry["cached"] for entry in lines)

    def test_batch_rejects_empty_input(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["batch", str(empty)]) == 2
        assert "no .hj files" in capsys.readouterr().err


class TestTimings:
    def test_detect_timings_tree_on_stderr(self, racy_file, capsys):
        code = main(["detect", racy_file, "--timings"])
        captured = capsys.readouterr()
        assert code == 1
        assert "1 data race(s)" in captured.out
        err = captured.err
        assert f"telemetry: detect:{racy_file}" in err
        for phase in ("lex", "parse", "validate", "detect_races",
                      "execute", "dpst"):
            assert phase in err, phase
        assert "counters:" in err and "detector.races" in err

    def test_repair_timings_includes_placement(self, racy_file, capsys):
        code = main(["repair", racy_file, "--timings"])
        captured = capsys.readouterr()
        assert code == 0
        assert "finish" in captured.out  # repaired source still on stdout
        assert "placement" in captured.err
        assert "repair.iterations" in captured.err

    def test_detect_without_timings_prints_no_tree(self, racy_file, capsys):
        main(["detect", racy_file])
        assert "telemetry:" not in capsys.readouterr().err


class TestProfile:
    def test_profile_writes_valid_chrome_trace(self, racy_file, tmp_path,
                                               capsys):
        from repro.telemetry import validate_chrome_trace

        trace = tmp_path / "trace.json"
        code = main(["profile", racy_file, "--trace-out", str(trace)])
        captured = capsys.readouterr()
        assert code == 0
        assert f"telemetry: profile:{racy_file}" in captured.out
        assert str(trace) in captured.err
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"execute", "dpst", "detect", "placement"} <= names

    def test_profile_detect_kind(self, racy_file, capsys):
        code = main(["profile", racy_file, "--kind", "detect"])
        out = capsys.readouterr().out
        assert code == 0
        assert "detect_races" in out and "placement" not in out

    def test_profile_measure_adds_schedule_process(self, clean_file,
                                                   tmp_path):
        from repro.telemetry import PIPELINE_PID, SCHEDULE_PID, \
            validate_chrome_trace

        trace = tmp_path / "measure.json"
        code = main(["profile", clean_file, "--kind", "measure",
                     "--processors", "2", "--trace-out", str(trace)])
        assert code == 0
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert {PIPELINE_PID, SCHEDULE_PID} <= pids

    def test_profile_without_trace_out_writes_nothing(self, racy_file,
                                                      tmp_path, capsys):
        code = main(["profile", racy_file, "--kind", "detect"])
        assert code == 0
        # Only the fixture's source file — no trace file appeared.
        assert [p.name for p in tmp_path.iterdir()] == ["racy.hj"]

    def test_profile_bad_file_is_diagnosed(self, tmp_path, capsys):
        bad = tmp_path / "bad.hj"
        bad.write_text("def main( {")
        code = main(["profile", str(bad)])
        assert code == 2
        assert "syntax error" in capsys.readouterr().err


class TestBatchPhaseSummary:
    def test_batch_prints_phase_table(self, tmp_path, capsys):
        for index in range(3):
            (tmp_path / f"p{index}.hj").write_text(
                RACY.replace("x = 1", f"x = {index + 2}"))
        code = main(["batch", str(tmp_path), "--kind", "detect",
                     "--no-cache"])
        err = capsys.readouterr().err
        assert code == 0  # detect jobs succeed even when races are found
        assert "phase latency over executed jobs:" in err
        assert "detect_races" in err
        header = [line for line in err.splitlines() if "p50 ms" in line]
        assert header and "p95 ms" in header[0]
