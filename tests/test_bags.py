"""ESP-bags union-find structure: S/P transitions (Section 4.1)."""

from repro.races.bags import BagManager, P_BAG, S_BAG


class TestBagTransitions:
    def test_new_task_is_serialized(self):
        bags = BagManager()
        bags.make_s_bag("t1")
        assert bags.tag_of("t1") == S_BAG
        assert not bags.is_parallel("t1")

    def test_task_end_moves_to_pbag(self):
        bags = BagManager()
        bags.register_finish("f")
        bags.make_s_bag("child")
        bags.task_ends("child", "f")
        assert bags.is_parallel("child")

    def test_finish_end_serializes(self):
        bags = BagManager()
        bags.make_s_bag("parent")
        bags.register_finish("f")
        bags.make_s_bag("child")
        bags.task_ends("child", "f")
        assert bags.is_parallel("child")
        bags.finish_ends("f", "parent")
        assert not bags.is_parallel("child")
        # The parent stays serialized too.
        assert not bags.is_parallel("parent")

    def test_empty_finish_end_is_noop(self):
        bags = BagManager()
        bags.make_s_bag("parent")
        bags.register_finish("f")
        bags.finish_ends("f", "parent")
        assert bags.tag_of("parent") == S_BAG

    def test_multiple_children_same_pbag(self):
        bags = BagManager()
        bags.register_finish("f")
        for child in ("a", "b", "c"):
            bags.make_s_bag(child)
            bags.task_ends(child, "f")
        assert all(bags.is_parallel(c) for c in ("a", "b", "c"))
        bags.make_s_bag("owner")
        bags.finish_ends("f", "owner")
        assert not any(bags.is_parallel(c) for c in ("a", "b", "c"))

    def test_implicit_finish_never_drains(self):
        bags = BagManager()
        bags.register_finish("F0")
        bags.make_s_bag("dangling")
        bags.task_ends("dangling", "F0")
        assert bags.is_parallel("dangling")

    def test_nested_finish_composition(self):
        # inner finish joins a task into the middle task's S-bag; when the
        # middle task ends, everything moves to the outer P-bag together.
        bags = BagManager()
        bags.make_s_bag("root")
        bags.register_finish("outer")
        bags.make_s_bag("middle")
        bags.register_finish("inner")
        bags.make_s_bag("leaf")
        bags.task_ends("leaf", "inner")
        bags.finish_ends("inner", "middle")
        assert not bags.is_parallel("leaf")  # joined w.r.t. middle
        bags.task_ends("middle", "outer")
        assert bags.is_parallel("leaf")      # middle dangles inside outer
        assert bags.is_parallel("middle")
        bags.finish_ends("outer", "root")
        assert not bags.is_parallel("leaf")
        assert not bags.is_parallel("middle")

    def test_task_drained_set_travels_as_one(self):
        bags = BagManager()
        bags.make_s_bag("t")
        bags.register_finish("f1")
        bags.make_s_bag("a")
        bags.task_ends("a", "f1")
        bags.finish_ends("f1", "t")       # a joins t's S-bag
        bags.register_finish("f2")
        bags.task_ends("t", "f2")         # whole set becomes parallel
        assert bags.is_parallel("a")
        assert bags.is_parallel("t")

    def test_union_find_path_compression_consistency(self):
        bags = BagManager()
        bags.register_finish("f")
        for i in range(100):
            bags.make_s_bag(i)
            bags.task_ends(i, "f")
        roots = {bags._find(i) for i in range(100)}
        assert len(roots) == 1
        assert all(bags.is_parallel(i) for i in range(100))
