"""ESP-bags union-find structure: S/P transitions (Section 4.1).

Task keys are ints (the detectors use S-DPST node indices, so the
union-find is an int-indexed, list-backed forest); finish keys remain
arbitrary hashable values.
"""

from repro.races.bags import BagManager, P_BAG, S_BAG


class TestBagTransitions:
    def test_new_task_is_serialized(self):
        bags = BagManager()
        bags.make_s_bag(1)
        assert bags.tag_of(1) == S_BAG
        assert not bags.is_parallel(1)

    def test_task_end_moves_to_pbag(self):
        bags = BagManager()
        bags.register_finish("f")
        bags.make_s_bag(2)
        bags.task_ends(2, "f")
        assert bags.is_parallel(2)

    def test_finish_end_serializes(self):
        bags = BagManager()
        bags.make_s_bag(0)           # parent
        bags.register_finish("f")
        bags.make_s_bag(1)           # child
        bags.task_ends(1, "f")
        assert bags.is_parallel(1)
        bags.finish_ends("f", 0)
        assert not bags.is_parallel(1)
        # The parent stays serialized too.
        assert not bags.is_parallel(0)

    def test_empty_finish_end_is_noop(self):
        bags = BagManager()
        bags.make_s_bag(0)
        bags.register_finish("f")
        bags.finish_ends("f", 0)
        assert bags.tag_of(0) == S_BAG

    def test_multiple_children_same_pbag(self):
        bags = BagManager()
        bags.register_finish("f")
        for child in (1, 2, 3):
            bags.make_s_bag(child)
            bags.task_ends(child, "f")
        assert all(bags.is_parallel(c) for c in (1, 2, 3))
        bags.make_s_bag(4)           # owner
        bags.finish_ends("f", 4)
        assert not any(bags.is_parallel(c) for c in (1, 2, 3))

    def test_implicit_finish_never_drains(self):
        bags = BagManager()
        bags.register_finish("F0")
        bags.make_s_bag(7)
        bags.task_ends(7, "F0")
        assert bags.is_parallel(7)

    def test_sparse_task_keys(self):
        # DPST indices arrive in increasing but non-contiguous order; the
        # list-backed forest must grow through the gaps.
        bags = BagManager()
        bags.register_finish("f")
        bags.make_s_bag(5)
        bags.make_s_bag(42)
        bags.task_ends(42, "f")
        assert not bags.is_parallel(5)
        assert bags.is_parallel(42)
        assert bags.tag_of(5) == S_BAG
        assert bags.tag_of(42) == P_BAG

    def test_nested_finish_composition(self):
        # inner finish joins a task into the middle task's S-bag; when the
        # middle task ends, everything moves to the outer P-bag together.
        bags = BagManager()
        root, middle, leaf = 0, 1, 2
        bags.make_s_bag(root)
        bags.register_finish("outer")
        bags.make_s_bag(middle)
        bags.register_finish("inner")
        bags.make_s_bag(leaf)
        bags.task_ends(leaf, "inner")
        bags.finish_ends("inner", middle)
        assert not bags.is_parallel(leaf)  # joined w.r.t. middle
        bags.task_ends(middle, "outer")
        assert bags.is_parallel(leaf)      # middle dangles inside outer
        assert bags.is_parallel(middle)
        bags.finish_ends("outer", root)
        assert not bags.is_parallel(leaf)
        assert not bags.is_parallel(middle)

    def test_task_drained_set_travels_as_one(self):
        bags = BagManager()
        t, a = 0, 1
        bags.make_s_bag(t)
        bags.register_finish("f1")
        bags.make_s_bag(a)
        bags.task_ends(a, "f1")
        bags.finish_ends("f1", t)         # a joins t's S-bag
        bags.register_finish("f2")
        bags.task_ends(t, "f2")           # whole set becomes parallel
        assert bags.is_parallel(a)
        assert bags.is_parallel(t)

    def test_union_find_path_compression_consistency(self):
        bags = BagManager()
        bags.register_finish("f")
        for i in range(100):
            bags.make_s_bag(i)
            bags.task_ends(i, "f")
        roots = {bags._find(i) for i in range(100)}
        assert len(roots) == 1
        assert all(bags.is_parallel(i) for i in range(100))


class TestClock:
    """The S/P transition clock the MRW scan caches key on: it must
    advance whenever some set's tag can have changed, and stand still
    otherwise."""

    def test_starts_at_zero_and_counts_transitions(self):
        bags = BagManager()
        assert bags.clock == 0
        bags.make_s_bag(0)
        bags.register_finish("f")
        assert bags.clock == 0           # no tag changed yet
        bags.make_s_bag(1)
        bags.task_ends(1, "f")           # S -> P
        assert bags.clock == 1
        bags.finish_ends("f", 0)         # P -> S
        assert bags.clock == 2

    def test_empty_finish_does_not_tick(self):
        bags = BagManager()
        bags.make_s_bag(0)
        bags.register_finish("f")
        bags.finish_ends("f", 0)         # empty P-bag: no tag changed
        assert bags.clock == 0

    def test_verdicts_stable_between_equal_clocks(self):
        bags = BagManager()
        bags.register_finish("f")
        bags.make_s_bag(0)
        bags.make_s_bag(1)
        bags.task_ends(1, "f")
        before = bags.clock
        # Queries (with their path compression) never move the clock.
        for _ in range(5):
            assert bags.is_parallel(1)
            assert not bags.is_parallel(0)
        assert bags.clock == before
