"""Context-sensitive finishes via call-site specialization (§9)."""

import pytest

from repro.lang import ast, parse, serial_elision
from repro.races import detect_races
from repro.repair import repair_program
from repro.repair.context import contextualize, parallelism_gain
from repro.runtime import run_program
from tests.conftest import build

#: `produce` races internally only when the caller passes check=true; the
#: repair puts a finish inside `produce`, penalizing every caller.  The
#: context-sensitive pass lets check=false call sites drop it.
CONDITIONAL = """
def produce(a, check) {
    async {
        var s = 0;
        for (var i = 0; i < 30; i = i + 1) { s = s + i; }
        a[0] = s;
    }
    if (check) {
        print(a[0]);
    }
}

def main() {
    var x = new int[1];
    produce(x, true);
    var y = new int[1];
    finish {
        produce(y, false);
        var s = 0;
        for (var i = 0; i < 30; i = i + 1) { s = s + i; }
        print(s);
    }
    print(y[0]);
}
"""


class TestSpecialization:
    def test_conditional_context_drops_finish(self):
        result = repair_program(build(CONDITIONAL))
        ctx = contextualize(result)
        assert ctx.improved, ctx.summary()
        assert "produce__nofinish" in ctx.program.functions
        # The specialized program stays race-free and output-equivalent.
        assert detect_races(ctx.program).report.is_race_free
        out = run_program(ctx.program).output
        elided = run_program(serial_elision(build(CONDITIONAL))).output
        assert out == elided

    def test_gain_is_never_negative(self):
        result = repair_program(build(CONDITIONAL))
        ctx = contextualize(result)
        base, specialized = parallelism_gain(ctx, ())
        assert specialized <= base

    def test_racy_context_keeps_finish(self):
        result = repair_program(build(CONDITIONAL))
        ctx = contextualize(result)
        rewritten = {r.caller for r in ctx.rewrites}
        # The check=true call (races internally) must not be rewritten to
        # the unsynchronized variant; verify by re-detecting.
        assert detect_races(ctx.program).report.is_race_free
        assert rewritten  # at least the safe context was specialized

    def test_internal_race_blocks_specialization(self, fib_source):
        # fib's finish guards `ret.v = X.v + Y.v` — needed in *every*
        # context, so no call site can be specialized.
        result = repair_program(build(fib_source), (6,))
        ctx = contextualize(result, (6,))
        assert not ctx.improved
        assert "fib__nofinish" not in ctx.program.functions

    def test_no_synthetic_finishes_no_op(self):
        source = """
        var x = 0;
        def main() { finish { async { x = 1; } } print(x); }
        """
        result = repair_program(build(source))
        ctx = contextualize(result)
        assert not ctx.improved
        assert "no call site" in ctx.summary()

    def test_summary_describes_rewrites(self):
        result = repair_program(build(CONDITIONAL))
        ctx = contextualize(result)
        assert "produce__nofinish" in ctx.summary()

    def test_variant_recursion_stays_in_variant(self):
        source = """
        def tree(a, n) {
            if (n > 0) {
                async tree(a, n - 1);
            }
            if (n == 9) {
                a[0] = a[0] + 1;
                print(a[0]);
            }
        }
        def main() {
            var a = new int[1];
            finish { tree(a, 3); }
            print(a[0]);
        }
        """
        result = repair_program(build(source))
        ctx = contextualize(result)
        for name, func in ctx.program.functions.items():
            if name.endswith("__nofinish"):
                for node in ast.walk(func):
                    if isinstance(node, ast.Call) \
                            and node.name.startswith("tree"):
                        assert node.name == name
