"""Address interning and the packed access encoding (property-based).

The array core's correctness hangs on two recorder invariants:

* **stable interning** — equal address tuples (however aliased: fresh
  tuple objects, permuted arrival orders, interleaved duplicates) map to
  one dense id, assigned in first-seen order;
* **exact round trip** — the packed ``acodes`` stream (``addr_id << 1 |
  is_write``) decodes back to precisely the ``(addr, kind)`` sequence
  the observer saw.

Both are checked for both producers: the record-only
:class:`~repro.runtime.recorder.TraceBuffer` (the array core's live
first run) and the teeing :class:`~repro.runtime.recorder.TraceRecorder`
(the object-core recording run whose traces feed replay).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.dpst.builder import DpstBuilder
from repro.lang import parse
from repro.races import detect_races
from repro.races.replay import replay_detection
from repro.runtime.recorder import TraceBuffer, TraceRecorder

# ----------------------------------------------------------------------
# Synthetic access scripts: the three real address shapes, built fresh
# per use so equal tuples are distinct objects (interning must work by
# value, never identity).
# ----------------------------------------------------------------------


def _make_addr(key: int):
    shape = key % 3
    owner = key // 3
    if shape == 0:
        return ("cell", 1000 + owner)
    if shape == 1:
        return ("elem", 2000 + owner, owner % 5)
    return ("field", 3000 + owner, f"f{owner % 4}")


_accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=11),  # address key
              st.booleans(),                           # is_write
              st.booleans()),                          # fused cost hook?
    min_size=1, max_size=60)

_boundaries = st.sets(st.integers(min_value=1, max_value=59))


def _drive(observer, script, boundaries):
    """Feed a synthetic access script, with statement boundaries at the
    given positions (so accesses spread over several segments)."""
    observer.at_statement(1)
    for i, (key, is_write, fused) in enumerate(script):
        if i in boundaries:
            observer.at_statement(100 + i)
        addr = _make_addr(key)  # fresh tuple: aliasing on purpose
        if fused:
            hook = observer.cost_write if is_write else observer.cost_read
            hook(1, addr, None)
        else:
            hook = observer.write if is_write else observer.read
            hook(addr, None)
    return observer.trace()


def _expected_sequence(script):
    return [(_make_addr(key), "write" if is_write else "read")
            for key, is_write, _fused in script]


def _producers():
    yield "buffer", TraceBuffer()
    yield "recorder", TraceRecorder(DpstBuilder())


class TestPackedEncoding:
    @given(script=_accesses, boundaries=_boundaries)
    @settings(max_examples=60, deadline=None)
    def test_decode_is_exact_inverse(self, script, boundaries):
        expected = _expected_sequence(script)
        for label, producer in _producers():
            trace = _drive(producer, script, boundaries)
            assert trace.decode_accesses() == expected, label

    @given(script=_accesses, boundaries=_boundaries)
    @settings(max_examples=60, deadline=None)
    def test_interning_is_stable_and_dense(self, script, boundaries):
        for label, producer in _producers():
            trace = _drive(producer, script, boundaries)
            # One table entry per distinct address value, however many
            # aliased tuple objects carried it ...
            distinct = []
            for key, _w, _f in script:
                addr = _make_addr(key)
                if addr not in distinct:
                    distinct.append(addr)
            assert trace.addr_table == distinct, label  # first-seen order
            # ... and ids are dense indices into the table.
            assert all(0 <= code >> 1 < len(distinct)
                       for code in trace.acodes), label

    @given(script=_accesses)
    @settings(max_examples=30, deadline=None)
    def test_permuted_arrival_still_roundtrips(self, script):
        """Reversing the script permutes first-seen id assignment; the
        decode must still be exact for the permuted stream."""
        reverse = list(reversed(script))
        for _label, producer in _producers():
            trace = _drive(producer, reverse, set())
            assert trace.decode_accesses() == _expected_sequence(reverse)

    @given(script=_accesses, boundaries=_boundaries)
    @settings(max_examples=30, deadline=None)
    def test_producers_agree_bit_for_bit(self, script, boundaries):
        """The record-only buffer and the teeing recorder emit identical
        arrays for one event stream."""
        traces = [_drive(producer, script, boundaries)
                  for _label, producer in _producers()]
        a, b = traces
        assert a.acodes == b.acodes
        assert a.addr_table == b.addr_table
        assert a.starts == b.starts
        assert a.kinds == b.kinds


class TestLiveAndReplayProducers:
    SOURCE = """
    var x = 0;
    var y = 0;
    def main(n) {
        var a = new int[n];
        async {
            for (var i = 0; i < n; i = i + 1) { a[i] = i; x = x + 1; }
        }
        for (var i = 0; i < n; i = i + 1) { y = y + a[i]; }
        print(y + x);
    }
    """

    def test_live_run_decodes_identically_across_cores(self):
        """Both recording paths (TraceBuffer under the array core,
        TraceRecorder under the object core) decode to the same
        normalized (addr, kind) sequence for one program."""
        sequences = {}
        for core in ("array", "object"):
            detection = detect_races(parse(self.SOURCE), (8,), core=core,
                                     record_trace=True)
            names = {}
            norm = []
            for addr, kind in detection.trace.decode_accesses():
                name = names.setdefault(addr, (addr[0], len(names)))
                norm.append((name, kind))
            sequences[core] = norm
        assert sequences["array"] == sequences["object"]
        assert sequences["array"]  # non-empty

    def test_replay_consumes_the_decoded_stream(self):
        """The replay producer reads the same packed arrays the decode
        helper proves exact — its detection must see every access."""
        program = parse(self.SOURCE)
        recorded = detect_races(program, (8,), record_trace=True)
        decoded = recorded.trace.decode_accesses()
        replayed = replay_detection(recorded.trace, program)
        assert replayed.detector.monitored_accesses == len(decoded)
        assert len(decoded) == recorded.detector.monitored_accesses
