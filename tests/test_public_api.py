"""The documented public API surface stays importable and coherent."""

import pytest


class TestTopLevel:
    def test_core_entry_points(self):
        import repro

        assert callable(repro.parse)
        assert callable(repro.pretty)
        assert callable(repro.detect_races)
        assert callable(repro.repair_program)      # lazily resolved
        assert isinstance(repro.__version__, str)

    def test_lazy_attribute_error(self):
        import repro

        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_version_single_source(self):
        import repro
        from repro.version import __version__

        assert repro.__version__ == __version__


class TestSubpackageSurfaces:
    def test_lang(self):
        from repro.lang import (  # noqa: F401
            ast, parse, pretty, serial_elision, strip_finishes,
            insert_finish, validate, ast_equal, tokenize,
        )

    def test_runtime(self):
        from repro.runtime import (  # noqa: F401
            Interpreter, run_program, check_determinism, run_deferred,
            BUILTIN_NAMES, ArrayValue, StructValue, DeterministicRng,
        )

    def test_dpst(self):
        from repro.dpst import (  # noqa: F401
            Dpst, DpstBuilder, DpstNode, prune_race_free,
            ASYNC, FINISH, SCOPE, STEP,
        )

    def test_races(self):
        from repro.races import (  # noqa: F401
            detect_races, make_detector, DataRace, RaceReport,
            SrwEspBagsDetector, MrwEspBagsDetector, OracleDetector,
            VectorClockDetector,
        )

    def test_graph(self):
        from repro.graph import (  # noqa: F401
            ComputationGraph, greedy_schedule, measure_program, span_parts,
        )

    def test_repair(self):
        from repro.repair import (  # noqa: F401
            repair_program, repair_for_inputs, RepairEngine, RepairResult,
            solve_placement, brute_force_placement, build_dependence_graph,
            InsertionFinder, measure_coverage, contextualize,
        )

    def test_bench(self):
        from repro.bench import (  # noqa: F401
            BENCHMARKS, all_benchmarks, get_benchmark, table1, table2,
            table3, table4, figure16, students, run_all,
        )

    def test_viz(self):
        from repro.viz import (  # noqa: F401
            dpst_to_dot, dependence_graph_to_dot, computation_graph_to_dot,
        )

    def test_all_lists_are_accurate(self):
        import importlib

        for module_name in ("repro.lang", "repro.runtime", "repro.dpst",
                            "repro.races", "repro.graph", "repro.repair",
                            "repro.bench"):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), (module_name, name)
