"""Insertion-point search and static validity (Sections 5.2 / 6)."""

from repro.races import detect_races
from repro.repair.dependence import build_dependence_graph, group_races_by_nslca
from repro.repair.engine import _statement_positions
from repro.repair.insertion import (
    InsertionFinder,
    build_scope_table,
    valid_algorithm2,
)
from tests.conftest import build


def setup(source: str, args=()):
    program = build(source)
    det = detect_races(program, args)
    pairs = det.report.distinct_step_pairs()
    groups = group_races_by_nslca(det.dpst, pairs)
    nslca, group = next(iter(groups.items()))
    graph = build_dependence_graph(det.dpst, nslca, group)
    finder = InsertionFinder(_statement_positions(program),
                             build_scope_table(program))
    return program, det, nslca, graph, finder


class TestFlatInsertion:
    SOURCE = """
    var x = 0;
    def main() {
        var pre = 1;
        async { x = 1; }
        var mid = pre;
        async { x = 2; }
        print(x);
    }
    """

    def test_wrap_single_async(self):
        program, det, nslca, graph, finder = setup(self.SOURCE)
        asyncs = [n.position for n in graph.nodes if n.is_async]
        point = finder.find(nslca, graph.nodes, asyncs[0], asyncs[0])
        assert point is not None
        assert point.block_nid == program.main.body.nid
        # The wrapped statement is exactly the async statement.
        assert point.start_stmt == point.end_stmt

    def test_wrap_both_asyncs(self):
        program, det, nslca, graph, finder = setup(self.SOURCE)
        asyncs = [n.position for n in graph.nodes if n.is_async]
        point = finder.find(nslca, graph.nodes, asyncs[0], asyncs[1])
        assert point is not None
        assert point.start_stmt != point.end_stmt

    def test_cannot_wrap_past_sink(self):
        # Wrapping through the final print (the sink) is pointless but
        # must at least anchor statically; here we check the edit key is
        # stable and in-range.
        program, det, nslca, graph, finder = setup(self.SOURCE)
        point = finder.find(nslca, graph.nodes, 0, len(graph.nodes) - 1)
        if point is not None:
            positions = _statement_positions(program)
            assert positions[point.start_stmt][0] == point.block_nid


class TestScopeConstraints:
    FIGURE5 = """
    var x = 0;
    var y = 0;
    def main(flag) {
        if (flag) {
            async { print(1); }
            async { x = 1; }
        }
        async { y = 2; }
        print(x + y);
    }
    """

    def test_figure5_a2_a3_wrap_invalid(self):
        # A finish around {A2, A3} would cross the if-block boundary.
        program, det, nslca, graph, finder = setup(self.FIGURE5, (True,))
        positions = {n.position: n for n in graph.nodes}
        a2 = [p for p, n in positions.items()
              if n.is_async][1]
        a3 = [p for p, n in positions.items()
              if n.is_async][2]
        assert finder.find(nslca, graph.nodes, a2, a3) is None

    def test_figure5_a1_a2_a3_wrap_would_need_both_blocks(self):
        program, det, nslca, graph, finder = setup(self.FIGURE5, (True,))
        asyncs = [n.position for n in graph.nodes if n.is_async]
        a1, a3 = asyncs[0], asyncs[2]
        # A1..A3 span the if block and the statement after: the wrap must
        # anchor in main's block wrapping the whole if statement.
        point = finder.find(nslca, graph.nodes, a1, a3)
        assert point is not None
        assert point.block_nid == program.main.body.nid

    def test_algorithm2_agrees_on_invalid_case(self):
        program, det, nslca, graph, finder = setup(self.FIGURE5, (True,))
        asyncs = [n.position for n in graph.nodes if n.is_async]
        a2, a3 = asyncs[1], asyncs[2]
        assert not valid_algorithm2(graph.nodes, a2, a3)

    def test_algorithm2_never_stricter_than_structural(self):
        program, det, nslca, graph, finder = setup(self.FIGURE5, (True,))
        n = len(graph.nodes)
        for i in range(n):
            for j in range(i, n):
                if finder.find(nslca, graph.nodes, i, j) is not None:
                    assert valid_algorithm2(graph.nodes, i, j), (i, j)


class TestLoopConstraints:
    LOOP = """
    var x = 0;
    def main() {
        for (var i = 0; i < 4; i = i + 1) {
            async { x = x + 1; }
        }
        print(x);
    }
    """

    def test_wrap_all_iterations_maps_to_loop_statement(self):
        program, det, nslca, graph, finder = setup(self.LOOP)
        asyncs = [n.position for n in graph.nodes if n.is_async]
        point = finder.find(nslca, graph.nodes, asyncs[0], asyncs[-1])
        assert point is not None
        loop_stmt = program.main.body.stmts[0]
        assert point.start_stmt == loop_stmt.nid
        assert point.end_stmt == loop_stmt.nid

    def test_wrap_iteration_subset_descends_into_body(self):
        program, det, nslca, graph, finder = setup(self.LOOP)
        asyncs = [n.position for n in graph.nodes if n.is_async]
        point = finder.find(nslca, graph.nodes, asyncs[0], asyncs[0])
        assert point is not None
        loop_stmt = program.main.body.stmts[0]
        # The finish goes inside the loop body, not around the loop.
        assert point.block_nid == loop_stmt.body.nid

    def test_wrap_middle_iterations_not_expressible_at_loop_level(self):
        program, det, nslca, graph, finder = setup(self.LOOP)
        asyncs = [n.position for n in graph.nodes if n.is_async]
        # iterations 0..2 but not 3: only the per-body descent is valid,
        # and that wraps a single async statement, so a multi-node run
        # across iterations has no insertion point.
        point = finder.find(nslca, graph.nodes, asyncs[0], asyncs[2])
        assert point is None


class TestDeclarationCapture:
    SOURCE = """
    var x = 0;
    def main() {
        async { x = 1; }
        var keep = 7;
        var unused = 8;
        print(x);
        print(keep);
    }
    """

    def test_wrap_capturing_used_decl_rejected(self):
        program, det, nslca, graph, finder = setup(self.SOURCE)
        # Find the run from the async through the decl steps: wrapping a
        # range whose statements include `var keep` (used later) is
        # rejected; the engine must choose a narrower wrap.
        asyncs = [n.position for n in graph.nodes if n.is_async]
        point = finder.find(nslca, graph.nodes, asyncs[0], asyncs[0] + 1)
        if point is not None:
            positions = _statement_positions(program)
            lo = positions[point.start_stmt][1]
            hi = positions[point.end_stmt][1]
            decls, suffix = build_scope_table(program)[point.block_nid]
            declared = frozenset().union(*decls[lo:hi + 1])
            assert not (declared & suffix[hi + 1])


class TestScopeTable:
    def test_declarations_and_suffix_refs(self):
        program = build("""
        def main() {
            var a = 1;
            var b = a;
            print(b);
        }""")
        table = build_scope_table(program)
        decls, suffix = table[program.main.body.nid]
        assert decls[0] == frozenset({"a"})
        assert decls[1] == frozenset({"b"})
        assert "b" in suffix[2]
        assert "a" in suffix[1]
        assert suffix[3] == frozenset()

    def test_nested_blocks_have_entries(self):
        program = build("def main() { if (true) { var q = 1; print(q); } }")
        table = build_scope_table(program)
        then_block = program.main.body.stmts[0].then_block
        assert then_block.nid in table
