"""Race report objects and the JSON trace-file round trip."""

from repro.races import RaceReport, addr_to_str, detect_races, merge_reports
from tests.conftest import build


def figure7_report(figure7_source):
    return detect_races(build(figure7_source)).report


class TestReport:
    def test_summary_race_free(self):
        report = RaceReport([])
        assert report.is_race_free
        assert "no data races" in report.summary()

    def test_summary_with_races(self, figure7_source):
        report = figure7_report(figure7_source)
        assert "2 data race(s)" in report.summary()
        assert "R->W" in report.summary()

    def test_iteration_and_len(self, figure7_source):
        report = figure7_report(figure7_source)
        assert len(list(report)) == len(report) == 2

    def test_distinct_step_pairs_dedupes(self):
        det = detect_races(build("""
        def main() {
            var a = new int[3];
            async { a[0] = 1; a[1] = 1; a[2] = 1; }
            print(a[0] + a[1] + a[2]);
        }"""))
        # Three races (one per element) between the same two steps.
        assert len(det.report) == 3
        assert len(det.report.distinct_step_pairs()) == 1

    def test_counts_by_kind(self, figure7_source):
        report = figure7_report(figure7_source)
        assert report.counts_by_kind() == {"R->W": 2}

    def test_describe_mentions_location(self, figure7_source):
        report = figure7_report(figure7_source)
        text = report.races[0].describe()
        assert "->" in text
        assert "line" in text


class TestAddrToStr:
    def test_formats(self):
        assert addr_to_str(("cell", 7)) == "var#7"
        assert addr_to_str(("elem", 3, 9)) == "array#3[9]"
        assert addr_to_str(("field", 2, "v")) == "struct#2.v"


class TestTraceRoundTrip:
    def test_trace_json_round_trip(self, figure7_source):
        report = figure7_report(figure7_source)
        rows = RaceReport.trace_rows(report.to_trace_json())
        assert len(rows) == 2
        originals = {(r.source.index, r.sink.index) for r in report}
        parsed = {(row["source_step"], row["sink_step"]) for row in rows}
        assert originals == parsed

    def test_trace_rows_rejects_bad_version(self):
        import json
        import pytest
        with pytest.raises(ValueError):
            RaceReport.trace_rows(json.dumps({"version": 99, "races": []}))


class TestMergeReports:
    def test_merge_dedupes(self, figure7_source):
        report = figure7_report(figure7_source)
        merged = merge_reports([report, report])
        assert len(merged) == len(report)

    def test_merge_combines_distinct(self, figure7_source):
        program = build(figure7_source)
        srw = detect_races(program, algorithm="srw").report
        mrw = detect_races(program, algorithm="mrw").report
        # Addresses carry run-specific ids, so races from separate runs
        # never collide; the merge keeps everything.
        merged = merge_reports([srw, mrw])
        assert len(merged) == len(srw) + len(mrw)
        # Step pairs, however, are deterministic across runs.
        assert {r.step_pair() for r in srw} <= {r.step_pair() for r in mrw}
