"""Computation graphs, span analysis, and greedy scheduling."""

import pytest

from repro.dpst import DpstBuilder
from repro.graph import (
    ComputationGraph,
    greedy_schedule,
    measure_program,
    span_parts,
)
from repro.runtime import Interpreter
from tests.conftest import build


def graph_of(source: str, args=()):
    program = build(source)
    builder = DpstBuilder()
    Interpreter(program, builder).run(args)
    tree = builder.finish()
    return tree, ComputationGraph.from_dpst(tree)


SEQUENTIAL = "def main() { var s = 0; for (var i = 0; i < 9; i = i + 1) { s = s + i; } print(s); }"

PARALLEL = """
def work(a, slot, amount) {
    var s = 0;
    for (var i = 0; i < amount; i = i + 1) { s = s + i; }
    a[slot] = s;
}
def main() {
    var a = new int[4];
    finish {
        async work(a, 0, 30);
        async work(a, 1, 30);
        async work(a, 2, 30);
        async work(a, 3, 30);
    }
    print(a[0] + a[1] + a[2] + a[3]);
}
"""


class TestGraphStructure:
    def test_sequential_program_is_a_chain(self):
        _, graph = graph_of(SEQUENTIAL)
        assert graph.span() == graph.work()

    def test_edges_go_forward(self):
        _, graph = graph_of(PARALLEL)
        for node in graph.order:
            for pred in graph.preds[node]:
                assert pred < node

    def test_finish_creates_join_edges(self):
        _, graph = graph_of(PARALLEL)
        # The step after the finish (the sum) must wait for all four tasks:
        # some node has >= 4 predecessors.
        assert max(len(p) for p in graph.preds.values()) >= 4

    def test_work_is_total_cost(self):
        tree, graph = graph_of(PARALLEL)
        assert graph.work() == sum(s.cost for s in tree.steps())

    def test_parallel_span_less_than_work(self):
        _, graph = graph_of(PARALLEL)
        assert graph.span() < graph.work()

    def test_critical_path_is_consistent(self):
        _, graph = graph_of(PARALLEL)
        path = graph.critical_path()
        assert sum(graph.cost[i] for i in path) == graph.span()
        # The path respects precedence.
        for a, b in zip(path, path[1:]):
            assert a in graph.preds[b]


class TestSpanParts:
    def test_root_span_equals_graph_span(self):
        tree, graph = graph_of(PARALLEL)
        assert span_parts(tree.root)[1] == graph.span()

    def test_step_span_is_cost(self):
        tree, _ = graph_of(SEQUENTIAL)
        step = tree.steps()[0]
        assert span_parts(step) == (step.cost, step.cost)

    def test_async_has_zero_advance(self):
        tree, _ = graph_of(PARALLEL)
        async_nodes = [n for n in tree.walk()
                       if n.kind == "async" and n is not tree.root]
        for node in async_nodes:
            advance, completion = span_parts(node)
            assert advance == 0
            assert completion > 0

    def test_finish_advance_equals_completion(self):
        tree, _ = graph_of(PARALLEL)
        finish = [n for n in tree.walk() if n.kind == "finish"][0]
        advance, completion = span_parts(finish)
        assert advance == completion

    def test_cache_shared(self):
        tree, _ = graph_of(PARALLEL)
        cache = {}
        span_parts(tree.root, cache)
        assert tree.root.index in cache

    def test_deep_tree_does_not_recurse(self):
        # Recursive benchmarks produce S-DPSTs whose depth far exceeds the
        # Python recursion limit; span_parts must handle them iteratively.
        import sys

        from repro.dpst.nodes import ASYNC, FINISH, STEP, DpstNode

        depth = sys.getrecursionlimit() * 3
        root = DpstNode(ASYNC, index=0, parent=None)
        parent = root
        index = 0
        for level in range(depth):
            index += 1
            step = DpstNode(STEP, index=index, parent=parent)
            step.cost = 1
            parent.add_child(step)
            index += 1
            kind = FINISH if level % 2 else ASYNC
            child = DpstNode(kind, index=index, parent=parent)
            parent.add_child(child)
            parent = child
        index += 1
        leaf = DpstNode(STEP, index=index, parent=parent)
        leaf.cost = 1
        parent.add_child(leaf)
        advance, completion = span_parts(root)
        # Every other level is a finish, so each level's step serializes
        # with every enclosed finish subtree: the span is the total cost.
        assert completion == depth + 1
        assert advance == 0  # the root is an async


class TestGreedySchedule:
    def test_one_processor_equals_work(self):
        _, graph = graph_of(PARALLEL)
        result = greedy_schedule(graph, 1)
        assert result.makespan == graph.work()

    def test_many_processors_reach_span(self):
        _, graph = graph_of(PARALLEL)
        result = greedy_schedule(graph, 1000)
        assert result.makespan == graph.span()

    def test_monotone_in_processors(self):
        _, graph = graph_of(PARALLEL)
        times = [greedy_schedule(graph, p).makespan for p in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)

    def test_brent_bound(self):
        _, graph = graph_of(PARALLEL)
        for p in (2, 3, 4):
            result = greedy_schedule(graph, p)
            assert result.makespan <= graph.work() / p + graph.span()
            assert result.makespan >= max(graph.span(), graph.work() / p)

    def test_speedup_and_parallelism(self):
        _, graph = graph_of(PARALLEL)
        result = greedy_schedule(graph, 4)
        assert result.speedup == pytest.approx(result.work / result.makespan)
        assert result.parallelism == pytest.approx(result.work / result.span)

    def test_zero_processors_rejected(self):
        _, graph = graph_of(SEQUENTIAL)
        with pytest.raises(ValueError):
            greedy_schedule(graph, 0)

    def test_deterministic(self):
        _, graph = graph_of(PARALLEL)
        a = greedy_schedule(graph, 3).makespan
        b = greedy_schedule(graph, 3).makespan
        assert a == b


class TestMeasureProgram:
    def test_measure_program_end_to_end(self):
        result = measure_program(build(PARALLEL), (), processors=4)
        assert result.processors == 4
        assert result.span <= result.makespan <= result.work

    def test_unsynchronized_spawn_still_joins_at_nothing(self):
        # Without a finish, the final print does not wait for the task, so
        # the graph's last node can run before the async completes.
        source = """
        def main() {
            var a = new int[1];
            async { for (var i = 0; i < 50; i = i + 1) { a[0] = i; } }
            print("done");
        }"""
        result = measure_program(build(source), (), processors=2)
        assert result.span < result.work
