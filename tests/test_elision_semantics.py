"""Semantic equivalence contracts around serial elision (Problem 1,
criterion 4) on richer programs than the generator covers."""

import pytest

from repro.bench import all_benchmarks
from repro.lang import serial_elision, strip_finishes
from repro.runtime import run_program
from tests.conftest import build


class TestDepthFirstEquivalence:
    """The instrumented parallel execution == the elision's execution."""

    @pytest.mark.parametrize("name", [s.name for s in all_benchmarks()])
    def test_benchmarks(self, name):
        spec = [s for s in all_benchmarks() if s.name == name][0]
        program = spec.parse()
        parallel = run_program(program, spec.test_args)
        elided = run_program(serial_elision(program), spec.test_args)
        assert parallel.output == elided.output

    def test_stripped_versions_too(self):
        for spec in all_benchmarks():
            buggy = strip_finishes(spec.parse())
            parallel = run_program(buggy, spec.test_args)
            elided = run_program(serial_elision(spec.parse()),
                                 spec.test_args)
            assert parallel.output == elided.output, spec.name


class TestDeterminism:
    def test_repeated_runs_identical(self):
        source = """
        def main() {
            seed_rand(7);
            var a = new int[20];
            for (var i = 0; i < 20; i = i + 1) { a[i] = rand_int(100); }
            var sum = 0;
            for (var i = 0; i < 20; i = i + 1) { sum = sum + a[i]; }
            print(sum);
        }"""
        program = build(source)
        assert run_program(program).output == run_program(program).output

    def test_seed_isolated_between_runs(self):
        # The interpreter-level seed gives fresh-but-identical RNG state
        # per run even without seed_rand.
        source = "def main() { print(rand_int(1000000)); }"
        program = build(source)
        assert run_program(program).output == run_program(program).output

    def test_different_interpreter_seeds_differ(self):
        source = "def main() { print(rand_int(1000000)); }"
        program = build(source)
        a = run_program(program, seed=1).output
        b = run_program(program, seed=2).output
        assert a != b

    def test_ops_counts_are_stable(self):
        program = build("def main() { print(1 + 2); }")
        assert run_program(program).ops == run_program(program).ops
