"""Runtime value machinery: cells, arrays, structs, display, RNG, env."""

import pytest

from repro.errors import RuntimeFault
from repro.runtime import (
    ArrayValue,
    Cell,
    DeterministicRng,
    Environment,
    StructValue,
    to_display,
)
from repro.runtime.values import default_fill


class TestAddresses:
    def test_cells_have_unique_addresses(self):
        a, b = Cell("x", 1), Cell("x", 1)
        assert a.addr != b.addr
        assert a.addr[0] == "cell"

    def test_array_element_addresses(self):
        arr = ArrayValue(3)
        addrs = {arr.element_addr(i) for i in range(3)}
        assert len(addrs) == 3
        other = ArrayValue(3)
        assert arr.element_addr(0) != other.element_addr(0)

    def test_struct_field_addresses(self):
        s = StructValue("P", ["x", "y"])
        assert s.field_addr("x") != s.field_addr("y")
        assert s.field_addr("x")[0] == "field"

    def test_default_fills(self):
        assert default_fill("int") == 0
        assert default_fill("double") == 0.0
        assert default_fill("boolean") is False
        assert default_fill("Widget") is None


class TestDisplay:
    def test_scalars(self):
        assert to_display(None) == "null"
        assert to_display(True) == "true"
        assert to_display(False) == "false"
        assert to_display(3) == "3"
        assert to_display(0.25) == "0.25"

    def test_float_formatting(self):
        assert to_display(1.0) == "1"
        assert to_display(1 / 3) == "0.333333"

    def test_array_display(self):
        arr = ArrayValue(2)
        arr.items = [1, None]
        assert to_display(arr) == "[1, null]"

    def test_struct_display(self):
        s = StructValue("P", ["x"])
        s.fields["x"] = 5
        assert to_display(s) == "P(x=5)"


class TestEnvironment:
    def test_define_and_lookup(self):
        env = Environment()
        env.define("x", 42)
        assert env.lookup("x").value == 42

    def test_child_sees_parent(self):
        env = Environment()
        env.define("x", 1)
        child = env.child()
        assert child.lookup("x").value == 1

    def test_shadowing(self):
        env = Environment()
        env.define("x", 1)
        child = env.child()
        child.define("x", 2)
        assert child.lookup("x").value == 2
        assert env.lookup("x").value == 1

    def test_unbound_lookup_raises(self):
        with pytest.raises(RuntimeFault, match="undefined"):
            Environment().lookup("ghost")

    def test_is_bound(self):
        env = Environment()
        env.define("x", 1)
        assert env.child().is_bound("x")
        assert not env.is_bound("y")

    def test_sibling_scopes_independent(self):
        env = Environment()
        a, b = env.child(), env.child()
        a.define("x", 1)
        assert not b.is_bound("x")


class TestRng:
    def test_determinism(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.next_int(100) for _ in range(10)] == \
            [b.next_int(100) for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.next_u64() for _ in range(4)] != \
            [b.next_u64() for _ in range(4)]

    def test_ranges(self):
        rng = DeterministicRng(7)
        for _ in range(200):
            assert 0 <= rng.next_int(13) < 13
            assert 0.0 <= rng.next_double() < 1.0

    def test_bad_bound(self):
        with pytest.raises(RuntimeFault):
            DeterministicRng(1).next_int(0)

    def test_distribution_is_not_degenerate(self):
        rng = DeterministicRng(99)
        values = {rng.next_int(10) for _ in range(200)}
        assert len(values) == 10
