"""Interpreter semantics: expressions, control flow, data, builtins."""

import pytest

from repro.errors import RuntimeFault, StepLimitExceeded
from repro.lang import parse
from repro.runtime import Interpreter, run_program
from tests.conftest import run


class TestArithmetic:
    def test_basic_ops(self):
        assert run("def main() { print(2 + 3 * 4 - 1); }") == ["13"]

    def test_integer_division_truncates_toward_zero(self):
        # Java semantics, not Python floor division.
        assert run("def main() { print(-7 / 2); }") == ["-3"]
        assert run("def main() { print(7 / -2); }") == ["-3"]
        assert run("def main() { print(7 / 2); }") == ["3"]

    def test_modulo_sign_follows_dividend(self):
        assert run("def main() { print(-7 % 3); }") == ["-1"]
        assert run("def main() { print(7 % -3); }") == ["1"]

    def test_float_division(self):
        assert run("def main() { print(7.0 / 2); }") == ["3.5"]

    def test_division_by_zero(self):
        with pytest.raises(RuntimeFault, match="division by zero"):
            run("def main() { print(1 / 0); }")

    def test_modulo_by_zero(self):
        with pytest.raises(RuntimeFault, match="modulo"):
            run("def main() { print(1 % 0); }")

    def test_bitwise_ops(self):
        assert run("def main() { print(12 & 10, 12 | 10, 12 ^ 10); }") == \
            ["8 14 6"]
        assert run("def main() { print(1 << 4, 256 >> 3, ~5); }") == \
            ["16 32 -6"]

    def test_bitwise_requires_ints(self):
        with pytest.raises(RuntimeFault):
            run("def main() { print(1.5 & 2); }")

    def test_comparisons(self):
        assert run("def main() { print(1 < 2, 2 <= 2, 3 > 4, 3 >= 4); }") == \
            ["true true false false"]

    def test_string_concatenation(self):
        assert run('def main() { print("n=" + 5); }') == ["n=5"]

    def test_equality_semantics(self):
        assert run("def main() { print(1 == 1.0, null == null, 1 != 2); }") \
            == ["true true true"]

    def test_reference_equality_for_arrays(self):
        out = run("""
        def main() {
            var a = new int[2];
            var b = new int[2];
            var c = a;
            print(a == b, a == c);
        }""")
        assert out == ["false true"]

    def test_unary_minus_on_bool_rejected(self):
        with pytest.raises(RuntimeFault):
            run("def main() { print(-true); }")


class TestControlFlow:
    def test_if_else(self):
        assert run("def main() { if (1 < 2) { print(1); } else { print(2); } }") \
            == ["1"]

    def test_condition_must_be_boolean(self):
        with pytest.raises(RuntimeFault, match="boolean"):
            run("def main() { if (1) { } }")

    def test_while_loop(self):
        out = run("""
        def main() {
            var i = 0;
            var sum = 0;
            while (i < 5) { sum = sum + i; i = i + 1; }
            print(sum);
        }""")
        assert out == ["10"]

    def test_for_loop_with_break_continue(self):
        out = run("""
        def main() {
            var sum = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i == 7) { break; }
                if (i % 2 == 0) { continue; }
                sum = sum + i;
            }
            print(sum);
        }""")
        assert out == ["9"]  # 1 + 3 + 5

    def test_continue_still_runs_update(self):
        out = run("""
        def main() {
            var n = 0;
            for (var i = 0; i < 3; i = i + 1) {
                if (true) { continue; }
            }
            print("done");
        }""")
        assert out == ["done"]

    def test_short_circuit_and(self):
        out = run("""
        def boom() { print("boom"); return true; }
        def main() { print(false && boom()); }
        """)
        assert out == ["false"]

    def test_short_circuit_or(self):
        out = run("""
        def boom() { print("boom"); return true; }
        def main() { print(true || boom()); }
        """)
        assert out == ["true"]


class TestFunctions:
    def test_recursion(self):
        out = run("""
        def fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        def main() { print(fact(10)); }
        """)
        assert out == ["3628800"]

    def test_function_without_return_yields_null(self):
        assert run("def f() { } def main() { print(f()); }") == ["null"]

    def test_mutual_recursion(self):
        out = run("""
        def is_even(n) { if (n == 0) { return true; } return is_odd(n - 1); }
        def is_odd(n) { if (n == 0) { return false; } return is_even(n - 1); }
        def main() { print(is_even(10), is_odd(10)); }
        """)
        assert out == ["true false"]

    def test_arguments_by_value_for_scalars(self):
        out = run("""
        def bump(x) { x = x + 1; }
        def main() { var v = 1; bump(v); print(v); }
        """)
        assert out == ["1"]

    def test_arrays_shared_by_reference(self):
        out = run("""
        def set0(a) { a[0] = 42; }
        def main() { var arr = new int[1]; set0(arr); print(arr[0]); }
        """)
        assert out == ["42"]


class TestData:
    def test_array_defaults(self):
        out = run("""
        def main() {
            var i = new int[2];
            var d = new double[1];
            var b = new boolean[1];
            var o = new Object[1];
            print(i[0], d[0], b[0], o[0]);
        }""")
        assert out == ["0 0 false null"]

    def test_2d_array_rows_are_independent(self):
        out = run("""
        def main() {
            var g = new int[2][3];
            g[0][1] = 5;
            print(g[0][1], g[1][1]);
        }""")
        assert out == ["5 0"]

    def test_index_out_of_bounds(self):
        with pytest.raises(RuntimeFault, match="out of bounds"):
            run("def main() { var a = new int[2]; print(a[2]); }")

    def test_negative_index(self):
        with pytest.raises(RuntimeFault, match="out of bounds"):
            run("def main() { var a = new int[2]; print(a[-1]); }")

    def test_non_integer_index(self):
        with pytest.raises(RuntimeFault, match="integer"):
            run("def main() { var a = new int[2]; print(a[0.5]); }")

    def test_negative_length(self):
        with pytest.raises(RuntimeFault, match="negative"):
            run("def main() { var a = new int[0 - 1]; }")

    def test_indexing_non_array(self):
        with pytest.raises(RuntimeFault, match="non-array"):
            run("def main() { var x = 3; print(x[0]); }")

    def test_struct_fields(self):
        out = run("""
        struct Point { x, y }
        def main() {
            var p = new Point();
            p.x = 1;
            p.y = p.x + 1;
            print(p.x, p.y);
        }""")
        assert out == ["1 2"]

    def test_unknown_field(self):
        with pytest.raises(RuntimeFault, match="no field"):
            run("struct P { x } def main() { var p = new P(); print(p.z); }")

    def test_field_access_on_non_struct(self):
        with pytest.raises(RuntimeFault, match="non-struct"):
            run("def main() { var x = 1; print(x.v); }")

    def test_compound_assignment_on_array_elem(self):
        out = run("""
        def main() {
            var a = new int[1];
            a[0] = 10;
            a[0] += 5;
            a[0] *= 2;
            print(a[0]);
        }""")
        assert out == ["30"]


class TestAsyncFinishSemantics:
    def test_depth_first_execution_order(self):
        # Sequential depth-first: async bodies run immediately.
        out = run("""
        def main() {
            print(1);
            async { print(2); }
            print(3);
            finish { async print(4); }
            print(5);
        }""")
        assert out == ["1", "2", "3", "4", "5"]

    def test_async_captures_enclosing_locals_by_reference(self):
        out = run("""
        def main() {
            var x = 1;
            async { x = 2; }
            print(x);
        }""")
        assert out == ["2"]


class TestBuiltinsAndHarness:
    def test_math_builtins(self):
        out = run("def main() { print(sqrt(16.0), abs(-3), max(2, 7), min(2, 7)); }")
        assert out == ["4 3 7 2"]

    def test_conversions(self):
        assert run("def main() { print(to_int(3.7), to_double(2)); }") == ["3 2"]

    def test_len(self):
        assert run("def main() { print(len(new int[7])); }") == ["7"]

    def test_deterministic_rand(self):
        source = """
        def main() {
            seed_rand(42);
            print(rand_int(100), rand_int(100), rand_int(100));
        }"""
        assert run(source) == run(source)

    def test_rand_bound_must_be_positive(self):
        with pytest.raises(RuntimeFault):
            run("def main() { print(rand_int(0)); }")

    def test_assert_true(self):
        with pytest.raises(RuntimeFault, match="assert_true"):
            run('def main() { assert_true(false, "nope"); }')

    def test_unknown_builtin_arity(self):
        with pytest.raises(RuntimeFault, match="expects"):
            run("def main() { print(sqrt()); }")

    def test_main_args(self):
        program = parse("def main(a, b) { print(a + b); }")
        assert run_program(program, (3, 4)).output == ["7"]

    def test_main_list_arg_becomes_array(self):
        program = parse("def main(a) { print(a[1], len(a)); }")
        assert run_program(program, ([5, 6, 7],)).output == ["6 3"]

    def test_wrong_main_arity(self):
        program = parse("def main(a) { }")
        with pytest.raises(RuntimeFault, match="argument"):
            run_program(program, ())

    def test_step_limit(self):
        program = parse("def main() { while (true) { } }")
        with pytest.raises(StepLimitExceeded):
            Interpreter(program, max_ops=10_000).run(())

    def test_ops_counted(self):
        program = parse("def main() { print(1 + 2); }")
        result = run_program(program)
        assert result.ops > 0
