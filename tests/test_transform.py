"""AST transformation tests: stripping, elision, insertion, equality."""

import pytest

from repro.errors import RepairError
from repro.lang import ast, parse, pretty
from repro.lang.elision import is_sequential, serial_elision
from repro.lang.transform import (
    ast_equal,
    clone_program,
    count_asyncs,
    count_finishes,
    find_block,
    insert_finish,
    renumber,
    statement_span,
    strip_finishes,
    synthetic_finishes,
)

NESTED = """
def main() {
    finish {
        async {
            finish { async print(1); }
        }
        print(2);
    }
    while (true) {
        finish { print(3); }
        break;
    }
    { finish { print(4); } }
}
"""


class TestStripFinishes:
    def test_all_finishes_removed(self):
        program = parse(NESTED)
        assert count_finishes(program) == 4
        stripped = strip_finishes(program)
        assert count_finishes(stripped) == 0

    def test_asyncs_preserved(self):
        program = parse(NESTED)
        stripped = strip_finishes(program)
        assert count_asyncs(stripped) == count_asyncs(program) == 2

    def test_original_untouched(self):
        program = parse(NESTED)
        strip_finishes(program)
        assert count_finishes(program) == 4

    def test_statement_order_preserved(self):
        # Problem 1 criterion 5: statements stay in the same order.
        program = parse(NESTED)
        stripped = strip_finishes(program)
        original_calls = [n.args[0].value for n in ast.walk(program)
                          if isinstance(n, ast.Call) and n.name == "print"]
        stripped_calls = [n.args[0].value for n in ast.walk(stripped)
                          if isinstance(n, ast.Call) and n.name == "print"]
        assert original_calls == stripped_calls

    def test_strip_equals_elision_when_no_asyncs(self):
        source = "def main() { finish { print(1); } print(2); }"
        stripped = strip_finishes(parse(source))
        elided = serial_elision(parse(source))
        assert ast_equal(stripped, elided)


class TestSerialElision:
    def test_removes_both_constructs(self):
        elided = serial_elision(parse(NESTED))
        assert is_sequential(elided)

    def test_sequential_program_unchanged(self):
        source = "def main() { var x = 1; print(x); }"
        program = parse(source)
        assert ast_equal(program, serial_elision(program))

    def test_is_sequential_detects_async(self):
        assert not is_sequential(parse("def main() { async print(1); }"))


class TestInsertFinish:
    def test_wrap_range(self):
        program = parse("def main() { print(1); print(2); print(3); }")
        block = program.main.body
        finish = insert_finish(program, block.nid, 0, 1)
        assert finish.synthetic
        assert len(block.stmts) == 2
        assert block.stmts[0] is finish
        assert len(finish.body.stmts) == 2

    def test_fresh_ids_allocated(self):
        program = parse("def main() { print(1); }")
        before = {n.nid for n in ast.walk(program)}
        finish = insert_finish(program, program.main.body.nid, 0, 0)
        assert finish.nid not in before
        assert finish.body.nid not in before

    def test_out_of_range_rejected(self):
        program = parse("def main() { print(1); }")
        with pytest.raises(RepairError):
            insert_finish(program, program.main.body.nid, 0, 5)

    def test_unknown_block_rejected(self):
        program = parse("def main() { print(1); }")
        with pytest.raises(RepairError):
            insert_finish(program, 999_999, 0, 0)

    def test_non_block_nid_rejected(self):
        program = parse("def main() { print(1); }")
        stmt_nid = program.main.body.stmts[0].nid
        with pytest.raises(RepairError):
            find_block(program, stmt_nid)

    def test_inserted_program_reparses(self):
        program = parse("def main() { async print(1); print(2); }")
        insert_finish(program, program.main.body.nid, 0, 0)
        text = pretty(program)
        reparsed = parse(text)
        assert count_finishes(reparsed) == 1

    def test_synthetic_finishes_listed(self):
        program = parse("def main() { finish { print(1); } print(2); }")
        assert synthetic_finishes(program) == []
        insert_finish(program, program.main.body.nid, 1, 1)
        assert len(synthetic_finishes(program)) == 1


class TestStatementSpan:
    def test_span_of_subset(self):
        program = parse("def main() { print(1); print(2); print(3); }")
        block = program.main.body
        nids = [block.stmts[2].nid, block.stmts[1].nid]
        assert statement_span(block, nids) == (1, 2)

    def test_foreign_statement_rejected(self):
        program = parse("def main() { print(1); { print(2); } }")
        block = program.main.body
        inner = block.stmts[1].stmts[0]
        with pytest.raises(RepairError):
            statement_span(block, [inner.nid])


class TestEqualityAndCloning:
    def test_clone_preserves_ids_and_structure(self):
        program = parse(NESTED)
        clone = clone_program(program)
        assert ast_equal(program, clone)
        assert [n.nid for n in ast.walk(program)] == \
            [n.nid for n in ast.walk(clone)]

    def test_clone_is_independent(self):
        program = parse("def main() { print(1); }")
        clone = clone_program(program)
        insert_finish(clone, clone.main.body.nid, 0, 0)
        assert count_finishes(program) == 0

    def test_ast_equal_detects_difference(self):
        a = parse("def main() { print(1); }")
        b = parse("def main() { print(2); }")
        assert not ast_equal(a, b)

    def test_ast_equal_ignores_positions(self):
        a = parse("def main() { print(1); }")
        b = parse("def main()\n\n{\n  print(1);\n}")
        assert ast_equal(a, b)

    def test_renumber_assigns_sequential_ids(self):
        program = parse(NESTED)
        fresh = renumber(program)
        ids = [n.nid for n in ast.walk(fresh)]
        assert sorted(ids) == list(range(1, len(ids) + 1))
        assert ast_equal(program, fresh)

    def test_fresh_id_monotonic(self):
        program = parse("def main() { }")
        a = program.fresh_id()
        b = program.fresh_id()
        assert b == a + 1
        program.note_max_id(1000)
        assert program.fresh_id() == 1001
