"""The exhaustive placement oracle, and DP-vs-oracle agreement."""

import pytest

from repro.repair.bruteforce import (
    brute_force_placement,
    enumerate_laminar_families,
)
from repro.repair.placement import (
    covers_all_edges,
    is_laminar,
    placement_cost,
    solve_placement,
)


class TestEnumeration:
    def test_n1(self):
        families = enumerate_laminar_families(1)
        assert set(families) == {(), ((0, 0),)}

    def test_n2_count(self):
        families = enumerate_laminar_families(2)
        # {}, {(0,0)}, {(1,1)}, {(0,0),(1,1)}, {(0,1)} and its nestings.
        assert ((0, 1),) in families
        assert ((0, 0), (1, 1)) in {tuple(sorted(f)) for f in families}

    def test_all_families_are_laminar(self):
        for family in enumerate_laminar_families(4):
            assert is_laminar(list(family)), family

    def test_families_unique(self):
        families = [tuple(sorted(f)) for f in enumerate_laminar_families(3)]
        assert len(families) == len(set(families))

    def test_no_duplicate_intervals_within_family(self):
        for family in enumerate_laminar_families(4):
            assert len(set(family)) == len(family)


class TestBruteForce:
    def test_unconstrained_has_empty_placement(self):
        best = brute_force_placement([5, 5], [True, True], [])
        assert best == (5, ())

    def test_single_edge(self):
        best = brute_force_placement([5, 5], [True, False], [(0, 1)])
        assert best[0] == 10

    def test_respects_validity(self):
        best = brute_force_placement(
            [5, 5], [True, False], [(0, 1)], valid=lambda s, e: False)
        assert best is None

    def test_figure_3_4_optimum(self):
        times = [500, 10, 10, 400, 600, 500]
        best = brute_force_placement(times, [True] * 6,
                                     [(1, 3), (0, 5), (3, 5)])
        assert best[0] == 1100
        assert covers_all_edges([(1, 3), (0, 5), (3, 5)], best[1])


DP_CASES = [
    # (times, is_async, edges)
    ([5, 20, 15, 5], [False, True, True, False], [(1, 3), (2, 3)]),
    ([500, 10, 10, 400, 600, 500], [True] * 6, [(1, 3), (0, 5), (3, 5)]),
    ([3, 3, 3, 3], [True] * 4, [(0, 1), (1, 2), (2, 3)]),
    ([1, 100, 1, 100], [True, True, True, False], [(0, 3), (2, 3)]),
    ([10, 1, 10, 1, 10], [True, False, True, False, True],
     [(0, 1), (2, 4)]),
    ([7, 7, 7], [True, True, True],
     [(0, 1), (0, 2), (1, 2)]),
    ([2, 4, 8, 16, 32], [True, True, False, True, False],
     [(0, 2), (1, 4), (3, 4)]),
]


class TestDpOptimality:
    @pytest.mark.parametrize("times,is_async,edges", DP_CASES)
    def test_dp_matches_bruteforce(self, times, is_async, edges):
        solution = solve_placement(times, is_async, edges)
        oracle = brute_force_placement(times, is_async, edges)
        assert solution is not None and oracle is not None
        assert solution.cost == oracle[0]
        # And the DP's own output simulates to its claimed cost.
        assert placement_cost(times, is_async, solution.finishes) \
            == solution.cost

    @pytest.mark.parametrize("times,is_async,edges", DP_CASES)
    def test_dp_matches_bruteforce_with_validity(self, times, is_async,
                                                 edges):
        # Forbid finishes starting at node 0 — an arbitrary scope rule.
        def valid(s, e):
            return s != 0

        solution = solve_placement(times, is_async, edges, valid)
        oracle = brute_force_placement(times, is_async, edges, valid)
        assert (solution is None) == (oracle is None)
        if solution is not None:
            assert solution.cost == oracle[0]
