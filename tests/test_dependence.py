"""Dependence-graph construction from NS-LCA subtrees (Section 5.1)."""

import pytest

from repro.dpst import ASYNC, STEP
from repro.errors import RepairError
from repro.races import detect_races
from repro.repair.dependence import (
    DepNode,
    build_dependence_graph,
    group_races_by_nslca,
)
from tests.conftest import build


def analyzed(source: str, args=()):
    det = detect_races(build(source), args)
    pairs = det.report.distinct_step_pairs()
    groups = group_races_by_nslca(det.dpst, pairs)
    return det, groups


class TestGrouping:
    def test_single_group_for_flat_races(self, figure7_source):
        det, groups = analyzed(figure7_source)
        assert len(groups) == 1
        assert list(groups)[0] is det.dpst.root

    def test_groups_per_recursion_level(self, fib_source):
        det, groups = analyzed(fib_source, (4,))
        # Every racy fib invocation contributes its own NS-LCA, plus the
        # one in main.
        assert len(groups) > 1

    def test_groups_ordered_by_index(self, fib_source):
        _, groups = analyzed(fib_source, (5,))
        indices = [n.index for n in groups]
        assert indices == sorted(indices)


class TestGraphConstruction:
    def test_figure7_graph(self, figure7_source):
        det, groups = analyzed(figure7_source)
        nslca, pairs = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, pairs)
        async_nodes = [n for n in graph.nodes if n.is_async]
        assert len(async_nodes) == 3
        # Two edges: A1 -> A3 and A2 -> A3.
        assert len(graph.edges) == 2
        sinks = {y for _, y in graph.edges}
        assert len(sinks) == 1

    def test_edge_sources_are_asyncs(self, figure7_source):
        det, groups = analyzed(figure7_source)
        nslca, pairs = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, pairs)
        for x, _ in graph.edges:
            assert graph.nodes[x].is_async

    def test_times_are_positive_spans(self, figure7_source):
        det, groups = analyzed(figure7_source)
        nslca, pairs = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, pairs)
        assert all(n.time > 0 for n in graph.nodes if n.is_async)

    def test_edges_deduplicated(self):
        det, groups = analyzed("""
        def main() {
            var a = new int[4];
            async { a[0] = 1; a[1] = 1; }
            print(a[0] + a[1]);
        }""")
        nslca, pairs = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, pairs)
        assert len(graph.edges) == len(set(graph.edges)) == 1

    def test_empty_nslca_children_rejected(self):
        det, _ = analyzed("def main() { print(1); }")
        leaf = det.dpst.steps()[0]
        with pytest.raises(RepairError):
            build_dependence_graph(det.dpst, leaf, [])


class TestCoalescing:
    def test_step_runs_without_edges_merge(self):
        det, groups = analyzed("""
        var x = 0;
        def main() {
            var a = 0;
            for (var i = 0; i < 20; i = i + 1) { a = a + i; }
            async { x = 1; }
            print(x);
        }""")
        nslca, pairs = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, pairs)
        # Twenty loop-iteration steps collapse; the graph stays tiny.
        assert graph.size <= 6
        coalesced = [n for n in graph.nodes if n.is_coalesced]
        assert coalesced
        assert all(n.first.kind == STEP for n in coalesced)

    def test_asyncs_never_merge(self):
        det, groups = analyzed("""
        var x = 0;
        def main() {
            async { x = x + 1; }
            async { x = x + 1; }
            async { x = x + 1; }
            print(x);
        }""")
        nslca, pairs = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, pairs)
        assert sum(1 for n in graph.nodes if n.is_async) == 3

    def test_coalesced_time_is_sum(self):
        det, groups = analyzed("""
        var x = 0;
        def main() {
            var a = 0;
            a = a + 1;
            a = a + 2;
            async { x = 1; }
            print(x);
        }""")
        nslca, pairs = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, pairs)
        total_step_cost = sum(s.cost for s in det.dpst.steps())
        assert sum(n.time for n in graph.nodes if not n.is_async) \
            <= total_step_cost

    def test_sinks_with_distinct_sources_stay_separate_when_small(self):
        det, groups = analyzed("""
        var x = 0;
        var y = 0;
        def main() {
            async { x = 1; }
            print(x);
            async { y = 1; }
            print(y);
        }""")
        nslca, pairs = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, pairs)
        assert len(graph.edges) == 2
        # Each read races with its own async.
        assert len({y for _, y in graph.edges}) == 2

    def test_fallback_merging_caps_node_count(self):
        # Alternating sinks with different sources: exact coalescing can't
        # merge them, the fallback must.
        parts = []
        for i in range(30):
            parts.append(f"async {{ g{i} = 1; }}")
            parts.append(f"print(g{i});")
        decls = "\n".join(f"var g{i} = 0;" for i in range(30))
        source = decls + "\ndef main() {\n" + "\n".join(parts) + "\n}"
        det, groups = analyzed(source)
        nslca, pairs = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, pairs, max_nodes=10)
        assert graph.size <= 61  # far fewer than the raw child count
        # Every edge still has an async source after fallback merging.
        for x, _ in graph.edges:
            assert graph.nodes[x].is_async
        # Sinks merged conservatively: edges still cover each original
        # sink (the merged node is never left of its source).
        for x, y in graph.edges:
            assert x < y


class TestDepNode:
    def test_singleton_properties(self, figure7_source):
        det, groups = analyzed(figure7_source)
        nslca, pairs = next(iter(groups.items()))
        graph = build_dependence_graph(det.dpst, nslca, pairs)
        node = graph.nodes[0]
        assert node.dpst is node.first
        assert not graph.nodes[0].is_async or \
            graph.nodes[0].first.kind == ASYNC
