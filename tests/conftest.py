"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.lang import parse, validate
from repro.runtime import BUILTIN_NAMES, run_program


def build(source: str, require_main: bool = True):
    """Parse + validate a mini-HJ program (most tests want both)."""
    program = parse(source)
    validate(program, BUILTIN_NAMES, require_main=require_main)
    return program


def run(source: str, args=()):
    """Parse, validate and execute; returns the output lines."""
    return run_program(build(source), args).output


@pytest.fixture
def fib_source() -> str:
    """The paper's Figure 8 program (unsynchronized Fibonacci)."""
    return """
    struct BoxInteger { v }

    def fib(ret, n) {
        if (n < 2) {
            ret.v = n;
            return;
        }
        var X = new BoxInteger();
        var Y = new BoxInteger();
        async fib(X, n - 1);
        async fib(Y, n - 2);
        ret.v = X.v + Y.v;
    }

    def main(n) {
        var result = new BoxInteger();
        async fib(result, n);
        print(result.v);
    }
    """


@pytest.fixture
def figure7_source() -> str:
    """Figure 7: two parallel readers, one later writer."""
    return """
    var x = 0;

    def main() {
        async { var a = x; print(a); }
        async { var b = x; print(b); }
        async { x = 1; }
    }
    """
