"""Unit tests for the mini-HJ parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast, parse


def first_stmt(source_body: str) -> ast.Stmt:
    program = parse("def main() { " + source_body + " }")
    return program.main.body.stmts[0]


def expr_of(source_expr: str) -> ast.Expr:
    stmt = first_stmt(f"var tmp = {source_expr};")
    assert isinstance(stmt, ast.VarDecl)
    return stmt.init


class TestTopLevel:
    def test_function_with_params(self):
        program = parse("def f(a, b, c) { }")
        func = program.functions["f"]
        assert [p.name for p in func.params] == ["a", "b", "c"]

    def test_duplicate_function_rejected(self):
        with pytest.raises(ParseError):
            parse("def f() { } def f() { }")

    def test_struct_declaration(self):
        program = parse("struct Point { x, y }")
        assert program.structs["Point"].fields == ["x", "y"]

    def test_struct_duplicate_field_rejected(self):
        with pytest.raises(ParseError):
            parse("struct P { x, x }")

    def test_global_with_and_without_init(self):
        program = parse("var a; var b = 42;")
        assert program.globals[0].init is None
        assert program.globals[1].init.value == 42

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError):
            parse("if (x) { }")

    def test_node_ids_are_unique(self):
        program = parse("def main() { var x = 1 + 2 * 3; print(x); }")
        ids = [n.nid for n in ast.walk(program)]
        assert len(ids) == len(set(ids))


class TestStatements:
    def test_var_decl(self):
        stmt = first_stmt("var x = 5;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.name == "x"

    def test_assignment_ops(self):
        for op in ("=", "+=", "-=", "*=", "/="):
            stmt = first_stmt(f"var x = 0; x {op} 2;")
            # first statement is the decl; re-parse to grab the assignment
        program = parse("def main() { var x = 0; x += 2; }")
        assign = program.main.body.stmts[1]
        assert isinstance(assign, ast.Assign)
        assert assign.op == "+="

    def test_assignment_to_index_and_field(self):
        program = parse("""
        struct B { v }
        def main() {
            var a = new int[3];
            a[0] = 1;
            var b = new B();
            b.v = 2;
        }""")
        stmts = program.main.body.stmts
        assert isinstance(stmts[1].target, ast.Index)
        assert isinstance(stmts[3].target, ast.FieldAccess)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse("def main() { 1 + 2 = 3; }")

    def test_if_else_chain(self):
        stmt = first_stmt(
            "if (true) { } else if (false) { } else { print(1); }")
        assert isinstance(stmt, ast.If)
        nested = stmt.else_block.stmts[0]
        assert isinstance(nested, ast.If)
        assert nested.else_block is not None

    def test_while(self):
        stmt = first_stmt("while (false) { print(1); }")
        assert isinstance(stmt, ast.While)

    def test_for_full(self):
        stmt = first_stmt("for (var i = 0; i < 3; i = i + 1) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.update, ast.Assign)

    def test_for_all_clauses_empty(self):
        stmt = first_stmt("for (;;) { break; }")
        assert stmt.init is None
        assert stmt.cond is None
        assert stmt.update is None

    def test_for_with_assignment_init(self):
        stmt = first_stmt("var i; for (i = 0; i < 2; i = i + 1) { }")
        program = parse("def main() { var i; for (i = 0; i < 2; i = i + 1) { } }")
        loop = program.main.body.stmts[1]
        assert isinstance(loop.init, ast.Assign)

    def test_return_with_and_without_value(self):
        assert first_stmt("return;").value is None
        assert first_stmt("return 3;").value.value == 3

    def test_break_continue(self):
        stmt = first_stmt("while (true) { break; }")
        assert isinstance(stmt.body.stmts[0], ast.Break)
        stmt = first_stmt("while (true) { continue; }")
        assert isinstance(stmt.body.stmts[0], ast.Continue)

    def test_bare_block(self):
        stmt = first_stmt("{ var x = 1; }")
        assert isinstance(stmt, ast.Block)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("def main() { var x = 1 }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("def main() { var x = 1;")


class TestAsyncFinish:
    def test_async_block(self):
        stmt = first_stmt("async { print(1); }")
        assert isinstance(stmt, ast.AsyncStmt)
        assert len(stmt.body.stmts) == 1

    def test_async_single_statement_sugar(self):
        stmt = first_stmt("async print(1);")
        assert isinstance(stmt, ast.AsyncStmt)
        assert isinstance(stmt.body.stmts[0], ast.ExprStmt)

    def test_finish_block_and_sugar(self):
        stmt = first_stmt("finish { async print(1); }")
        assert isinstance(stmt, ast.FinishStmt)
        stmt = first_stmt("finish async print(1);")
        assert isinstance(stmt, ast.FinishStmt)
        assert isinstance(stmt.body.stmts[0], ast.AsyncStmt)

    def test_parsed_finish_is_not_synthetic(self):
        stmt = first_stmt("finish { }")
        assert stmt.synthetic is False


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = expr_of("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        expr = expr_of("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_precedence_bitand_vs_eq(self):
        # C-like: == binds tighter than & in this grammar? No — the table
        # puts & above ==, i.e. `a & b == c` is `a & (b == c)`... check.
        expr = expr_of("1 & 2 == 2")
        assert expr.op == "&"
        assert expr.right.op == "=="

    def test_logical_precedence(self):
        expr = expr_of("true || false && true")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_left_associativity(self):
        expr = expr_of("1 - 2 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"
        assert expr.right.value == 3

    def test_parentheses_override(self):
        expr = expr_of("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_operators(self):
        assert expr_of("-x").op == "-"
        assert expr_of("!x").op == "!"
        assert expr_of("~x").op == "~"

    def test_unary_binds_tighter_than_binary(self):
        expr = expr_of("-x + y")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.Unary)

    def test_call_with_args(self):
        expr = expr_of("f(1, 2, 3)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3

    def test_postfix_chains(self):
        expr = expr_of("a[0].field[1]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.FieldAccess)
        assert isinstance(expr.base.base, ast.Index)

    def test_new_struct(self):
        expr = expr_of("new Point()")
        assert isinstance(expr, ast.NewStruct)
        assert expr.struct_name == "Point"

    def test_new_array_1d(self):
        expr = expr_of("new int[10]")
        assert isinstance(expr, ast.NewArray)
        assert expr.elem_type == "int"
        assert len(expr.dims) == 1

    def test_new_array_2d(self):
        expr = expr_of("new double[3][4]")
        assert len(expr.dims) == 2

    def test_new_requires_bracket_or_paren(self):
        with pytest.raises(ParseError):
            parse("def main() { var x = new int; }")

    def test_literals(self):
        assert expr_of("true").value is True
        assert expr_of("false").value is False
        assert isinstance(expr_of("null"), ast.NullLit)
        assert expr_of('"s"').value == "s"

    def test_expression_error(self):
        with pytest.raises(ParseError):
            parse("def main() { var x = ; }")
