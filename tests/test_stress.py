"""Robustness at scale: deep recursion, wide fan-out, heavy tie-breaking."""

import pytest

from repro.lang import serial_elision, strip_finishes
from repro.races import detect_races
from repro.repair import repair_program
from repro.repair.placement import placement_cost, solve_placement
from repro.runtime import run_program
from tests.conftest import build


class TestDeepStructures:
    def test_deep_sequential_recursion(self):
        source = """
        def down(n) {
            if (n == 0) { return 0; }
            return down(n - 1) + 1;
        }
        def main() { print(down(400)); }
        """
        assert run_program(build(source)).output == ["400"]

    def test_deep_task_chain_repair(self):
        # A 60-deep chain of nested asyncs, each racing with the final
        # read: the S-DPST is a long spine and LCA walks must cope.
        source = """
        var x = 0;
        def chain(n) {
            if (n == 0) { x = x + 1; return; }
            async chain(n - 1);
        }
        def main() {
            chain(60);
            print(x);
        }
        """
        program = build(source)
        result = repair_program(program)
        assert result.converged
        assert detect_races(result.repaired).report.is_race_free

    def test_wide_fanout_repair(self):
        parts = "\n".join(
            f"async {{ slots[{i}] = {i}; }}" for i in range(64))
        source = f"""
        def main() {{
            var slots = new int[64];
            {parts}
            var sum = 0;
            for (var i = 0; i < 64; i = i + 1) {{ sum = sum + slots[i]; }}
            print(sum);
        }}
        """
        program = build(source)
        result = repair_program(program)
        assert result.converged
        expected = run_program(serial_elision(program)).output
        assert run_program(result.repaired).output == expected

    def test_many_distinct_racy_contexts(self):
        # Ten separate functions each with their own race: ten distinct
        # static edits in one iteration.
        funcs = "\n".join(f"""
        def f{i}(a) {{
            async {{ a[{i}] = {i}; }}
            print(a[{i}]);
        }}""" for i in range(10))
        calls = "\n".join(f"f{i}(shared);" for i in range(10))
        source = f"""
        {funcs}
        def main() {{
            var shared = new int[10];
            {calls}
        }}
        """
        program = build(source)
        result = repair_program(program)
        assert result.converged
        assert result.inserted_finish_count == 10
        assert len(result.iterations) == 1


class TestPlacementScale:
    def test_dp_on_wide_graph(self):
        # 120 nodes, sparse edges: must complete quickly and cover.
        n = 120
        times = [(i % 7) + 1 for i in range(n)]
        is_async = [i % 3 != 2 for i in range(n)]
        edges = [(i, i + 5) for i in range(0, n - 5, 9) if is_async[i]]
        solution = solve_placement(times, is_async, edges)
        assert solution is not None
        assert placement_cost(times, is_async, solution.finishes) \
            == solution.cost

    def test_dp_heavy_ties(self):
        # All-equal times produce maximal tie-breaking pressure; the
        # result must still be optimal-cost and deterministic.
        n = 10
        times = [5] * n
        is_async = [True] * n
        edges = [(i, n - 1) for i in range(n - 1)]
        a = solve_placement(times, is_async, edges)
        b = solve_placement(times, is_async, edges)
        assert a.finishes == b.finishes
        assert a.cost == 5 + 5  # all asyncs joined in parallel, then sink

    def test_repair_of_benchmark_scale_program(self):
        # A mid-size quicksort through the whole pipeline as a stress
        # smoke test (bigger than test_args, smaller than repair_args).
        from repro.bench import get_benchmark
        spec = get_benchmark("quicksort")
        buggy = strip_finishes(spec.parse())
        result = repair_program(buggy, (300,))
        assert result.converged
