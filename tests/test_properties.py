"""Property-based tests (hypothesis) over the core invariants.

* The pretty-printer round trip is the identity (modulo ids/positions).
* MRW ESP-bags reports exactly the DPST-MHP oracle's race set; SRW is a
  subset — on arbitrary generated async/finish programs.
* Repairing an arbitrary generated racy program converges, yields a
  race-free program, and preserves the serial-elision semantics.
* Algorithm 1 (the placement DP) is optimal: it matches the exhaustive
  laminar-family search on arbitrary small dependence graphs, with and
  without validity constraints.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lang import ast, parse, pretty, serial_elision
from repro.lang.transform import ast_equal
from repro.races import OracleDetector, detect_races
from repro.repair import repair_program
from repro.repair.bruteforce import brute_force_placement
from repro.repair.placement import (
    covers_all_edges,
    placement_cost,
    solve_placement,
)
from repro.runtime import run_program

# ----------------------------------------------------------------------
# A generator of small, always-terminating async/finish programs that
# read and write a handful of shared locations.
# ----------------------------------------------------------------------

_VARS = ("g0", "g1", "g2")


def _exprs():
    atoms = st.one_of(
        st.integers(min_value=0, max_value=9).map(str),
        st.sampled_from(_VARS),
        st.sampled_from([f"arr[{i}]" for i in range(3)]),
    )
    return st.one_of(
        atoms,
        st.tuples(atoms, st.sampled_from(["+", "-", "*"]), atoms)
        .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
    )


def _simple_stmts():
    targets = st.sampled_from(list(_VARS) + [f"arr[{i}]" for i in range(3)])
    assign = st.tuples(targets, _exprs()).map(lambda t: f"{t[0]} = {t[1]};")
    return assign


def _stmts(depth: int):
    simple = _simple_stmts()
    if depth <= 0:
        return simple
    inner = st.lists(_stmts(depth - 1), min_size=1, max_size=3)

    def block(kind):
        return inner.map(
            lambda body: kind + " {\n" + "\n".join(body) + "\n}")

    compound = st.one_of(
        block("async"),
        block("finish"),
        inner.map(lambda body: "if (g0 < 5) {\n" + "\n".join(body) + "\n}"),
        inner.map(lambda body:
                  "for (var i = 0; i < 2; i = i + 1) {\n"
                  + "\n".join(body) + "\n}"),
    )
    return st.one_of(simple, compound)


@st.composite
def programs(draw):
    body = draw(st.lists(_stmts(2), min_size=1, max_size=5))
    decls = "\n".join(f"var {name} = {i};" for i, name in enumerate(_VARS))
    return (decls + "\ndef main() {\nvar arr = new int[3];\n"
            + "\n".join(body) + "\nprint(g0, g1, g2, arr[0]);\n}")


_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestLanguageProperties:
    @given(source=programs())
    @_SETTINGS
    def test_pretty_parse_roundtrip(self, source):
        program = parse(source)
        assert ast_equal(program, parse(pretty(program)))

    @given(source=programs())
    @_SETTINGS
    def test_pretty_is_idempotent(self, source):
        once = pretty(parse(source))
        assert once == pretty(parse(once))

    @given(source=programs())
    @_SETTINGS
    def test_execution_matches_serial_elision(self, source):
        # The *sequential depth-first* execution of the parallel program
        # is the serial elision's execution (Section 4.1).
        program = parse(source)
        parallel_out = run_program(program).output
        elided_out = run_program(serial_elision(program)).output
        assert parallel_out == elided_out


class TestDetectorProperties:
    @given(source=programs())
    @_SETTINGS
    def test_mrw_equals_oracle(self, source):
        program = parse(source)
        mrw = detect_races(program, algorithm="mrw")
        oracle = detect_races(program, detector=OracleDetector())
        assert {r.step_pair() for r in mrw.report} == \
            {r.step_pair() for r in oracle.report}

    @given(source=programs())
    @_SETTINGS
    def test_srw_subset_of_mrw(self, source):
        program = parse(source)
        srw = detect_races(program, algorithm="srw")
        mrw = detect_races(program, algorithm="mrw")
        # SRW's single slot may surface any same-task access as the
        # source, so the guaranteed containment is at (source task,
        # sink step) granularity.
        assert {r.task_sink_pair() for r in srw.report} <= \
            {r.task_sink_pair() for r in mrw.report}

    @given(source=programs())
    @_SETTINGS
    def test_race_sources_precede_sinks(self, source):
        detection = detect_races(parse(source))
        for race in detection.report:
            assert race.source.index < race.sink.index


def _flatten(program):
    """Inline bare block statements (purely for structural comparison)."""
    def flatten_block(block):
        stmts = []
        for stmt in block.stmts:
            for child in stmt.children():
                if isinstance(child, ast.Block):
                    flatten_block(child)
            if isinstance(stmt, ast.Block):
                flatten_block(stmt)
                stmts.extend(stmt.stmts)
            else:
                stmts.append(stmt)
        block.stmts = stmts

    for func in program.functions.values():
        flatten_block(func.body)
    return program


class TestRepairProperties:
    @given(source=programs())
    @_SETTINGS
    def test_repair_full_contract(self, source):
        program = parse(source)
        result = repair_program(program, max_iterations=25)
        assert result.converged
        # 1. No races remain for the input.
        assert detect_races(result.repaired).report.is_race_free
        # 2. Serial-elision semantics preserved.
        out_repaired = run_program(result.repaired).output
        out_elided = run_program(serial_elision(program)).output
        assert out_repaired == out_elided
        # 3. Statement order preserved: the elision of the repaired
        #    program equals the elision of the original, modulo the block
        #    nesting a `finish { ... }` leaves behind.
        assert ast_equal(_flatten(serial_elision(result.repaired)),
                         _flatten(serial_elision(program)))

    @given(source=programs())
    @_SETTINGS
    def test_repaired_is_schedule_deterministic(self, source):
        # Footnote 1 of the paper, checked empirically: the race-free
        # repaired program behaves identically under random legal
        # schedules that differ from the canonical depth-first one.
        from repro.runtime import check_determinism

        program = parse(source)
        result = repair_program(program, max_iterations=25)
        assert result.converged
        report = check_determinism(result.repaired, schedules=4)
        assert report.deterministic, report.summary()


# ----------------------------------------------------------------------
# DP optimality on random dependence graphs
# ----------------------------------------------------------------------

@st.composite
def dependence_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    times = draw(st.lists(st.integers(min_value=1, max_value=50),
                          min_size=n, max_size=n))
    is_async = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    candidates = [(x, y) for x in range(n) if is_async[x]
                  for y in range(x + 1, n)]
    edges = draw(st.lists(st.sampled_from(candidates), unique=True,
                          max_size=len(candidates))
                 if candidates else st.just([]))
    return times, is_async, sorted(edges)


class TestPlacementOptimality:
    @given(graph=dependence_graphs())
    @settings(max_examples=120, deadline=None)
    def test_dp_matches_bruteforce(self, graph):
        times, is_async, edges = graph
        solution = solve_placement(times, is_async, edges)
        oracle = brute_force_placement(times, is_async, edges)
        assert solution is not None and oracle is not None
        assert solution.cost == oracle[0]
        assert covers_all_edges(edges, solution.finishes)
        assert placement_cost(times, is_async, solution.finishes) \
            == solution.cost

    @given(graph=dependence_graphs(),
           banned=st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                          max_size=6))
    @settings(max_examples=120, deadline=None)
    def test_dp_matches_bruteforce_under_validity(self, graph, banned):
        times, is_async, edges = graph

        def valid(s, e):
            return (s, e) not in banned

        solution = solve_placement(times, is_async, edges, valid)
        oracle = brute_force_placement(times, is_async, edges, valid)
        if oracle is None:
            assert solution is None
            return
        assert solution is not None
        assert solution.cost == oracle[0]
        assert all(valid(s, e) for s, e in solution.finishes)

    @given(graph=dependence_graphs())
    @settings(max_examples=80, deadline=None)
    def test_est_after_bounded_by_cost(self, graph):
        times, is_async, edges = graph
        solution = solve_placement(times, is_async, edges)
        assert 0 <= solution.est_after <= solution.cost
