"""Content-addressed result cache: key derivation and the on-disk store.

The key property (a satellite of the batch-service issue): the cache key
must be invariant under *formatting* — whitespace, comments, layout —
and sensitive to *semantics* — any edit that changes the AST, down to a
single inserted ``finish``.  The student corpus is the natural property
source: real submissions differ in exactly these ways.
"""

import json

import pytest

from repro import parse, pretty
from repro.bench.students import population_sources
from repro.lang import count_finishes, insert_finish
from repro.lang.ast import Block, walk
from repro.service import Job, JobResult, ResultCache, run_job
from repro.service.cache import canonical_source

RACY = """
var x = 0;
def main() {
    async { x = 1; }
    print(x);
}
"""


def _format_variants(source: str):
    """Layout/comment mutations that must preserve the program."""
    yield "// a leading comment\n" + source
    yield source.replace("\n", "\n\n")
    yield source.replace("    ", "\t")
    yield "/* block\n   comment */\n" + source + "\n// trailing\n"
    yield "\n".join(line + "   " for line in source.split("\n"))


def _distinct_corpus(limit=None):
    """One source per distinct canonical text in the student corpus."""
    by_canon = {}
    for name, source in population_sources():
        by_canon.setdefault(canonical_source(source), (name, source))
    items = sorted(by_canon.values())
    return items[:limit] if limit else items


class TestCacheKey:
    def test_formatting_variants_hit_same_entry(self):
        # Property over the whole (deduplicated) student corpus: every
        # formatting variant of every submission keys identically.
        cache = ResultCache()
        for name, source in _distinct_corpus():
            job = Job("repair", source, source_name=name, args=(40,))
            key = cache.key_for(job)
            for variant in _format_variants(source):
                variant_job = Job("repair", variant,
                                  source_name="variant-" + name, args=(40,))
                assert cache.key_for(variant_job) == key, name

    def test_semantic_edits_miss(self):
        # Property over the corpus: wrapping any block's statements in a
        # synthetic finish — the smallest semantic edit the repair tool
        # itself makes — must change the key.
        cache = ResultCache()
        for name, source in _distinct_corpus(limit=6):
            job = Job("repair", source, source_name=name, args=(40,))
            key = cache.key_for(job)
            program = parse(source)
            block = next(node for node in walk(program)
                         if isinstance(node, Block) and node.stmts)
            insert_finish(program, block.nid, 0, len(block.stmts) - 1)
            edited = pretty(program)
            assert count_finishes(parse(edited)) == \
                count_finishes(parse(source)) + 1
            edited_job = Job("repair", edited, source_name=name, args=(40,))
            assert cache.key_for(edited_job) != key, name

    def test_distinct_submissions_have_distinct_keys(self):
        cache = ResultCache()
        keys = {cache.key_for(Job("repair", source, args=(40,)))
                for _, source in _distinct_corpus()}
        assert len(keys) == len(_distinct_corpus())

    def test_corpus_dedup_factor(self):
        # The classroom case the cache exists for: 59 submissions
        # collapse to far fewer distinct canonical programs.
        cache = ResultCache()
        sources = population_sources()
        keys = {cache.key_for(Job("repair", source, args=(40,)))
                for _, source in sources}
        assert len(keys) < len(sources) / 2

    def test_key_depends_on_semantics_not_timing(self):
        cache = ResultCache()
        base = Job("repair", RACY, args=(1,))
        assert cache.key_for(Job("repair", RACY, args=(1,), replay=False,
                                 timeout_s=3.0)) == cache.key_for(base)
        assert cache.key_for(Job("repair", RACY, args=(2,))) != \
            cache.key_for(base)
        assert cache.key_for(Job("detect", RACY, args=(1,))) != \
            cache.key_for(base)
        assert cache.key_for(Job("repair", RACY, args=(1,),
                                 algorithm="srw")) != cache.key_for(base)
        assert cache.key_for(Job("repair", RACY, args=(1,),
                                 strip_finishes=True)) != cache.key_for(base)

    def test_unparseable_source_keys_on_raw_text(self):
        cache = ResultCache()
        a = cache.key_for(Job("detect", "def main( {"))
        b = cache.key_for(Job("detect", "def main( {"))
        c = cache.key_for(Job("detect", "def main(( {"))
        assert a == b != c

    def test_canonical_source_normalizes(self):
        canon = canonical_source(RACY)
        assert canonical_source("// hi\n" + RACY.replace("    ", " ")) \
            == canon


class TestCacheStore:
    def test_memory_roundtrip(self):
        cache = ResultCache()
        job = Job("detect", RACY, source_name="a.hj")
        assert cache.lookup(job) is None
        result = run_job(job)
        assert cache.put(cache.key_for(job), result)
        hit = cache.lookup(job)
        assert hit is not None and hit.cached
        assert hit.result == result.result
        assert len(cache) == 1

    def test_hit_renames_to_requesting_job(self):
        cache = ResultCache()
        job = Job("detect", RACY, source_name="original.hj")
        cache.put(cache.key_for(job), run_job(job))
        twin = Job("detect", "// c\n" + RACY, source_name="twin.hj")
        hit = cache.lookup(twin)
        assert hit is not None
        assert hit.source_name == "twin.hj"

    def test_disk_persistence_across_instances(self, tmp_path):
        store = str(tmp_path / "cache")
        first = ResultCache(store)
        job = Job("repair", RACY, source_name="a.hj")
        first.put(first.key_for(job), run_job(job))
        second = ResultCache(store)
        hit = second.lookup(job)
        assert hit is not None and hit.cached
        assert hit.result["converged"]
        assert second.stats.hits == 1

    def test_nondeterministic_results_rejected(self):
        cache = ResultCache()
        job = Job("detect", RACY)
        key = cache.key_for(job)
        timeout = JobResult.interrupted(job, "timeout", "budget exceeded")
        assert not cache.put(key, timeout)
        assert cache.lookup(job) is None
        assert cache.stats.rejected == 1

    def test_deterministic_errors_are_cached(self):
        cache = ResultCache()
        job = Job("detect", "def main( {", source_name="bad.hj")
        result = run_job(job)
        assert cache.put(cache.key_for(job), result)
        hit = cache.lookup(job)
        assert hit.status == "error"
        assert hit.error["category"] == "parse"

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = str(tmp_path / "cache")
        cache = ResultCache(store)
        job = Job("detect", RACY)
        key = cache.key_for(job)
        (tmp_path / "cache" / f"{key}.json").write_text("{ not json")
        assert cache.lookup(job) is None

    def test_stats_counters(self):
        cache = ResultCache()
        job = Job("detect", RACY)
        cache.lookup(job)
        cache.put(cache.key_for(job), run_job(job))
        cache.lookup(job)
        stats = cache.stats.to_dict()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["stores"] == 1
        assert 0 < stats["hit_rate"] < 1
        json.dumps(stats)

    def test_hit_is_isolated_copy(self):
        cache = ResultCache()
        job = Job("detect", RACY)
        cache.put(cache.key_for(job), run_job(job))
        first = cache.lookup(job)
        first.result["races"].append({"fake": True})
        second = cache.lookup(job)
        assert {"fake": True} not in second.result["races"]
