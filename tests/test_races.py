"""SRW and MRW ESP-bags detector behaviour (Section 4)."""

import pytest

from repro.races import (
    MrwEspBagsDetector,
    OracleDetector,
    SrwEspBagsDetector,
    detect_races,
    make_detector,
)
from tests.conftest import build


def detect(source: str, args=(), algorithm="mrw"):
    return detect_races(build(source), args, algorithm=algorithm)


def kinds(report):
    return sorted(r.kind for r in report)


class TestBasicRaces:
    def test_write_read_race(self):
        det = detect("""
        var x = 0;
        def main() { async { x = 1; } print(x); }
        """)
        assert kinds(det.report) == ["W->R"]

    def test_write_write_race(self):
        det = detect("""
        var x = 0;
        def main() { async { x = 1; } x = 2; }
        """)
        assert kinds(det.report) == ["W->W"]

    def test_read_write_race(self):
        det = detect("""
        var x = 0;
        def main() { async { print(x); } x = 2; }
        """)
        assert kinds(det.report) == ["R->W"]

    def test_read_read_is_not_a_race(self):
        det = detect("""
        var x = 0;
        def main() { async { print(x); } print(x); }
        """)
        assert det.report.is_race_free

    def test_source_precedes_sink_in_dfs_order(self):
        det = detect("""
        var x = 0;
        def main() { async { x = 1; } async { x = 2; } x = 3; }
        """)
        for race in det.report:
            assert race.source.index < race.sink.index


class TestSynchronization:
    def test_finish_removes_race(self):
        det = detect("""
        var x = 0;
        def main() { finish { async { x = 1; } } print(x); }
        """)
        assert det.report.is_race_free

    def test_finish_joins_transitively(self):
        det = detect("""
        var x = 0;
        def spawn_deep(n) {
            if (n > 0) { async spawn_deep(n - 1); }
            if (n == 0) { x = 1; }
        }
        def main() { finish { async spawn_deep(4); } print(x); }
        """)
        assert det.report.is_race_free

    def test_race_inside_finish_still_detected(self):
        det = detect("""
        var x = 0;
        def main() { finish { async { x = 1; } print(x); } }
        """)
        assert len(det.report) == 1

    def test_nested_finish_partial_join(self):
        det = detect("""
        var x = 0;
        var y = 0;
        def main() {
            finish {
                async { x = 1; }
            }
            async { y = 1; }
            print(x);
            print(y);
        }
        """)
        # x is joined; y races with the print.
        assert len(det.report) == 1
        assert kinds(det.report) == ["W->R"]

    def test_same_task_accesses_never_race(self):
        det = detect("""
        var x = 0;
        def main() { x = 1; x = 2; print(x); }
        """)
        assert det.report.is_race_free

    def test_parent_write_before_spawn_ordered(self):
        det = detect("""
        var x = 0;
        def main() { x = 1; async { print(x); } }
        """)
        assert det.report.is_race_free

    def test_sibling_asyncs_race(self):
        det = detect("""
        var x = 0;
        def main() { async { x = 1; } async { x = 2; } }
        """)
        assert kinds(det.report) == ["W->W"]


class TestSrwVsMrw:
    def test_figure7_srw_underreports(self, figure7_source):
        program = build(figure7_source)
        srw = detect_races(program, algorithm="srw")
        mrw = detect_races(program, algorithm="mrw")
        assert len(srw.report) == 1
        assert len(mrw.report) == 2

    def test_srw_races_subset_of_mrw(self, figure7_source):
        program = build(figure7_source)
        srw = detect_races(program, algorithm="srw")
        mrw = detect_races(program, algorithm="mrw")
        mrw_pairs = {r.task_sink_pair() for r in mrw.report}
        assert {r.task_sink_pair() for r in srw.report} <= mrw_pairs

    def test_multiple_writers_one_reader(self):
        det_srw = detect("""
        var x = 0;
        def main() { async { x = 1; } async { x = 2; } print(x); }
        """, algorithm="srw")
        det_mrw = detect("""
        var x = 0;
        def main() { async { x = 1; } async { x = 2; } print(x); }
        """, algorithm="mrw")
        # MRW sees: WW between the tasks and WR from each to the read.
        assert len(det_mrw.report) == 3
        assert len(det_srw.report) <= len(det_mrw.report)

    def test_make_detector(self):
        assert isinstance(make_detector("srw"), SrwEspBagsDetector)
        assert isinstance(make_detector("mrw"), MrwEspBagsDetector)
        with pytest.raises(ValueError):
            make_detector("nope")

    def test_duplicate_races_not_recorded(self):
        det = detect("""
        var x = 0;
        def main() {
            async { x = 1; x = 1; }
            print(x); print(x);
        }
        """)
        # One writer step, one reader step per print-step: the duplicate
        # accesses within a step collapse.
        pairs = det.report.distinct_step_pairs()
        assert len(pairs) == len({(a.index, b.index) for a, b in pairs})


class TestAddressGranularity:
    def test_disjoint_array_elements_no_race(self):
        det = detect("""
        def main() {
            var a = new int[2];
            async { a[0] = 1; }
            a[1] = 2;
        }""")
        assert det.report.is_race_free

    def test_same_element_races(self):
        det = detect("""
        def main() {
            var a = new int[2];
            async { a[0] = 1; }
            a[0] = 2;
        }""")
        assert len(det.report) == 1

    def test_struct_fields_independent(self):
        det = detect("""
        struct P { x, y }
        def main() {
            var p = new P();
            async { p.x = 1; }
            p.y = 2;
        }""")
        assert det.report.is_race_free

    def test_captured_local_races(self):
        det = detect("""
        def main() {
            var local = 0;
            async { local = 1; }
            print(local);
        }""")
        assert len(det.report) == 1

    def test_fresh_local_per_iteration_no_race(self):
        det = detect("""
        def main() {
            for (var i = 0; i < 3; i = i + 1) {
                var copy = i;
                async { print(copy); }
            }
        }""")
        assert det.report.is_race_free

    def test_loop_variable_capture_races(self):
        det = detect("""
        def main() {
            for (var i = 0; i < 3; i = i + 1) {
                async { print(i); }
            }
        }""")
        assert not det.report.is_race_free


class TestOracleAgreement:
    PROGRAMS = [
        """
        var x = 0;
        def main() { async { x = 1; } async { x = 2; } print(x); }
        """,
        """
        var x = 0;
        def main() { finish { async { x = 1; } } async { x = 2; } print(x); }
        """,
        """
        def rec(a, n) {
            if (n == 0) { a[0] = a[0] + 1; return; }
            async rec(a, n - 1);
            finish { async rec(a, n - 1); }
        }
        def main() { var a = new int[1]; rec(a, 3); print(a[0]); }
        """,
        """
        var x = 0;
        def main() {
            for (var i = 0; i < 4; i = i + 1) {
                async { x = x + 1; }
            }
            print(x);
        }
        """,
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_mrw_matches_mhp_oracle(self, source):
        program = build(source)
        mrw = detect_races(program, algorithm="mrw")
        oracle = detect_races(program, detector=OracleDetector())
        assert {r.step_pair() for r in mrw.report} == \
            {r.step_pair() for r in oracle.report}

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_srw_is_subset_of_oracle(self, source):
        program = build(source)
        srw = detect_races(program, algorithm="srw")
        oracle = detect_races(program, detector=OracleDetector())
        assert {r.task_sink_pair() for r in srw.report} <= \
            {r.task_sink_pair() for r in oracle.report}


class TestDetectionResult:
    def test_counts_and_metadata(self, figure7_source):
        det = detect_races(build(figure7_source))
        assert det.race_count == 2
        assert det.dpst_node_count > 0
        assert det.elapsed_s >= 0
        assert det.detector.monitored_accesses > 0

    def test_execution_output_available(self):
        det = detect("def main() { print(42); }")
        assert det.execution.output == ["42"]
