#!/usr/bin/env python
"""CI gate for the observability layer (DESIGN.md §14).

Three checks:

1. **Fleet trace validity** — submit a small traced batch to a durable
   queue, drain it with TWO real node processes (``python -m
   repro.service.node --trace-log``), merge the per-node logs with the
   ``repro trace merge`` CLI verb, and assert (a) the merged document
   passes ``validate_chrome_trace``, (b) every job's spans — submit,
   queue.wait, job, phases — form ONE connected tree under its single
   trace id, with the submit span as the root.

2. **Prometheus exposition** — stand up the HTTP service in queue mode,
   run one job, scrape ``GET /metrics?format=prometheus`` and feed it to
   the strict :func:`repro.telemetry.parse_prometheus`; the families a
   dashboard needs (phase latency histogram, queue depth, jobs by
   status) must be present.

3. **Overhead budget** — enabled tracing must cost within ``--budget``
   (default 5%) of tracing-off on a full ``run_job``.  Measured min-of-N
   over **CPU time** with interleaved on/off rounds (the same
   methodology as ``scripts/telemetry_ci.py``: wall-clock minima on
   shared runners shift more than the budget; CPU time holds a sub-1%
   null), with an absolute grace floor against sub-millisecond jitter.

Exit status 0 iff all checks pass.  Usage::

    PYTHONPATH=src python scripts/observability_ci.py
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import telemetry
from repro.service import Job, JobQueue, run_job

RACY = """
var x = 0;
def main() {
    async { x = %d; }
    print(x);
}
"""

REQUIRED_FAMILIES = (
    "repro_phase_seconds_bucket",
    "repro_phase_seconds_count",
    "repro_queue_depth",
    "repro_jobs_by_status",
    "repro_workers_truncated_spans",
)


def _env_with_src():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p)
    return env


def _traced_job(n):
    return Job("detect", RACY % n, source_name=f"v{n}.hj",
               trace=telemetry.TraceContext.mint())


def _tree_size(roots):
    total, stack = 0, list(roots)
    while stack:
        span = stack.pop()
        total += 1
        stack.extend(span["children"])
    return total


def check_fleet_trace(workdir: str, count: int, lease_s: float) -> int:
    """Two real node processes drain a traced batch; merge and audit."""
    queue_path = os.path.join(workdir, "q.db")
    queue = JobQueue(queue_path, lease_s=lease_s)
    submit_path = os.path.join(workdir, "submit.jsonl")
    submit_log = telemetry.TraceLog(submit_path, node="cli")

    jobs = [_traced_job(n + 1) for n in range(count)]
    for job in jobs:
        submitted = time.time()
        queue_id = queue.submit(job, batch_id="ci")
        trace = telemetry.TraceContext.from_dict(job.trace)
        submit_log.span("submit", submitted, time.time(), trace.trace_id,
                        span_id=trace.span_id, job=job.source_name,
                        job_id=str(queue_id))

    node_logs = [os.path.join(workdir, f"{name}.jsonl")
                 for name in ("node-a", "node-b")]
    procs = [subprocess.Popen(
        [sys.executable, "-m", "repro.service.node",
         "--queue", queue_path, "--workers", "2",
         "--node-id", name, "--lease", str(lease_s),
         "--trace-log", log],
        env=_env_with_src(), stdout=subprocess.DEVNULL)
        for name, log in zip(("node-a", "node-b"), node_logs)]
    for proc in procs:
        if proc.wait(timeout=300) != 0:
            print("FAIL: node process exited non-zero", file=sys.stderr)
            return 1

    counts = queue.counts("ci")
    if counts["done"] != count:
        print(f"FAIL: batch did not drain cleanly: {counts}",
              file=sys.stderr)
        return 1

    # Merge through the CLI verb — the command a user would type.
    merged_path = os.path.join(workdir, "merged.json")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", "merge",
         submit_path, *node_logs, "-o", merged_path],
        env=_env_with_src(), capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"FAIL: repro trace merge exited {proc.returncode}:\n"
              f"{proc.stderr}", file=sys.stderr)
        return 1
    with open(merged_path) as handle:
        doc = json.load(handle)
    problems = telemetry.validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"FAIL: invalid merged trace: {problem}",
                  file=sys.stderr)
        return 1

    records = telemetry.read_records(submit_path)
    for log in node_logs:
        records.extend(telemetry.read_records(log))
    for job in jobs:
        trace = telemetry.TraceContext.from_dict(job.trace)
        trace_id, roots = telemetry.trace_tree(records, trace.trace_id)
        in_trace = [r for r in records
                    if r.get("trace_id") == trace.trace_id
                    and r.get("kind") == "span"]
        if trace_id != trace.trace_id or len(roots) != 1 \
                or roots[0]["name"] != "submit" \
                or _tree_size(roots) != len(in_trace):
            print(f"FAIL: {job.source_name}: spans do not form one "
                  f"connected submit-rooted tree "
                  f"(roots={[r['name'] for r in roots]}, "
                  f"tree={_tree_size(roots)}, spans={len(in_trace)})",
                  file=sys.stderr)
            return 1
    lanes = {r["node"] for r in records}
    print(f"ok: fleet trace valid — {count} jobs, "
          f"{len(records)} records from lanes {sorted(lanes)}, "
          f"{len(doc['traceEvents'])} merged events, "
          f"one connected tree per trace id")
    return 0


def check_prometheus(workdir: str) -> int:
    """Scrape the live fleet-health endpoint with the strict parser."""
    from repro.service import ServiceServer

    server = ServiceServer(workers=1, port=0,
                           queue=os.path.join(workdir, "metrics-q.db"))
    server.start()
    try:
        host, port = server.address
        body = json.dumps({"kind": "detect", "source": RACY % 1,
                           "source_name": "m.hj"}).encode("utf-8")
        request = urllib.request.Request(
            f"http://{host}:{port}/jobs", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=10) as reply:
            job_id = json.loads(reply.read())["ids"][0]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            with urllib.request.urlopen(
                    f"http://{host}:{port}/jobs/{job_id}",
                    timeout=10) as reply:
                if json.loads(reply.read())["status"] == "done":
                    break
            time.sleep(0.05)
        else:
            print("FAIL: metrics probe job never completed",
                  file=sys.stderr)
            return 1
        with urllib.request.urlopen(
                f"http://{host}:{port}/metrics?format=prometheus",
                timeout=10) as reply:
            text = reply.read().decode("utf-8")
    finally:
        server.close()

    try:
        samples = telemetry.parse_prometheus(text)
    except ValueError as error:
        print(f"FAIL: exposition does not parse: {error}",
              file=sys.stderr)
        return 1
    names = {name for name, _labels, _value in samples}
    missing = [family for family in REQUIRED_FAMILIES
               if family not in names]
    if missing:
        print(f"FAIL: exposition lacks families {missing}",
              file=sys.stderr)
        return 1
    print(f"ok: prometheus exposition parses — {len(samples)} samples, "
          f"{len(names)} series names")
    return 0


def check_overhead(workdir: str, program: str, budget: float,
                   rounds: int, grace_s: float) -> int:
    """Min-of-N ``run_job`` CPU time, tracing enabled vs disabled.

    Measured on a real example program (~50 ms of detection) so the
    per-job tracing cost — minting a context, exporting one session of
    spans as JSONL — is held against a meaningful denominator.
    """
    with open(program) as handle:
        source = handle.read()
    run_job(Job("detect", source, source_name="warm.hj"))  # warm-up

    log_path = os.path.join(workdir, "overhead.jsonl")
    on, off = [], []
    for _ in range(rounds):
        telemetry.set_tracelog(None)
        start = time.process_time()
        run_job(Job("detect", source, source_name="off.hj"))
        off.append(time.process_time() - start)

        telemetry.set_tracelog(log_path, node="ci")
        start = time.process_time()
        run_job(Job("detect", source, source_name="on.hj",
                    trace=telemetry.TraceContext.mint()))
        on.append(time.process_time() - start)
    telemetry.set_tracelog(None)

    best_off, best_on = min(off), min(on)
    overhead = (best_on - best_off) / best_off
    print(f"run_job cpu: off={best_off * 1e3:.2f} ms  "
          f"on={best_on * 1e3:.2f} ms  overhead={overhead * 100:+.2f}% "
          f"(budget {budget * 100:.0f}%, min of {rounds})")
    if best_on - best_off <= grace_s:
        return 0  # below measurement noise, regardless of ratio
    if overhead > budget:
        print(f"FAIL: tracing overhead {overhead * 100:.2f}% exceeds "
              f"{budget * 100:.0f}% budget", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=6,
                        help="jobs in the 2-node traced batch")
    parser.add_argument("--lease", type=float, default=5.0)
    parser.add_argument("--program",
                        default="examples/mergesort_racy.hj",
                        help="overhead-probe program (needs a real "
                             "workload, not a toy)")
    parser.add_argument("--budget", type=float, default=0.05,
                        help="max allowed relative overhead (default 5%%)")
    parser.add_argument("--rounds", type=int, default=7)
    parser.add_argument("--grace-ms", type=float, default=2.0,
                        help="absolute delta below which the relative "
                             "budget is not enforced")
    options = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="observability_ci_") as work:
        failures = check_fleet_trace(work, options.count, options.lease)
        failures += check_prometheus(work)
        failures += check_overhead(work, options.program,
                                   options.budget, options.rounds,
                                   options.grace_ms / 1e3)
    if failures:
        return 1
    print("observability CI gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
