#!/usr/bin/env python
"""Engine + repair-loop benchmark over the Table-1 suite.

Phases, per benchmark program:

* ``execute`` — a plain uninstrumented run (the Table-3 baseline),
  under both execution engines.
* ``detect``  — full race detection (execution + S-DPST construction +
  ESP-bags) on the finish-stripped variant, under both engines (on the
  process-default detection core).
* ``arraycore`` — detection-core comparison on the finish-stripped
  variant (compiled engine): the object core vs the array core with the
  stdlib batch filter (``REPRO_NUMPY=0``) vs the array core with the
  numpy batch filter (``REPRO_NUMPY=1``).  Each cell also records a
  normalized race-report digest; the three cells of a (program,
  detector) pair must be identical (the script exits nonzero
  otherwise — the bench doubles as a differential gate).
* ``repair``  — the end-to-end repair loop (Table-2 style), with the
  trace-replay fast path on vs off.  Replay records iteration 0 and
  re-detects iterations 1..k and the confirming run from the trace
  instead of re-executing; both modes must produce byte-identical
  repaired sources (the script exits nonzero if they ever differ).
  Besides the Table-1 programs (which converge in one iteration, so
  only the confirming run replays), the phase includes synthetic
  ``stress-*`` workloads whose nested unsynchronized asyncs force the
  engine through 2-3 repair iterations — the case replay exists for.
* ``repair-incremental`` — the same repair loop with replay pinned on,
  comparing incremental re-detection (checkpointed array-core replay
  that re-scans only the edited region) against full-trace replay.
  Each cell records the ``incremental.*`` telemetry counters, so the
  summary can report the re-scanned window fraction
  (``window_events / events_total``) next to the per-iteration
  re-detection speedup; repaired sources must again be byte-identical
  between modes.

One additional phase measures the batch service instead of a single
program:

* ``batch``   — the §7.4 classroom workload: repair the whole synthetic
  student corpus (``repro.bench.students``) through the worker pool, at
  1/2/4/8 workers with the result cache off and on.  Reported as
  jobs/sec; per-program repaired sources must be byte-identical across
  every (workers, cache) cell (enforced like the replay invariant).
  Worker scaling is bounded above by the machine's core count — the
  summary records ``cpu_count`` so the scaling column is interpretable —
  while the cache column measures dedup (many submissions are
  formatting variants of the same few mistakes), which does not need
  cores to pay off.

Methodology: every single timing runs in a *fresh* Python process (the
script re-invokes itself), so no measurement inherits allocator arenas,
GC history or interned objects from a previous one — same-process
back-to-back timings of allocation-heavy runs cross-contaminate by
10-20% depending on ordering.  Each cell reports the best of
``--trials`` runs.  Timings come from the telemetry layer
(:mod:`repro.telemetry`): each child process measures under a telemetry
session, reports the root span's wall clock as ``wall_time_s`` and the
session's per-phase totals (lex/parse/execute/dpst/detect/placement/...)
as ``phases`` — the same spans ``repro profile`` and the batch service
aggregate, so every consumer shares one definition of a phase.  Batch
cells aggregate the per-job timings that ride back on each
:class:`~repro.service.jobs.JobResult` into count/mean/p50/p95/max
summaries per phase.

Usage::

    PYTHONPATH=src python scripts/bench.py               # full, writes BENCH_pr9.json
    PYTHONPATH=src python scripts/bench.py --quick       # tiny inputs, 1 trial, stdout only
    PYTHONPATH=src python scripts/bench.py --phases repair --programs crypt stress-nested
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.suite import BENCHMARK_ORDER, get_benchmark  # noqa: E402

DETECTORS = ("mrw", "srw")
ENGINES = ("tree", "compiled")
PHASES = ("execute", "detect", "arraycore", "repair", "repair-incremental",
          "batch", "service-queue")
BATCH_WORKERS = (1, 2, 4, 8)
#: node-process counts for the ``service-queue`` phase (1 vs 2 nodes
#: draining one durable queue, each with this many pool workers).
QUEUE_NODES = (1, 2)
QUEUE_NODE_WORKERS = 2
#: detection-core cells of the ``arraycore`` phase: label -> (core
#: argument for detect_races, REPRO_NUMPY environment value).
CORE_CELLS = {
    "object": ("object", "0"),
    "array": ("array", "0"),
    "array-numpy": ("array", "1"),
}

# ----------------------------------------------------------------------
# Multi-iteration repair workloads.
#
# Every Table-1 program converges in a single repair iteration: all its
# races share one NS-LCA generation, so one round of finish insertion
# fixes them.  These synthetic programs exercise the engine's deferral
# path instead: the placements proposed for the *inner* async nest
# inside the outer edit of the same round and are deferred to the next
# iteration (engine._filter_nested_edits), so each nesting level costs
# one full re-detection — the workload trace replay is designed for.
# The sweeps touch disjoint array regions (monitored accesses that
# stress the detector without adding races) with expression-heavy
# statements (interpreter work that replay skips).
# ----------------------------------------------------------------------

_SWEEP = """
def sweep(a, lo, hi) {
    var s = 1;
    var t = 1;
    for (var i = lo; i < hi; i = i + 1) {
        s = s + a[i] * 3 + a[i] * 5 + a[i] * 7 + a[i] * 11 - a[i] * 2;
        t = t * 3 + s * 7 - t / 2 + s * 5 - t * 9 + s * 13 - t * 4 + s * 2;
        t = t - s * 6 + t / 3 - s * 8 + t * 5 - s * 10 + t / 7 - s * 12;
        a[i] = s + t * 2 + a[i] + a[i] * 4 + a[i] * 6;
        s = s - a[i] * 2 + t * 9 - a[i] * 5 + s / 3 + a[i] * 3 - t * 11;
    }
}
"""

STRESS_PROGRAMS = {
    # 2 repair iterations: the inner async's finish is deferred once.
    "stress-nested": (_SWEEP + """
def main(n) {
    var a = new int[3 * n];
    var x = 0;
    var y = 0;
    async {
        async {
            sweep(a, 0, n);
            y = 1;
        }
        sweep(a, n, 2 * n);
        y = y + 1;
        x = 5;
    }
    sweep(a, 2 * n, 3 * n);
    x = x + 1;
}
""", {"test": (40,), "repair": (4000,)}),
    # 3 repair iterations: two nesting levels defer in turn.
    "stress-chain": (_SWEEP + """
def main(n) {
    var a = new int[4 * n];
    var x = 0;
    var y = 0;
    var z = 0;
    async {
        async {
            async {
                sweep(a, 0, n);
                z = 1;
            }
            sweep(a, n, 2 * n);
            z = z + 1;
            y = 5;
        }
        sweep(a, 2 * n, 3 * n);
        y = y + 1;
        x = 5;
    }
    sweep(a, 3 * n, 4 * n);
    x = x + 1;
}
""", {"test": (40,), "repair": (4000,)}),
}


def _load_repair_workload(name: str, args_kind: str):
    """The (finish-stripped) program and input the repair phase measures."""
    from repro.lang import parse, strip_finishes

    if name in STRESS_PROGRAMS:
        source, inputs = STRESS_PROGRAMS[name]
        return parse(source, source_name=name), inputs[args_kind]
    spec = get_benchmark(name)
    args = spec.test_args if args_kind == "test" else spec.repair_args
    return strip_finishes(spec.parse()), args


def _session_phases(tel) -> dict:
    """The session's phase totals, rounded, for a bench record."""
    return {phase: round(total, 6)
            for phase, total in tel.phase_totals().items()}


def _session_wall_s(tel) -> float:
    """Wall-clock of the measured work: the root spans' total."""
    return sum(span.duration_s for span in tel.roots())


def _measure_child(options: argparse.Namespace) -> int:
    """Run one measurement in this (fresh) process; print a JSON record.

    Every phase is measured under a telemetry session: ``wall_time_s``
    is the root span's wall clock and ``phases`` the session's
    per-phase totals, so the bench, ``repro profile`` and the service
    ``/metrics`` endpoint all report the same spans.
    """
    from repro import telemetry

    if options.phase == "batch":
        from repro.bench.students import population_sources
        from repro.service import Job, ResultCache, run_batch

        sources = population_sources()
        if options.args == "test":
            sources = sources[:12]
        entry_args = (40,) if options.args == "test" else (75,)
        jobs = [Job("repair", source, source_name=name, args=entry_args)
                for name, source in sources]
        cache = ResultCache() if options.cache == "on" else None
        start = time.perf_counter()
        results = {job.source_name: result for _, job, result
                   in run_batch(jobs, workers=options.workers, cache=cache)}
        elapsed = time.perf_counter() - start
        statuses: dict = {}
        for result in results.values():
            statuses[result.status] = statuses.get(result.status, 0) + 1
        # Per-phase latency across executed jobs, from the telemetry
        # timings each JobResult carries back over the pool boundary.
        samples: dict = {}
        for result in results.values():
            for phase, seconds in (result.timings or {}).items():
                samples.setdefault(phase, []).append(seconds)
        phases = {phase: telemetry.summarize_samples(values)
                  for phase, values in sorted(samples.items())}
        # Completion order varies with scheduling; hash in name order so
        # the digest compares across (workers, cache) cells.
        digest = hashlib.sha256()
        for name in sorted(results):
            payload = results[name].result or {}
            digest.update(name.encode("utf-8"))
            digest.update(payload.get("repaired_source", "").encode("utf-8"))
        record = {
            "wall_time_s": elapsed,
            "jobs": len(results),
            "jobs_per_sec": round(len(results) / elapsed, 3)
            if elapsed > 0 else None,
            "statuses": statuses,
            "cache_hits": sum(1 for r in results.values() if r.cached),
            "coalesced": sum(1 for r in results.values() if r.coalesced),
            "phases": phases,
            "repaired_sha256": digest.hexdigest(),
        }
        print(json.dumps(record))
        return 0
    if options.phase == "service-queue":
        import shutil
        import tempfile

        from repro.bench.students import population_sources
        from repro.service import Job, JobQueue, batch_dedupe_key

        sources = population_sources()
        if options.args == "test":
            sources = sources[:12]
        entry_args = (40,) if options.args == "test" else (75,)
        jobs = [Job("repair", source, source_name=name, args=entry_args)
                for name, source in sources]
        workdir = tempfile.mkdtemp(prefix="bench-queue-")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in (
            os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", "src")),
            env.get("PYTHONPATH", "")) if p)

        def drain(tag):
            """Submit the corpus to a fresh queue and time N real node
            processes draining it against the shared cache directory."""
            queue_path = os.path.join(workdir, f"{tag}.db")
            queue = JobQueue(queue_path)
            batch = f"bench-{tag}"
            queue.submit_many(((job, batch_dedupe_key(batch, job))
                               for job in jobs), batch_id=batch)
            start = time.perf_counter()
            nodes = [subprocess.Popen(
                [sys.executable, "-m", "repro.service.node",
                 "--queue", queue_path,
                 "--workers", str(QUEUE_NODE_WORKERS),
                 "--cache-dir", os.path.join(workdir, "cache"),
                 "--node-id", f"{tag}-n{index}"],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
                for index in range(options.nodes)]
            for node in nodes:
                node.wait()
            elapsed = time.perf_counter() - start
            rows = queue.batch_rows(batch)
            assert all(row["state"] == "done" for row in rows), \
                f"queue drain left unfinished jobs: {queue.counts(batch)}"
            return elapsed, rows
        try:
            if options.cache == "on":
                drain("warmup")  # pre-populate the shared cache, untimed
            elapsed, rows = drain("measured")
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        statuses = {}
        for row in rows:
            status = row["result"]["status"]
            statuses[status] = statuses.get(status, 0) + 1
        digest = hashlib.sha256()
        for row in sorted(rows, key=lambda r: r["source_name"]):
            payload = row["result"].get("result") or {}
            digest.update(row["source_name"].encode("utf-8"))
            digest.update(payload.get("repaired_source", "")
                          .encode("utf-8"))
        record = {
            "wall_time_s": elapsed,
            "jobs": len(rows),
            "jobs_per_sec": round(len(rows) / elapsed, 3)
            if elapsed > 0 else None,
            "statuses": statuses,
            "cache_hits": sum(1 for row in rows
                              if row["result"].get("cached")),
            "repaired_sha256": digest.hexdigest(),
        }
        print(json.dumps(record))
        return 0
    if options.phase == "repair":
        from repro.repair import repair_program

        program, args = _load_repair_workload(options.program, options.args)
        replay = options.replay == "on"
        #: "default" leaves incremental at the process default; "on"/
        #: "off" pin it (the repair-incremental phase measures the pair).
        incremental = (None if options.incremental == "default"
                       else options.incremental == "on")
        with telemetry.session("bench:repair") as tel:
            result = repair_program(program, args,
                                    algorithm=options.detector,
                                    reuse_trace=replay,
                                    incremental=incremental)
        source = result.repaired_source
        counters = tel.counters.as_dict()
        record = {
            "wall_time_s": _session_wall_s(tel),
            "repair_time_s": result.repair_time_s,
            "detection_time_s": result.detection_time_s,
            "iterations": len(result.iterations),
            "races": result.total_races_found,
            "finishes_inserted": result.inserted_finish_count,
            "converged": result.converged,
            "replayed_detections": sum(
                it.detection.replayed for it in result.iterations)
            + result.final_detection.replayed,
            "phases": _session_phases(tel),
            "incremental_counters": {
                name: value for name, value in sorted(counters.items())
                if name.startswith("incremental.")
                or name == "repair.replay_fallbacks"},
            "repaired_sha256": hashlib.sha256(
                source.encode("utf-8")).hexdigest(),
        }
        print(json.dumps(record))
        return 0
    if options.phase == "arraycore":
        from repro.lang import strip_finishes
        from repro.races import detect_races

        core, numpy_env = CORE_CELLS[options.core]
        os.environ["REPRO_NUMPY"] = numpy_env
        spec = get_benchmark(options.program)
        args = spec.test_args if options.args == "test" \
            else spec.repair_args
        program = strip_finishes(spec.parse())
        with telemetry.session("bench:arraycore") as tel:
            result = detect_races(program, args,
                                  algorithm=options.detector, core=core)
        # Normalized report signature (addresses renamed to first-seen
        # order): the driver requires all cells of one (program,
        # detector) pair to agree, making the bench a differential gate.
        names: dict = {}
        sig = []
        for race in result.report:
            owner = names.setdefault((race.addr[0], race.addr[1]),
                                     len(names))
            sig.append((race.kind,
                        (race.addr[0], owner) + tuple(race.addr[2:]),
                        race.source.index, race.sink.index,
                        race.source_task, race.sink_task))
        record = {"wall_time_s": _session_wall_s(tel),
                  "ops": result.execution.ops,
                  "monitored_accesses":
                      result.detector.monitored_accesses,
                  "races": result.race_count,
                  "dpst_nodes": result.dpst_node_count,
                  "report_sha256": hashlib.sha256(
                      repr(sig).encode("utf-8")).hexdigest(),
                  "phases": _session_phases(tel)}
        print(json.dumps(record))
        return 0
    spec = get_benchmark(options.program)
    args = spec.test_args if options.args == "test" else spec.repair_args
    program = spec.parse()
    if options.phase == "execute":
        from repro.runtime import run_program
        with telemetry.session("bench:execute") as tel:
            with telemetry.span("execute", engine=options.engine):
                result = run_program(program, args, engine=options.engine)
        record = {"wall_time_s": _session_wall_s(tel), "ops": result.ops,
                  "monitored_accesses": 0, "races": 0,
                  "phases": _session_phases(tel)}
    else:
        from repro.lang import strip_finishes
        from repro.races import detect_races
        # Detection is measured on the finish-stripped (racy) variant:
        # that is the program the repair loop actually runs the detector
        # on for the Table-1 experiments.
        program = strip_finishes(program)
        with telemetry.session("bench:detect") as tel:
            result = detect_races(program, args, algorithm=options.detector,
                                  engine=options.engine)
        detector = result.detector
        record = {"wall_time_s": _session_wall_s(tel),
                  "ops": result.execution.ops,
                  "monitored_accesses": getattr(detector,
                                                "monitored_accesses", 0),
                  "races": result.race_count,
                  "phases": _session_phases(tel)}
    print(json.dumps(record))
    return 0


def _run_cell(program: str, phase: str, engine: str, detector: str,
              args_kind: str, trials: int, replay: str = "off",
              incremental: str = "default") -> dict:
    """Best-of-N fresh-process runs of one benchmark cell."""
    # The repair-incremental phase is the repair pipeline with the
    # incremental knob pinned; the child only knows "repair".
    child_phase = "repair" if phase == "repair-incremental" else phase
    cmd = [sys.executable, os.path.abspath(__file__), "--_measure",
           "--program", program, "--phase", child_phase, "--engine", engine,
           "--detector", detector, "--args", args_kind, "--replay", replay,
           "--incremental", incremental]
    # Repair cells are ranked by the acceptance metric (the repair-loop
    # time after the initial detection); everything else by wall clock.
    metric = "repair_time_s" if child_phase == "repair" else "wall_time_s"
    best = None
    for _ in range(trials):
        out = subprocess.run(cmd, capture_output=True, text=True, check=True)
        record = json.loads(out.stdout.strip().splitlines()[-1])
        if best is None or record[metric] < best[metric]:
            best = record
    row = {"program": program, "phase": phase, "engine": engine,
           "detector": detector if phase != "execute" else None,
           "args": args_kind}
    if child_phase == "repair":
        row["replay"] = replay == "on"
        if phase == "repair-incremental":
            row["incremental"] = incremental == "on"
        best["repair_time_s"] = round(best["repair_time_s"], 4)
        best["detection_time_s"] = round(best["detection_time_s"], 4)
    row.update(best)
    wall = best["wall_time_s"]
    if "ops" in best:
        row["ops_per_sec"] = round(best["ops"] / wall) if wall > 0 else None
    row["wall_time_s"] = round(wall, 4)
    return row


def _run_core_cell(program: str, detector: str, core: str,
                   args_kind: str, trials: int) -> dict:
    """Best-of-N fresh-process detection runs of one core cell."""
    cmd = [sys.executable, os.path.abspath(__file__), "--_measure",
           "--program", program, "--phase", "arraycore",
           "--detector", detector, "--core", core, "--args", args_kind]
    best = None
    for _ in range(trials):
        out = subprocess.run(cmd, capture_output=True, text=True, check=True)
        record = json.loads(out.stdout.strip().splitlines()[-1])
        if best is None or record["wall_time_s"] < best["wall_time_s"]:
            best = record
    row = {"program": program, "phase": "arraycore", "detector": detector,
           "core": core, "args": args_kind}
    row.update(best)
    row["wall_time_s"] = round(row["wall_time_s"], 4)
    return row


def _run_batch_cell(workers: int, cache: str, args_kind: str,
                    trials: int) -> dict:
    """Best-of-N fresh-process batch runs at one (workers, cache) cell."""
    cmd = [sys.executable, os.path.abspath(__file__), "--_measure",
           "--phase", "batch", "--workers", str(workers), "--cache", cache,
           "--args", args_kind]
    best = None
    for _ in range(trials):
        out = subprocess.run(cmd, capture_output=True, text=True, check=True)
        record = json.loads(out.stdout.strip().splitlines()[-1])
        if best is None or record["wall_time_s"] < best["wall_time_s"]:
            best = record
    row = {"phase": "batch", "workers": workers, "cache": cache == "on"}
    row.update(best)
    row["wall_time_s"] = round(row["wall_time_s"], 4)
    return row


def _run_service_queue_cell(nodes: int, cache: str, args_kind: str,
                            trials: int) -> dict:
    """Best-of-N fresh-process queue drains at one (nodes, cache) cell."""
    cmd = [sys.executable, os.path.abspath(__file__), "--_measure",
           "--phase", "service-queue", "--nodes", str(nodes),
           "--cache", cache, "--args", args_kind]
    best = None
    for _ in range(trials):
        out = subprocess.run(cmd, capture_output=True, text=True, check=True)
        record = json.loads(out.stdout.strip().splitlines()[-1])
        if best is None or record["wall_time_s"] < best["wall_time_s"]:
            best = record
    row = {"phase": "service-queue", "nodes": nodes,
           "node_workers": QUEUE_NODE_WORKERS, "warm": cache == "on"}
    row.update(best)
    row["wall_time_s"] = round(row["wall_time_s"], 4)
    return row


def _service_queue_summary(rows: list) -> dict:
    """Node scaling and shared-cache effect for the queue tier, plus
    the cross-cell (and cross-phase, vs batch) result invariant."""
    cells = {}
    for row in rows:
        if row["phase"] != "service-queue":
            continue
        cells[(row["warm"], row["nodes"])] = row
    if not cells:
        return {}
    per_mode = {}
    for warm in (False, True):
        mode = {n: cells[(w, n)] for w, n in cells if w == warm}
        if not mode:
            continue
        base = mode.get(min(mode))
        per_mode["cache_warm" if warm else "cache_cold"] = {
            "jobs_per_sec": {str(n): row["jobs_per_sec"]
                             for n, row in sorted(mode.items())},
            "scaling_vs_1_node": {
                str(n): round(row["jobs_per_sec"] / base["jobs_per_sec"], 2)
                for n, row in sorted(mode.items())
                if base["jobs_per_sec"]},
        }
    warm_effect = {}
    for (warm, nodes), row in sorted(cells.items()):
        if not warm:
            continue
        cold = cells.get((False, nodes))
        if cold and cold["jobs_per_sec"]:
            warm_effect[str(nodes)] = round(
                row["jobs_per_sec"] / cold["jobs_per_sec"], 2)
    digests = {row["repaired_sha256"] for row in cells.values()}
    batch_digests = {row["repaired_sha256"] for row in rows
                     if row["phase"] == "batch"}
    sample = next(iter(cells.values()))
    return {"service_queue": {
        **per_mode,
        "warm_speedup_by_nodes": warm_effect,
        "cache_hits_warm": max((r["cache_hits"]
                                for r in cells.values() if r["warm"]),
                               default=0),
        "jobs": sample["jobs"],
        "node_workers": sample["node_workers"],
        "cpu_count": os.cpu_count(),
        "all_sources_match": len(digests) == 1,
        # The queue tier must answer exactly what the in-process pool
        # answers; None when the batch phase did not run this invocation.
        "matches_batch_phase": (len(digests | batch_digests) == 1)
        if batch_digests else None,
    }}


def _batch_summary(rows: list) -> dict:
    """Worker scaling and cache effect for the batch phase, plus the
    cross-cell repaired-source invariant the driver enforces."""
    cells = {}
    for row in rows:
        if row["phase"] != "batch":
            continue
        cells[(row["cache"], row["workers"])] = row
    if not cells:
        return {}
    per_mode = {}
    for cached in (False, True):
        mode = {w: cells[(cached, w)] for c, w in cells if c == cached}
        if not mode:
            continue
        base = mode.get(min(mode))
        per_mode["cache_on" if cached else "cache_off"] = {
            "jobs_per_sec": {str(w): row["jobs_per_sec"]
                             for w, row in sorted(mode.items())},
            "scaling_vs_1_worker": {
                str(w): round(row["jobs_per_sec"] / base["jobs_per_sec"], 2)
                for w, row in sorted(mode.items())
                if base["jobs_per_sec"]},
        }
    cache_effect = {}
    for (cached, workers), row in sorted(cells.items()):
        if not cached:
            continue
        off = cells.get((False, workers))
        if off and off["jobs_per_sec"]:
            cache_effect[str(workers)] = round(
                row["jobs_per_sec"] / off["jobs_per_sec"], 2)
    sample = next(iter(cells.values()))
    return {"batch": {
        **per_mode,
        "cache_speedup_by_workers": cache_effect,
        "cache_hits": max(r["cache_hits"] for r in cells.values()),
        "coalesced": max(r["coalesced"] for r in cells.values()),
        "jobs": sample["jobs"],
        "cpu_count": os.cpu_count(),
        "all_sources_match": len(
            {r["repaired_sha256"] for r in cells.values()}) == 1,
    }}


def _speedup_summary(rows: list) -> dict:
    """Median tree/compiled speedup per (phase, detector) configuration."""
    cells = {}
    for row in rows:
        if row["phase"] not in ("execute", "detect", "repair-incremental"):
            continue
        key = (row["program"], row["phase"], row["detector"])
        cells.setdefault(key, {})[row["engine"]] = row["wall_time_s"]
    ratios = {}
    for (program, phase, detector), times in sorted(cells.items()):
        if "tree" not in times or "compiled" not in times:
            continue
        if times["compiled"] <= 0:
            continue
        config = phase if detector is None else f"{phase}_{detector}"
        ratios.setdefault(config, {})[program] = round(
            times["tree"] / times["compiled"], 2)
    summary = {}
    for config, per_program in ratios.items():
        summary[config] = {
            "per_program_speedup": per_program,
            "median_speedup": round(
                statistics.median(per_program.values()), 2),
        }
    return summary


def _arraycore_summary(rows: list) -> dict:
    """Object-core vs array-core comparison per detector, plus the
    bit-identical-report invariant the driver enforces."""
    cells = {}
    for row in rows:
        if row["phase"] != "arraycore":
            continue
        key = (row["program"], row["detector"])
        cells.setdefault(key, {})[row["core"]] = row
    per_detector = {}
    for (program, detector), by_core in sorted(cells.items()):
        if "object" not in by_core:
            continue
        base = by_core["object"]["wall_time_s"]
        entry = {"object_ms": round(base * 1000.0, 1),
                 "reports_match": len({r["report_sha256"]
                                       for r in by_core.values()}) == 1}
        for core in ("array", "array-numpy"):
            row = by_core.get(core)
            if row and row["wall_time_s"] > 0:
                entry[f"{core}_ms"] = round(row["wall_time_s"] * 1000.0, 1)
                entry[f"{core}_speedup"] = round(
                    base / row["wall_time_s"], 2)
        per_detector.setdefault(detector, {})[program] = entry
    summary = {}
    for detector, per_program in per_detector.items():
        block = {"per_program": per_program,
                 "all_reports_match": all(e["reports_match"]
                                          for e in per_program.values())}
        for core in ("array", "array-numpy"):
            speedups = [e[f"{core}_speedup"]
                        for e in per_program.values()
                        if f"{core}_speedup" in e]
            if speedups:
                block[f"median_speedup_{core.replace('-', '_')}"] = \
                    round(statistics.median(speedups), 2)
        summary[f"arraycore_{detector}"] = block
    return summary


def _repair_summary(rows: list) -> dict:
    """Replay-off / replay-on comparison per (program, detector).

    Returns the summary dict and records two invariants the driver
    enforces: repaired sources must match between modes, and every
    multi-iteration workload must speed up.
    """
    cells = {}
    for row in rows:
        if row["phase"] != "repair":
            continue
        key = (row["program"], row["detector"])
        cells.setdefault(key, {})["on" if row["replay"] else "off"] = row
    per_detector = {}
    for (program, detector), modes in sorted(cells.items()):
        if "on" not in modes or "off" not in modes:
            continue
        on, off = modes["on"], modes["off"]
        entry = {
            "iterations": on["iterations"],
            "repair_time_off_s": off["repair_time_s"],
            "repair_time_on_s": on["repair_time_s"],
            "repair_speedup": round(
                off["repair_time_s"] / on["repair_time_s"], 2)
            if on["repair_time_s"] > 0 else None,
            "wall_speedup": round(
                off["wall_time_s"] / on["wall_time_s"], 2)
            if on["wall_time_s"] > 0 else None,
            "repaired_source_matches":
                on["repaired_sha256"] == off["repaired_sha256"],
        }
        per_detector.setdefault(detector, {})[program] = entry
    summary = {}
    for detector, per_program in per_detector.items():
        speedups = [e["repair_speedup"] for e in per_program.values()
                    if e["repair_speedup"] is not None]
        multi = {p: e["repair_speedup"] for p, e in per_program.items()
                 if e["iterations"] >= 2 and e["repair_speedup"] is not None}
        summary[f"repair_{detector}"] = {
            "per_program": per_program,
            "median_repair_speedup": round(statistics.median(speedups), 2)
            if speedups else None,
            "multi_iteration_repair_speedup": multi,
            "all_sources_match": all(
                e["repaired_source_matches"] for e in per_program.values()),
        }
    return summary


def _incremental_summary(rows: list) -> dict:
    """Incremental-on vs incremental-off (full replay) comparison per
    (program, detector), both modes replaying the recorded trace.

    The headline metric is the median per-iteration re-detection time
    — the ``replay`` span total divided by the number of replayed
    detections — because that is the work incremental re-detection
    shrinks; repair-loop wall time rides along.  The driver enforces
    that repaired sources match between modes.
    """
    cells = {}
    for row in rows:
        if row["phase"] != "repair-incremental":
            continue
        key = (row["program"], row["detector"])
        cells.setdefault(key, {})["on" if row["incremental"] else "off"] = row
    per_detector = {}
    for (program, detector), modes in sorted(cells.items()):
        if "on" not in modes or "off" not in modes:
            continue
        on, off = modes["on"], modes["off"]

        def per_iter(row):
            replays = row["replayed_detections"]
            return (row["phases"].get("replay", 0.0) / replays
                    if replays else None)

        redetect_on, redetect_off = per_iter(on), per_iter(off)
        counters = on.get("incremental_counters", {})
        total = counters.get("incremental.events_total", 0)
        window = counters.get("incremental.window_events", 0)
        entry = {
            "iterations": on["iterations"],
            "replayed_detections": on["replayed_detections"],
            "redetect_per_iter_off_ms": round(redetect_off * 1000.0, 3)
            if redetect_off is not None else None,
            "redetect_per_iter_on_ms": round(redetect_on * 1000.0, 3)
            if redetect_on is not None else None,
            "redetect_speedup": round(redetect_off / redetect_on, 2)
            if redetect_on and redetect_off is not None else None,
            "repair_speedup": round(
                off["repair_time_s"] / on["repair_time_s"], 2)
            if on["repair_time_s"] > 0 else None,
            "window_fraction": round(window / total, 4) if total else None,
            "incremental_hits": counters.get("incremental.hits", 0),
            "incremental_resumes": counters.get("incremental.resumes", 0),
            "incremental_fallbacks": counters.get(
                "incremental.fallbacks", 0),
            "checkpoints": counters.get("incremental.checkpoints", 0),
            "repaired_source_matches":
                on["repaired_sha256"] == off["repaired_sha256"],
        }
        per_detector.setdefault(detector, {})[program] = entry
    summary = {}
    for detector, per_program in per_detector.items():
        speedups = [e["redetect_speedup"] for e in per_program.values()
                    if e["redetect_speedup"] is not None]
        stress = [e["redetect_speedup"] for p, e in per_program.items()
                  if p.startswith("stress-")
                  and e["redetect_speedup"] is not None]
        summary[f"incremental_{detector}"] = {
            "per_program": per_program,
            "median_redetect_speedup": round(statistics.median(speedups), 2)
            if speedups else None,
            "median_redetect_speedup_stress": round(
                statistics.median(stress), 2) if stress else None,
            "all_sources_match": all(
                e["repaired_source_matches"] for e in per_program.values()),
        }
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny test inputs, 1 trial, no file written "
                             "unless --output is given (CI smoke mode)")
    parser.add_argument("--trials", type=int, default=None,
                        help="fresh-process runs per cell (default: 3, "
                             "or 1 with --quick)")
    parser.add_argument("--programs", nargs="*", default=None,
                        help="subset of benchmark names (default: all; "
                             "stress-* names select repair workloads)")
    parser.add_argument("--detectors", nargs="*", default=list(DETECTORS),
                        choices=DETECTORS, help="detectors to measure")
    parser.add_argument("--phases", nargs="*", default=list(PHASES),
                        choices=PHASES, help="phases to measure")
    parser.add_argument("--repair-detectors", nargs="*", default=["mrw"],
                        choices=DETECTORS,
                        help="detectors for the repair phase (default: mrw, "
                             "the paper's Table-2 configuration)")
    parser.add_argument("--output", default=None,
                        help="output JSON path (default: BENCH_pr9.json "
                             "next to the repo root; suppressed by --quick)")
    # Internal: one measurement in a fresh process.
    parser.add_argument("--_measure", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--program", help=argparse.SUPPRESS)
    parser.add_argument("--phase", help=argparse.SUPPRESS)
    parser.add_argument("--engine", help=argparse.SUPPRESS)
    parser.add_argument("--detector", help=argparse.SUPPRESS)
    parser.add_argument("--args", default="repair", help=argparse.SUPPRESS)
    parser.add_argument("--replay", default="off", help=argparse.SUPPRESS)
    parser.add_argument("--incremental", default="default",
                        help=argparse.SUPPRESS)
    parser.add_argument("--core", default="object", help=argparse.SUPPRESS)
    parser.add_argument("--workers", type=int, default=1,
                        help=argparse.SUPPRESS)
    parser.add_argument("--cache", default="off", help=argparse.SUPPRESS)
    parser.add_argument("--nodes", type=int, default=1,
                        help=argparse.SUPPRESS)
    options = parser.parse_args(argv)

    if options._measure:
        return _measure_child(options)

    trials = options.trials or (1 if options.quick else 3)
    args_kind = "test" if options.quick else "repair"
    selected = options.programs
    programs = [p for p in BENCHMARK_ORDER
                if selected is None or p in selected]
    repair_programs = programs + [p for p in STRESS_PROGRAMS
                                  if selected is None or p in selected]

    rows = []
    for program in programs:
        for phase in ("execute", "detect"):
            if phase not in options.phases:
                continue
            detectors = options.detectors if phase == "detect" else ["mrw"]
            for detector in detectors:
                for engine in ENGINES:
                    row = _run_cell(program, phase, engine, detector,
                                    args_kind, trials)
                    rows.append(row)
                    label = phase if phase == "execute" \
                        else f"{phase}[{detector}]"
                    print(f"{program:14s} {label:12s} {engine:8s} "
                          f"{row['wall_time_s'] * 1000:9.1f} ms  "
                          f"{row['ops_per_sec'] or 0:>12,} ops/s",
                          file=sys.stderr)
    if "arraycore" in options.phases:
        for program in programs:
            for detector in options.detectors:
                for core in CORE_CELLS:
                    row = _run_core_cell(program, detector, core,
                                         args_kind, trials)
                    rows.append(row)
                    print(f"{program:14s} arraycore[{detector}] "
                          f"{core:12s} "
                          f"{row['wall_time_s'] * 1000:9.1f} ms  "
                          f"{row['races']} race(s)",
                          file=sys.stderr)
    if "repair" in options.phases:
        for program in repair_programs:
            for detector in options.repair_detectors:
                for replay in ("off", "on"):
                    row = _run_cell(program, "repair", "compiled", detector,
                                    args_kind, trials, replay=replay)
                    rows.append(row)
                    print(f"{program:14s} repair[{detector}] "
                          f"replay={replay:3s} "
                          f"{row['wall_time_s'] * 1000:9.1f} ms wall  "
                          f"{row['repair_time_s'] * 1000:9.1f} ms repair  "
                          f"{row['iterations']} iter(s)",
                          file=sys.stderr)
    if "repair-incremental" in options.phases:
        for program in repair_programs:
            for detector in options.repair_detectors:
                for incremental in ("off", "on"):
                    row = _run_cell(program, "repair-incremental", "compiled",
                                    detector, args_kind, trials,
                                    replay="on", incremental=incremental)
                    rows.append(row)
                    counters = row.get("incremental_counters", {})
                    total = counters.get("incremental.events_total", 0)
                    window = counters.get("incremental.window_events", 0)
                    fraction = f"{window / total:.0%}" if total else "n/a"
                    print(f"{program:14s} repair-inc[{detector}] "
                          f"incremental={incremental:3s} "
                          f"{row['wall_time_s'] * 1000:9.1f} ms wall  "
                          f"{row['repair_time_s'] * 1000:9.1f} ms repair  "
                          f"{row['iterations']} iter(s)  "
                          f"window={fraction}",
                          file=sys.stderr)
    if "batch" in options.phases:
        for cache in ("off", "on"):
            for workers in BATCH_WORKERS:
                row = _run_batch_cell(workers, cache, args_kind, trials)
                rows.append(row)
                print(f"{'students':14s} batch cache={cache:3s} "
                      f"workers={workers}  "
                      f"{row['wall_time_s'] * 1000:9.1f} ms  "
                      f"{row['jobs_per_sec']:7.2f} jobs/s  "
                      f"hits={row['cache_hits']} "
                      f"coalesced={row['coalesced']}",
                      file=sys.stderr)
    if "service-queue" in options.phases:
        for cache in ("off", "on"):
            for nodes in QUEUE_NODES:
                row = _run_service_queue_cell(nodes, cache, args_kind,
                                              trials)
                rows.append(row)
                label = "warm" if cache == "on" else "cold"
                print(f"{'students':14s} service-queue cache={label:4s} "
                      f"nodes={nodes}  "
                      f"{row['wall_time_s'] * 1000:9.1f} ms  "
                      f"{row['jobs_per_sec']:7.2f} jobs/s  "
                      f"hits={row['cache_hits']}",
                      file=sys.stderr)

    summary = _speedup_summary(rows)
    summary.update(_arraycore_summary(rows))
    summary.update(_repair_summary(rows))
    summary.update(_incremental_summary(rows))
    summary.update(_batch_summary(rows))
    summary.update(_service_queue_summary(rows))
    document = {
        "meta": {
            "suite": "Table 1 (paper benchmark programs) plus stress-* "
                     "multi-iteration repair workloads; execute = original "
                     "program, detect/arraycore/repair = finish-stripped "
                     "(racy) variant as in the repair loop; arraycore = "
                     "object core vs array core (stdlib and numpy batch "
                     "filters) on the compiled engine; repair-incremental "
                     "= replay-on repair with incremental re-detection "
                     "off vs on; batch = the student "
                     "corpus (repro.bench.students) through the worker "
                     "pool at 1/2/4/8 workers, cache off/on; "
                     "service-queue = the same corpus through the "
                     "durable queue drained by 1/2 real node processes, "
                     "shared cache cold vs pre-warmed",
            "cpu_count": os.cpu_count(),
            "inputs": "test_args" if options.quick else
                      "repair_args (paper Table 1 repair sizes)",
            "trials": trials,
            "methodology": "best-of-N, one fresh Python process per "
                           "measurement; repair cells ranked by "
                           "repair_time_s (the post-detection repair loop); "
                           "wall_time_s and per-phase breakdowns come from "
                           "repro.telemetry sessions (the same spans "
                           "'repro profile' and the service /metrics "
                           "endpoint report); batch phases aggregate "
                           "per-job JobResult timings (ms summaries)",
            "engines": list(ENGINES),
            "python": sys.version.split()[0],
        },
        "rows": rows,
        "summary": summary,
    }
    failures = []
    for config, data in sorted(summary.items()):
        if "median_speedup" in data:
            print(f"median speedup (compiled vs tree) {config}: "
                  f"{data['median_speedup']}x", file=sys.stderr)
        if config.startswith("arraycore_"):
            print(f"median detect speedup (array core vs object core) "
                  f"{config}: stdlib="
                  f"{data.get('median_speedup_array')}x, numpy="
                  f"{data.get('median_speedup_array_numpy')}x",
                  file=sys.stderr)
            if not data["all_reports_match"]:
                failures.append(
                    f"{config}: array-core and object-core race "
                    "reports differ")
        if config.startswith("repair_"):
            print(f"median repair speedup (replay vs re-execution) "
                  f"{config}: {data['median_repair_speedup']}x; "
                  f"multi-iteration: "
                  f"{data['multi_iteration_repair_speedup']}",
                  file=sys.stderr)
            if not data["all_sources_match"]:
                failures.append(
                    f"{config}: replay and re-execution repaired "
                    "sources differ")
        if config.startswith("incremental_"):
            print(f"median re-detection speedup (incremental vs full "
                  f"replay) {config}: {data['median_redetect_speedup']}x; "
                  f"stress-* median: "
                  f"{data['median_redetect_speedup_stress']}x",
                  file=sys.stderr)
            if not data["all_sources_match"]:
                failures.append(
                    f"{config}: incremental and full-replay repaired "
                    "sources differ")
        if config == "batch":
            print(f"batch jobs/sec by workers (cache off): "
                  f"{data['cache_off']['jobs_per_sec']}; "
                  f"cache speedup: {data['cache_speedup_by_workers']} "
                  f"(cpu_count={data['cpu_count']})", file=sys.stderr)
            if not data["all_sources_match"]:
                failures.append(
                    "batch: repaired sources differ across "
                    "(workers, cache) cells")
        if config == "service_queue":
            print(f"service-queue jobs/sec by nodes (cold): "
                  f"{data['cache_cold']['jobs_per_sec']}; "
                  f"warm speedup: {data['warm_speedup_by_nodes']} "
                  f"(node_workers={data['node_workers']})",
                  file=sys.stderr)
            if not data["all_sources_match"]:
                failures.append(
                    "service-queue: repaired sources differ across "
                    "(nodes, cache) cells")
            if data["matches_batch_phase"] is False:
                failures.append(
                    "service-queue: queue-tier results differ from "
                    "the in-process batch phase")

    output = options.output
    if output is None and not options.quick:
        output = os.path.join(os.path.dirname(__file__), "..",
                              "BENCH_pr9.json")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.abspath(output)}", file=sys.stderr)
    else:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        print()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
