#!/usr/bin/env python
"""Engine benchmark: the Table-1 suite under both execution engines.

Measures, for every benchmark program, (a) a plain uninstrumented run
(``execute`` — the Table-3 baseline) and (b) full race detection
(``detect`` — execution + S-DPST construction + ESP-bags), under both
the tree-walking interpreter and the closure-compiled engine.

Methodology: every single timing runs in a *fresh* Python process (the
script re-invokes itself), so no measurement inherits allocator arenas,
GC history or interned objects from a previous one — same-process
back-to-back timings of allocation-heavy runs cross-contaminate by
10-20% depending on ordering.  Each (program, phase, engine, detector)
cell reports the best of ``--trials`` runs.

Usage::

    PYTHONPATH=src python scripts/bench.py               # full, writes BENCH_pr2.json
    PYTHONPATH=src python scripts/bench.py --quick       # tiny inputs, 1 trial, stdout only
    PYTHONPATH=src python scripts/bench.py --programs crypt fannkuch
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.suite import BENCHMARK_ORDER, get_benchmark  # noqa: E402

DETECTORS = ("mrw", "srw")
ENGINES = ("tree", "compiled")


def _measure_child(options: argparse.Namespace) -> int:
    """Run one measurement in this (fresh) process; print a JSON record."""
    spec = get_benchmark(options.program)
    args = spec.test_args if options.args == "test" else spec.repair_args
    program = spec.parse()
    if options.phase == "execute":
        from repro.runtime import run_program
        start = time.perf_counter()
        result = run_program(program, args, engine=options.engine)
        elapsed = time.perf_counter() - start
        record = {"wall_time_s": elapsed, "ops": result.ops,
                  "monitored_accesses": 0, "races": 0}
    else:
        from repro.lang import strip_finishes
        from repro.races import detect_races
        # Detection is measured on the finish-stripped (racy) variant:
        # that is the program the repair loop actually runs the detector
        # on for the Table-1 experiments.
        program = strip_finishes(program)
        start = time.perf_counter()
        result = detect_races(program, args, algorithm=options.detector,
                              engine=options.engine)
        elapsed = time.perf_counter() - start
        detector = result.detector
        record = {"wall_time_s": elapsed, "ops": result.execution.ops,
                  "monitored_accesses": getattr(detector,
                                                "monitored_accesses", 0),
                  "races": result.race_count}
    print(json.dumps(record))
    return 0


def _run_cell(program: str, phase: str, engine: str, detector: str,
              args_kind: str, trials: int) -> dict:
    """Best-of-N fresh-process runs of one benchmark cell."""
    cmd = [sys.executable, os.path.abspath(__file__), "--_measure",
           "--program", program, "--phase", phase, "--engine", engine,
           "--detector", detector, "--args", args_kind]
    best = None
    for _ in range(trials):
        out = subprocess.run(cmd, capture_output=True, text=True, check=True)
        record = json.loads(out.stdout.strip().splitlines()[-1])
        if best is None or record["wall_time_s"] < best["wall_time_s"]:
            best = record
    row = {"program": program, "phase": phase, "engine": engine,
           "detector": detector if phase == "detect" else None,
           "args": args_kind}
    row.update(best)
    wall = best["wall_time_s"]
    row["ops_per_sec"] = round(best["ops"] / wall) if wall > 0 else None
    row["wall_time_s"] = round(wall, 4)
    return row


def _speedup_summary(rows: list) -> dict:
    """Median tree/compiled speedup per (phase, detector) configuration."""
    cells = {}
    for row in rows:
        key = (row["program"], row["phase"], row["detector"])
        cells.setdefault(key, {})[row["engine"]] = row["wall_time_s"]
    ratios = {}
    for (program, phase, detector), times in sorted(cells.items()):
        if "tree" not in times or "compiled" not in times:
            continue
        if times["compiled"] <= 0:
            continue
        config = phase if detector is None else f"{phase}_{detector}"
        ratios.setdefault(config, {})[program] = round(
            times["tree"] / times["compiled"], 2)
    summary = {}
    for config, per_program in ratios.items():
        summary[config] = {
            "per_program_speedup": per_program,
            "median_speedup": round(
                statistics.median(per_program.values()), 2),
        }
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny test inputs, 1 trial, no file written "
                             "unless --output is given (CI smoke mode)")
    parser.add_argument("--trials", type=int, default=None,
                        help="fresh-process runs per cell (default: 3, "
                             "or 1 with --quick)")
    parser.add_argument("--programs", nargs="*", default=None,
                        help="subset of benchmark names (default: all)")
    parser.add_argument("--detectors", nargs="*", default=list(DETECTORS),
                        choices=DETECTORS, help="detectors to measure")
    parser.add_argument("--output", default=None,
                        help="output JSON path (default: BENCH_pr2.json "
                             "next to the repo root; suppressed by --quick)")
    # Internal: one measurement in a fresh process.
    parser.add_argument("--_measure", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--program", help=argparse.SUPPRESS)
    parser.add_argument("--phase", help=argparse.SUPPRESS)
    parser.add_argument("--engine", help=argparse.SUPPRESS)
    parser.add_argument("--detector", help=argparse.SUPPRESS)
    parser.add_argument("--args", default="repair", help=argparse.SUPPRESS)
    options = parser.parse_args(argv)

    if options._measure:
        return _measure_child(options)

    trials = options.trials or (1 if options.quick else 3)
    args_kind = "test" if options.quick else "repair"
    programs = options.programs or list(BENCHMARK_ORDER)

    rows = []
    for program in programs:
        for phase in ("execute", "detect"):
            detectors = options.detectors if phase == "detect" else ["mrw"]
            for detector in detectors:
                for engine in ENGINES:
                    row = _run_cell(program, phase, engine, detector,
                                    args_kind, trials)
                    rows.append(row)
                    label = phase if phase == "execute" \
                        else f"{phase}[{detector}]"
                    print(f"{program:14s} {label:12s} {engine:8s} "
                          f"{row['wall_time_s'] * 1000:9.1f} ms  "
                          f"{row['ops_per_sec'] or 0:>12,} ops/s",
                          file=sys.stderr)

    summary = _speedup_summary(rows)
    document = {
        "meta": {
            "suite": "Table 1 (paper benchmark programs); execute = "
                     "original program, detect = finish-stripped (racy) "
                     "variant as in the repair loop",
            "inputs": "test_args" if options.quick else
                      "repair_args (paper Table 1 repair sizes)",
            "trials": trials,
            "methodology": "best-of-N, one fresh Python process per "
                           "measurement",
            "engines": list(ENGINES),
            "python": sys.version.split()[0],
        },
        "rows": rows,
        "summary": summary,
    }
    for config, data in sorted(summary.items()):
        print(f"median speedup (compiled vs tree) {config}: "
              f"{data['median_speedup']}x", file=sys.stderr)

    output = options.output
    if output is None and not options.quick:
        output = os.path.join(os.path.dirname(__file__), "..",
                              "BENCH_pr2.json")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.abspath(output)}", file=sys.stderr)
    else:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
