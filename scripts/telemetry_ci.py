#!/usr/bin/env python
"""CI gate for the telemetry layer (DESIGN.md §9).

Two checks, both against a Table-1 program:

1. **Trace validity** — run ``repro profile <program> --trace-out`` in a
   fresh process (the same command a user would type), load the emitted
   Chrome ``trace_event`` document, run it through
   ``validate_chrome_trace``, and assert the pipeline phases the paper
   cares about (execute, dpst, detect, placement) all appear as spans.

2. **Overhead budget** — the enabled-telemetry policy is "harvest,
   don't instrument": per-access detector paths make zero telemetry
   calls, so a full detection under an active session must cost within
   ``--budget`` (default 5%) of a telemetry-off detection.  Measured
   min-of-N over **CPU time** (``time.process_time``) with interleaved
   on/off runs: shared CI runners routinely shift wall-clock minima by
   more than the budget (a wall-vs-wall null experiment on a loaded box
   showed ~3% between two identical configurations), while CPU time is
   immune to scheduler preemption and holds a sub-1% null.  An absolute
   grace floor additionally keeps sub-millisecond jitter from failing
   the relative check on fast machines.

Exit status 0 iff both checks pass.  Usage::

    PYTHONPATH=src python scripts/telemetry_ci.py \
        --program examples/mergesort_racy.hj --trace-out /tmp/trace.json
"""

import argparse
import json
import os
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import telemetry
from repro.lang import parse
from repro.races import detect_races

REQUIRED_SPANS = ("repair", "detect_races", "execute", "dpst", "detect",
                  "placement")


def check_trace(program: str, trace_out: str) -> int:
    """Run ``repro profile`` end to end and validate what it emitted."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "profile", program,
         "--trace-out", trace_out],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        print(f"FAIL: repro profile exited {proc.returncode}:\n"
              f"{proc.stderr}", file=sys.stderr)
        return 1
    with open(trace_out) as handle:
        doc = json.load(handle)
    problems = telemetry.validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"FAIL: invalid trace: {problem}", file=sys.stderr)
        return 1
    names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
    missing = [s for s in REQUIRED_SPANS if s not in names]
    if missing:
        print(f"FAIL: trace lacks pipeline spans {missing}; "
              f"has {sorted(names)}", file=sys.stderr)
        return 1
    print(f"ok: trace valid, {len(doc['traceEvents'])} events, "
          f"spans include {REQUIRED_SPANS}")
    return 0


def check_overhead(program: str, budget: float, rounds: int,
                   grace_s: float) -> int:
    """Min-of-N detection CPU time, telemetry session on vs off."""
    with open(program) as handle:
        tree = parse(handle.read())
    detect_races(tree)  # warm-up: imports, caches, allocator

    on, off = [], []
    for _ in range(rounds):
        start = time.process_time()
        detect_races(tree)
        off.append(time.process_time() - start)

        start = time.process_time()
        with telemetry.session("ci-overhead"):
            detect_races(tree)
        on.append(time.process_time() - start)

    best_off, best_on = min(off), min(on)
    overhead = (best_on - best_off) / best_off
    print(f"detect cpu: off={best_off * 1e3:.2f} ms  "
          f"on={best_on * 1e3:.2f} ms  overhead={overhead * 100:+.2f}% "
          f"(budget {budget * 100:.0f}%, min of {rounds})")
    if best_on - best_off <= grace_s:
        return 0  # below measurement noise, regardless of ratio
    if overhead > budget:
        print(f"FAIL: telemetry overhead {overhead * 100:.2f}% exceeds "
              f"{budget * 100:.0f}% budget", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--program",
                        default="examples/mergesort_racy.hj")
    parser.add_argument("--trace-out", default="/tmp/telemetry_ci.json")
    parser.add_argument("--budget", type=float, default=0.05,
                        help="max allowed relative overhead (default 5%%)")
    parser.add_argument("--rounds", type=int, default=7)
    parser.add_argument("--grace-ms", type=float, default=2.0,
                        help="absolute delta below which the relative "
                             "budget is not enforced")
    options = parser.parse_args(argv)

    failures = check_trace(options.program, options.trace_out)
    failures += check_overhead(options.program, options.budget,
                               options.rounds, options.grace_ms / 1e3)
    if failures:
        return 1
    print("telemetry CI gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
