#!/usr/bin/env python
"""CI gate: incremental re-detection must be bit-identical to full replay.

For every workload in the gate corpus — the multi-iteration ``stress-*``
repair workloads from ``scripts/bench.py`` plus the synthetic student
corpus — this script runs the full repair pipeline three ways under both
ESP-bags variants (``mrw`` and ``srw``):

* ``incremental`` — trace replay with incremental re-detection
  (checkpointed array-core replay, the PR-8 fast path),
* ``full-replay`` — trace replay re-scanning the whole trace,
* ``re-execute``  — no replay at all (every iteration re-runs the
  program).

Every configuration of one workload must produce the *same* result:

* byte-identical repaired source,
* the same per-iteration normalized race reports,
* the same placement decisions (graph sizes, costs, finish sets),
* the same convergence verdict (including "unrepairable").

Stride edge cases (``REPRO_CKPT_STRIDE=1`` and far beyond the trace
length) are additionally gated on the stress workloads — degenerate
checkpoint ladders must never change results, only speed.

Exit status is nonzero on the first mismatch, with a diff-style dump of
the disagreeing runs.  Run from the repo root::

    PYTHONPATH=src python scripts/incremental_ci.py
    PYTHONPATH=src python scripts/incremental_ci.py --skip-students  # faster
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.students import population_sources  # noqa: E402
from repro.errors import RepairError                 # noqa: E402
from repro.lang import parse                         # noqa: E402
from repro.repair import repair_program              # noqa: E402

DETECTORS = ("mrw", "srw")
#: (cell label, repair_program keyword overrides).
CELLS = (
    ("incremental", {"reuse_trace": True, "incremental": True}),
    ("full-replay", {"reuse_trace": True, "incremental": False}),
    ("re-execute", {"reuse_trace": False}),
)
#: stride overrides gated on the stress workloads (label, env value).
STRIDES = (("stride-1", "1"), ("stride-huge", "1000000"))
#: argument for every student-corpus entry point (matches the batch CI).
STUDENT_ARGS = (40,)


def _load_stress_programs():
    path = os.path.join(os.path.dirname(__file__), "bench.py")
    spec = importlib.util.spec_from_file_location("_bench_script", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.STRESS_PROGRAMS


def normalized_result(result) -> tuple:
    """A cross-run-comparable view of one repair: repaired source, the
    per-iteration race reports (addresses renamed to first-seen order,
    per report — re-execution allocates fresh heap ids every iteration
    while replay reuses the trace's) and the placement decisions."""
    iterations = []
    for it in result.iterations:
        names: dict = {}
        races = []
        for race in it.detection.report:
            owner = names.setdefault((race.addr[0], race.addr[1]),
                                     len(names))
            races.append((race.kind,
                          (race.addr[0], owner) + tuple(race.addr[2:]),
                          race.source.index, race.sink.index,
                          race.source_task, race.sink_task))
        placements = [(p.graph_size, p.edge_count, p.cost,
                       tuple(p.finishes)) for p in it.placements]
        iterations.append((tuple(races), tuple(placements)))
    return (result.converged, result.repaired_source, tuple(iterations))


def run_cell(source, args, detector, kwargs, env=None):
    """One repair configuration; RepairError is a comparable outcome."""
    old = {}
    for name, value in (env or {}).items():
        old[name] = os.environ.get(name)
        os.environ[name] = value
    try:
        result = repair_program(parse(source), args, algorithm=detector,
                                **kwargs)
        return normalized_result(result)
    except RepairError as exc:
        return ("unrepairable", str(exc))
    finally:
        for name, value in old.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def check_workload(label: str, source, args, detectors, verbose: bool,
                   strides: bool = False) -> list:
    failures = []
    for detector in detectors:
        outcomes = {cell: run_cell(source, args, detector, kwargs)
                    for cell, kwargs in CELLS}
        if strides:
            for cell, stride in STRIDES:
                outcomes[cell] = run_cell(
                    source, args, detector, CELLS[0][1],
                    env={"REPRO_CKPT_STRIDE": stride})
        baseline = outcomes["re-execute"]
        for cell, outcome in outcomes.items():
            if cell != "re-execute" and outcome != baseline:
                failures.append(
                    f"{label} [{detector}] {cell} != re-execute:\n"
                    f"  re-execute: {baseline!r}\n"
                    f"  {cell}: {outcome!r}")
        if verbose and not failures:
            state = ("unrepairable" if baseline[0] == "unrepairable"
                     else f"{len(baseline[2])} iteration(s)")
            print(f"  {label:32s} [{detector}] ok: {state}, "
                  f"{len(outcomes)} configuration(s) agree")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-students", action="store_true",
                        help="gate only the stress workloads")
    parser.add_argument("--detectors", nargs="*", default=list(DETECTORS),
                        choices=DETECTORS)
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print one line per workload")
    options = parser.parse_args(argv)

    failures = []
    checked = 0
    print("incremental differential gate: incremental vs full replay vs "
          "re-execution (repair pipeline)")
    stress = _load_stress_programs()
    print(f"stress workloads ({len(stress)}, with stride edge cases):")
    for name, (source, inputs) in stress.items():
        failures += check_workload(name, source, inputs["test"],
                                   options.detectors, options.verbose,
                                   strides=True)
        checked += 1
    if not options.skip_students:
        sources = population_sources()
        print(f"student corpus ({len(sources)}):")
        for name, source in sources:
            failures += check_workload(name, source, STUDENT_ARGS,
                                       options.detectors, options.verbose)
            checked += 1

    print(f"checked {checked} workload(s): {len(failures)} mismatch(es)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
