#!/usr/bin/env python
"""CI gate: the array detection core must be bit-identical to the object core.

For every workload in the gate corpus — the Table-1 benchmark programs
(finish-stripped, CI-sized inputs) plus the synthetic student corpus —
this script runs race detection under both detection cores and both
ESP-bags variants (``mrw`` and ``srw``), with the numpy batch filter
forced off (``REPRO_NUMPY=0``, the stdlib path) and forced on
(``REPRO_NUMPY=1``), and requires every configuration of one workload to
produce the *same normalized race report*:

* same races (kind, address, source/sink step indices, task labels),
* same race count and monitored-access count,
* same S-DPST node count.

Addresses are normalized to first-seen order before comparison (array
and struct ids are allocated from process-wide counters, so raw ids
differ between back-to-back runs of the same program).

Exit status is nonzero on the first mismatch, with a diff-style dump of
the disagreeing reports.  Run from the repo root::

    PYTHONPATH=src python scripts/arraycore_ci.py
    PYTHONPATH=src python scripts/arraycore_ci.py --skip-students  # faster
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.students import population_sources          # noqa: E402
from repro.bench.suite import BENCHMARK_ORDER, get_benchmark  # noqa: E402
from repro.lang import parse, strip_finishes                 # noqa: E402
from repro.races import detect_races                         # noqa: E402

DETECTORS = ("mrw", "srw")
#: (cell label, detect_races core argument, REPRO_NUMPY value).
CELLS = (
    ("object", "object", "0"),
    ("array-stdlib", "array", "0"),
    ("array-numpy", "array", "1"),
)
#: argument for every student-corpus entry point (matches the batch CI).
STUDENT_ARGS = (40,)


def normalized_report(result) -> tuple:
    """A cross-run-comparable view of one detection result.

    Mirrors the bench harness's arraycore digest: addresses renamed to
    first-seen order, races identified by (kind, address, source/sink
    step index, task labels).
    """
    names: dict = {}
    races = []
    for race in result.report:
        owner = names.setdefault((race.addr[0], race.addr[1]), len(names))
        races.append((race.kind,
                      (race.addr[0], owner) + tuple(race.addr[2:]),
                      race.source.index, race.sink.index,
                      race.source_task, race.sink_task))
    return (tuple(races),
            result.detector.monitored_accesses,
            result.dpst_node_count)


def check_workload(label: str, program, args, detectors,
                   verbose: bool) -> list:
    """Detect under every (detector, cell) configuration; return a list
    of mismatch descriptions (empty = the gate holds for this workload)."""
    failures = []
    for detector in detectors:
        reports = {}
        for cell, core, numpy_env in CELLS:
            os.environ["REPRO_NUMPY"] = numpy_env
            try:
                result = detect_races(program, args, algorithm=detector,
                                      core=core)
            finally:
                os.environ.pop("REPRO_NUMPY", None)
            reports[cell] = normalized_report(result)
        baseline = reports["object"]
        for cell, _, _ in CELLS[1:]:
            if reports[cell] != baseline:
                failures.append(
                    f"{label} [{detector}] {cell} != object:\n"
                    f"  object: {baseline!r}\n"
                    f"  {cell}: {reports[cell]!r}")
        if verbose and not failures:
            races, accesses, nodes = baseline
            print(f"  {label:32s} [{detector}] ok: {len(races)} race(s), "
                  f"{accesses} access(es), {nodes} node(s)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-students", action="store_true",
                        help="gate only the benchmark programs")
    parser.add_argument("--detectors", nargs="*", default=list(DETECTORS),
                        choices=DETECTORS)
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print one line per workload")
    options = parser.parse_args(argv)

    failures = []
    checked = 0
    print("arraycore differential gate: object core vs array core "
          "(stdlib + numpy batch filters)")
    print(f"benchmark programs ({len(BENCHMARK_ORDER)}):")
    for name in BENCHMARK_ORDER:
        spec = get_benchmark(name)
        program = strip_finishes(spec.parse())
        failures += check_workload(name, program, spec.test_args,
                                   options.detectors, options.verbose)
        checked += 1
    if not options.skip_students:
        sources = population_sources()
        print(f"student corpus ({len(sources)}):")
        for name, source in sources:
            program = parse(source, source_name=name)
            failures += check_workload(name, program, STUDENT_ARGS,
                                       options.detectors, options.verbose)
            checked += 1

    configs = len(options.detectors) * len(CELLS)
    print(f"checked {checked} workload(s) x {configs} configuration(s): "
          f"{len(failures)} mismatch(es)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
