#!/usr/bin/env python
"""CI gate for the durable queue tier (DESIGN.md §13).

The scenario the queue exists for, end to end, with a real fault:

1. Materialize a slice of the student corpus and run it through
   ``repro batch`` single-shot — the ground truth.
2. Submit the same corpus to a fresh queue (``repro queue submit``),
   start **two** node processes (``python -m repro.service.node``) with
   a short lease and a shared cache directory, and SIGKILL one of them
   as soon as it holds leases — no shutdown handler runs, the node
   simply vanishes mid-jobs.
3. Let the surviving node drain the queue: the dead node's leases
   expire and are re-claimed.

The gate then asserts the durability contract:

* **No loss** — every submitted job reaches ``done``; none stays
  queued/leased, none is ``failed`` or ``cancelled``.
* **Exactly once** — the queue holds exactly one result per job
  (``done == total``), completions are fenced, and the two nodes'
  completed counts sum to the job count.
* **Identical answers** — each job's result (status, payload, error;
  wall-clock fields excluded) is equal to the single-shot baseline's.

Exit status 0 iff every check passes.  Usage::

    PYTHONPATH=src python scripts/queue_ci.py --count 10 --lease 1.0
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.students import population_sources
from repro.service import JobQueue


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p)
    return env


def write_corpus(directory, count):
    os.makedirs(directory, exist_ok=True)
    paths = []
    for name, source in population_sources()[:count]:
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        paths.append(path)
    return paths


def strip_clocks(value):
    """Drop ``*_s`` (seconds) keys recursively: wall-clock measurements
    vary run to run; everything else must not."""
    if isinstance(value, dict):
        return {key: strip_clocks(inner) for key, inner in value.items()
                if not key.endswith("_s")}
    if isinstance(value, list):
        return [strip_clocks(inner) for inner in value]
    return value


def deterministic_payload(result_dict):
    return {key: strip_clocks(result_dict.get(key))
            for key in ("status", "kind", "source_name", "result", "error")}


def run_baseline(corpus_dir, workers):
    """``repro batch`` single-shot: source_name -> canonical payload."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "batch", corpus_dir,
         "--arg", "40", "--json", "--workers", str(workers)],
        capture_output=True, text=True, env=_env())
    if proc.returncode != 0:
        print(f"FAIL: baseline batch exited {proc.returncode}:\n"
              f"{proc.stderr}", file=sys.stderr)
        return None
    baseline = {}
    for line in proc.stdout.splitlines():
        if not line.strip():
            continue
        result = json.loads(line)
        baseline[result["source_name"]] = deterministic_payload(result)
    return baseline


def start_node(queue_path, cache_dir, node_id, workers, lease):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service.node",
         "--queue", queue_path, "--workers", str(workers),
         "--cache-dir", cache_dir, "--node-id", node_id,
         "--lease", str(lease)],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def run_gate(workdir, count, workers, lease, budget_s):
    corpus_dir = os.path.join(workdir, "corpus")
    queue_path = os.path.join(workdir, "queue.db")
    cache_dir = os.path.join(workdir, "cache")
    write_corpus(corpus_dir, count)

    baseline = run_baseline(corpus_dir, workers)
    if baseline is None:
        return 1
    if len(baseline) != count:
        print(f"FAIL: baseline produced {len(baseline)} results "
              f"for {count} programs", file=sys.stderr)
        return 1
    print(f"ok: baseline batch answered {len(baseline)} program(s)")

    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "queue", "submit", corpus_dir,
         "--arg", "40", "--queue", queue_path, "--json"],
        capture_output=True, text=True, env=_env())
    if proc.returncode != 0:
        print(f"FAIL: queue submit exited {proc.returncode}:\n"
              f"{proc.stderr}", file=sys.stderr)
        return 1
    submitted = json.loads(proc.stdout)
    batch_id, ids = submitted["batch_id"], submitted["ids"]
    print(f"ok: submitted {len(ids)} job(s) as {batch_id}")

    queue = JobQueue(queue_path, lease_s=lease)

    def victim_holds_leases():
        row = queue._conn().execute(
            "SELECT COUNT(*) AS n FROM jobs "
            "WHERE state = 'leased' AND lease_owner = 'victim'").fetchone()
        return int(row["n"]) > 0

    victim = start_node(queue_path, cache_dir, "victim", workers, lease)
    survivor = start_node(queue_path, cache_dir, "survivor", workers, lease)
    killed = False
    try:
        # SIGKILL the victim the moment it holds leases: mid-batch, no
        # cleanup, the fault the lease protocol absorbs.
        deadline = time.monotonic() + budget_s
        while time.monotonic() < deadline:
            if victim_holds_leases():
                victim.kill()
                killed = True
                break
            time.sleep(0.005)
        if not killed:
            print("FAIL: the victim node never leased a job",
                  file=sys.stderr)
            return 1
        victim.wait(timeout=30)
        print("ok: SIGKILLed the victim node mid-batch")

        try:
            survivor_log = survivor.communicate(
                timeout=max(1.0, deadline - time.monotonic()))[0]
        except subprocess.TimeoutExpired:
            survivor.kill()
            print("FAIL: surviving node did not drain the queue in "
                  f"{budget_s:.0f}s", file=sys.stderr)
            return 1
    finally:
        for node in (victim, survivor):
            if node.poll() is None:
                node.kill()
    if survivor.returncode != 0:
        print(f"FAIL: surviving node exited {survivor.returncode}:\n"
              f"{survivor_log}", file=sys.stderr)
        return 1

    failures = 0
    counts = queue.counts(batch_id)
    if counts["done"] != len(ids) or counts["failed"] \
            or counts["cancelled"] or counts["queued"] or counts["leased"]:
        print(f"FAIL: expected all {len(ids)} job(s) done exactly once, "
              f"got {counts}", file=sys.stderr)
        failures += 1
    else:
        print(f"ok: all {counts['done']} job(s) done, none lost, "
              f"duplicated, failed or cancelled")

    mismatched = 0
    for queue_id in ids:
        stored = queue.result(queue_id)
        if stored is None:
            print(f"FAIL: job {queue_id} has no stored result",
                  file=sys.stderr)
            failures += 1
            continue
        recovered = deterministic_payload(stored.to_dict())
        name = recovered["source_name"]
        if recovered != baseline.get(name):
            print(f"FAIL: {name}: crash-recovered result differs from "
                  f"the single-shot baseline", file=sys.stderr)
            mismatched += 1
    if mismatched:
        failures += mismatched
    else:
        print(f"ok: every recovered result identical to the baseline")
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="durable-queue CI gate: 2 nodes, 1 SIGKILL, 0 losses")
    parser.add_argument("--count", type=int, default=10,
                        help="corpus slice size (default 10)")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool workers per node (default 2)")
    parser.add_argument("--lease", type=float, default=1.0,
                        help="queue lease seconds (default 1.0; short so "
                             "the dead node's work is re-offered fast)")
    parser.add_argument("--budget", type=float, default=240.0,
                        help="overall drain budget in seconds")
    parser.add_argument("--workdir", default=None,
                        help="keep artifacts here instead of a temp dir")
    options = parser.parse_args(argv)

    workdir = options.workdir or tempfile.mkdtemp(prefix="queue-ci-")
    try:
        return run_gate(workdir, options.count, options.workers,
                        options.lease, options.budget)
    finally:
        if options.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
