#!/usr/bin/env python3
"""The Section 9 extensions: test-coverage analysis for repair inputs and
context-sensitive finishes.

Test-driven repair only covers what the test inputs exercise.  This
example shows:

1. the coverage analyzer flagging an input set that never spawns one of
   the asyncs (its races would go unrepaired), then passing once a second
   input is added;
2. multi-input repair over the adequate input set;
3. the context-sensitive pass specializing a call site whose context
   needs no synchronization, recovering parallelism that a single shared
   finish would forfeit.

Run:  python examples/coverage_and_context.py
"""

from repro import parse
from repro.races import detect_races
from repro.repair import measure_coverage, repair_for_inputs, repair_program
from repro.repair.context import contextualize, parallelism_gain

BRANCHY = """
var total = 0;

def main(n) {
    var a = new int[4];
    if (n > 100) {
        async { a[0] = n; }      // only spawns for large inputs!
        total = total + a[0];
    }
    async { a[1] = n; }
    total = total + a[1];
    print(total);
}
"""

CONDITIONAL = """
def produce(a, check) {
    async {
        var s = 0;
        for (var i = 0; i < 40; i = i + 1) { s = s + i; }
        a[0] = s;
    }
    if (check) {
        print(a[0]);             // races with the task only when checked
    }
}

def main() {
    var x = new int[1];
    produce(x, true);            // this context needs the join
    var y = new int[1];
    finish {
        produce(y, false);       // this one is joined by the caller
        var s = 0;
        for (var i = 0; i < 40; i = i + 1) { s = s + i; }
        print(s);
    }
    print(y[0]);
}
"""


def coverage_demo() -> None:
    print("=== test-coverage analysis (are these inputs enough?) ===")
    program = parse(BRANCHY)
    weak = [(5,)]
    report = measure_coverage(program, weak)
    print(f"inputs {weak}:")
    print(report.summary())
    print()

    adequate = [(5,), (200,)]
    report = measure_coverage(program, adequate)
    print(f"inputs {adequate}:")
    print(report.summary())
    assert report.is_adequate

    result = repair_for_inputs(program, adequate)
    print(result.summary())
    for args in adequate:
        assert detect_races(result.repaired, args).report.is_race_free
    print("repaired program race-free on every input: OK")
    print()


def context_demo() -> None:
    print("=== context-sensitive finishes ===")
    program = parse(CONDITIONAL)
    result = repair_program(program)
    print(result.summary())
    ctx = contextualize(result)
    print(ctx.summary())
    base, specialized = parallelism_gain(ctx)
    print(f"critical path: {base} -> {specialized} "
          f"({100 * (base - specialized) / base:.0f}% shorter)")
    assert detect_races(ctx.program).report.is_race_free
    print("specialized program still race-free: OK")


if __name__ == "__main__":
    coverage_demo()
    context_demo()
