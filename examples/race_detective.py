#!/usr/bin/env python3
"""SRW vs MRW ESP-bags: why the tool keeps every reader and writer.

Reproduces the Figure 7 discussion: with two parallel readers of ``x``
racing against one later writer, the original (single reader-writer)
ESP-bags reports only one of the two races, so a repair based on it fixes
only that race and a second detector run is needed.  The multiple
reader-writer variant reports both in one run.

Also demonstrates the scoping example of Figure 5: the two data races
A2 -> A4 and A3 -> A4 cannot be fixed by a finish enclosing only A2 and
A3 (that placement would violate lexical scoping), so the tool produces a
well-formed alternative.

Run:  python examples/race_detective.py
"""

from repro import parse
from repro.races import detect_races
from repro.repair import repair_program

FIGURE7 = """
var x = 0;

def main() {
    async { var a = x; print(a); }   // A1 reads x
    async { var b = x; print(b); }   // A2 reads x
    async { x = 1; }                 // A3 writes x
}
"""

FIGURE5 = """
var x = 0;
var y = 0;

def main(flag) {
    if (flag) {
        async { print("A1"); }       // A1
        async { x = 1; }             // A2
    }
    async { y = 2; }                 // A3
    async { print(x + y); }          // A4
}
"""


def main() -> None:
    program = parse(FIGURE7)
    print("=== Figure 7: two readers, one writer ===")
    for algorithm in ("srw", "mrw"):
        detection = detect_races(program, algorithm=algorithm)
        print(f"{algorithm.upper()} ESP-bags: {detection.report.summary()}")
        for race in detection.report:
            print(f"   {race.describe()}")
    print()

    print("=== repairing with each detector ===")
    for algorithm in ("srw", "mrw"):
        result = repair_program(program, algorithm=algorithm)
        runs = len(result.iterations) + 1  # + the confirming run
        print(f"{algorithm.upper()}: {result.summary()} "
              f"({runs} detector runs)")
    print()

    print("=== Figure 5: scoping constraints ===")
    program5 = parse(FIGURE5)
    detection = detect_races(program5, args=(True,))
    print(f"races: {detection.report.summary()}")
    result = repair_program(program5, args=(True,))
    print(result.summary())
    print(result.repaired_source)
    print("note: no finish wraps A2 and A3 without also enclosing A1 —")
    print("the placement respects the if-block scope, as required.")


if __name__ == "__main__":
    main()
