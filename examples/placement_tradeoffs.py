#!/usr/bin/env python3
"""The finish-placement trade-off example of Figures 3 and 4.

Six asyncs A..F with execution times 500, 10, 10, 400, 600, 500 and
dependences B->D, A->F, D->F.  Different finish placements satisfy the
dependences with very different critical path lengths; the dynamic
program of Section 5.2 finds the optimum.

This example reproduces the paper's CPL table and then asks the DP and
the exhaustive oracle for the optimal placement.

Run:  python examples/placement_tradeoffs.py
"""

from repro.repair import (
    brute_force_placement,
    covers_all_edges,
    placement_cost,
    solve_placement,
)

# Nodes A..F, all asyncs (Figure 3).
TIMES = [500, 10, 10, 400, 600, 500]
IS_ASYNC = [True] * 6
NAMES = "ABCDEF"
# Dependences B->D, A->F, D->F as 0-based index pairs.
EDGES = [(1, 3), (0, 5), (3, 5)]


def show(intervals) -> str:
    """Render a placement the way Figure 4 does: ( A B ) C ( D ) E F."""
    parts = []
    for i in range(6):
        for s, e in intervals:
            if s == i:
                parts.append("(")
        parts.append(NAMES[i])
        for s, e in intervals:
            if e == i:
                parts.append(")")
    return " ".join(parts)


def main() -> None:
    print("Figure 4: candidate finish placements and their CPL")
    candidates = [
        [(0, 0), (1, 1), (3, 3)],     # ( A ) ( B ) C ( D ) E F
        [(0, 1), (3, 3)],             # ( A B ) C ( D ) E F
        [(0, 2), (3, 3)],             # ( A B C ) ( D ) E F
        [(0, 4), (1, 1)],             # ( A ( B ) C D E ) F
    ]
    for intervals in candidates:
        assert covers_all_edges(EDGES, intervals), intervals
        cost = placement_cost(TIMES, IS_ASYNC, intervals)
        print(f"  {show(intervals):34s} CPL = {cost}")

    solution = solve_placement(TIMES, IS_ASYNC, EDGES)
    print()
    print(f"Algorithm 1 (dynamic programming) optimum: "
          f"{show(solution.finishes)}  CPL = {solution.cost}")

    oracle = brute_force_placement(TIMES, IS_ASYNC, EDGES)
    print(f"Exhaustive search over laminar placements: "
          f"{show(list(oracle[1]))}  CPL = {oracle[0]}")
    assert solution.cost == oracle[0], "DP must match the oracle"
    print()
    print("The DP is optimal on this instance: OK")


if __name__ == "__main__":
    main()
