#!/usr/bin/env python3
"""Quickstart: repair the paper's Fibonacci example (Figures 8 and 15).

The program spawns two asyncs for the recursive calls but has no finish
statements, so the parent reads ``X.v + Y.v`` while the children may still
be writing — two data races per invocation.  The repair tool detects the
races on a test input, computes the optimal finish placement, and splices
``finish`` statements back into the source.

Run:  python examples/quickstart.py
"""

from repro import parse, repair_program
from repro.lang import serial_elision
from repro.runtime import run_program

SOURCE = """
struct BoxInteger { v }

def fib(ret, n) {
    if (n < 2) {
        ret.v = n;
        return;
    }
    var X = new BoxInteger();
    var Y = new BoxInteger();
    async fib(X, n - 1);   // Async1
    async fib(Y, n - 2);   // Async2
    ret.v = X.v + Y.v;
}

def main(n) {
    var result = new BoxInteger();
    async fib(result, n);  // Async0
    print("fib(", n, ") =", result.v);
}
"""


def main() -> None:
    program = parse(SOURCE)

    # One call does it all: detect -> place -> insert -> re-check.
    result = repair_program(program, args=(10,))

    print("=== repair summary ===")
    print(result.summary())
    for iteration in result.iterations:
        print(f"  iteration {iteration.index}: "
              f"{iteration.race_count} races, "
              f"{len(iteration.edits)} finish placement(s)")
    print()
    print("=== repaired program (compare with Figure 15 of the paper) ===")
    print(result.repaired_source)

    # The repaired program must behave exactly like the serial elision.
    repaired_out = run_program(result.repaired, args=(10,)).output
    elision_out = run_program(serial_elision(program), args=(10,)).output
    assert repaired_out == elision_out, (repaired_out, elision_out)
    print("=== output ===")
    print("\n".join(repaired_out))
    print()
    print("repaired output matches the serial elision: OK")


if __name__ == "__main__":
    main()
