#!/usr/bin/env python3
"""Automated grading of parallel-programming homework (Section 7.4).

The assignment: a quicksort with asyncs but no finishes; students insert
finish statements so no races remain and parallelism stays maximal.  The
grader compares each submission against the repair tool's own output:
still racy, over-synchronized (race-free but longer critical path), or
matched (race-free and equally parallel).

Run:  python examples/classroom_grading.py
"""

from repro.bench.students import (
    ASSIGNMENT,
    GRADING_INPUTS,
    Grade,
    grade_submission,
    synthesize_population,
    tool_reference,
)
from repro.lang import parse
from repro.repair import repair_for_inputs


def main() -> None:
    print("The assignment (no finish statements):")
    kernel = ASSIGNMENT[ASSIGNMENT.index("def quicksort"):]
    print(kernel)

    print("The grading key is the tool's own repair:")
    reference = tool_reference(GRADING_INPUTS)
    result = repair_for_inputs(parse(ASSIGNMENT), GRADING_INPUTS)
    print(f"  {result.summary()}")
    print()

    population = synthesize_population()
    counts = {grade: 0 for grade in Grade}
    for submission in population:
        grade = grade_submission(submission.parse(), reference,
                                 GRADING_INPUTS)
        counts[grade] += 1
        if submission.ident <= 6:  # show the first few gradings in detail
            print(f"submission #{submission.ident:02d} "
                  f"({submission.description}): {grade.value}")
    print("...")
    print()
    print(f"graded {len(population)} submissions "
          f"(paper: 59 = 5 racy + 29 over-synchronized + 25 matched):")
    print(f"  racy               : {counts[Grade.RACY]}")
    print(f"  over-synchronized  : {counts[Grade.OVER_SYNCHRONIZED]}")
    print(f"  matched            : {counts[Grade.MATCHED]}")


if __name__ == "__main__":
    main()
