#!/usr/bin/env python3
"""Repairing the sorting benchmarks and measuring what the repair costs.

Reproduces the Section 7.1 workflow on quicksort and mergesort (Figures 1
and 2 of the paper): strip all finish statements, repair on a small test
input, then compare sequential / original-parallel / repaired-parallel
simulated execution times on a larger input — the Figure 16 methodology.

Run:  python examples/sorting_repair.py
"""

from repro.bench import get_benchmark
from repro.graph import measure_program
from repro.lang import pretty, serial_elision, strip_finishes, synthetic_finishes
from repro.races import detect_races
from repro.repair import repair_program

PROCESSORS = 12
MEASURE_ARGS = (2000,)
REPAIR_ARGS = (200,)


def demo(name: str) -> None:
    spec = get_benchmark(name)
    original = spec.parse()
    buggy = strip_finishes(original)

    detection = detect_races(buggy, REPAIR_ARGS)
    print(f"--- {name} ---")
    print(f"stripped version: {detection.report.summary()}")

    result = repair_program(buggy, REPAIR_ARGS)
    print(f"repair: {result.summary()}")
    for finish in synthetic_finishes(result.repaired):
        print(f"  inserted finish at line {finish.line}")

    seq = measure_program(serial_elision(original), MEASURE_ARGS, 1)
    orig = measure_program(original, MEASURE_ARGS, PROCESSORS)
    rep = measure_program(result.repaired, MEASURE_ARGS, PROCESSORS)
    confirm = detect_races(result.repaired, REPAIR_ARGS)
    assert confirm.report.is_race_free

    print(f"simulated time, {MEASURE_ARGS[0]} elements, "
          f"{PROCESSORS} workers:")
    print(f"  sequential        : {seq.makespan:>10}")
    print(f"  original parallel : {orig.makespan:>10} "
          f"(speedup {seq.makespan / orig.makespan:.2f}x)")
    print(f"  repaired parallel : {rep.makespan:>10} "
          f"(speedup {seq.makespan / rep.makespan:.2f}x)")
    print()


def main() -> None:
    demo("quicksort")
    demo("mergesort")

    # Show the repaired mergesort kernel, Figure 1 style.
    spec = get_benchmark("mergesort")
    result = repair_program(strip_finishes(spec.parse()), (60,))
    source = pretty(result.repaired)
    kernel = source[source.index("def mergesort"):]
    print("repaired mergesort kernel (compare with Figure 1):")
    print(kernel[:kernel.index("def ", 5)])


if __name__ == "__main__":
    main()
