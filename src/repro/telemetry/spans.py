"""Nestable wall/CPU spans with a thread-safe in-process collector.

A *span* measures one pipeline phase: wall-clock (``perf_counter``) and
CPU time (``process_time``) between entry and exit, with arbitrary
JSON-serializable metadata.  Spans nest — a span opened while another is
open on the same thread becomes its child — so one run yields a tree
that mirrors the pipeline's phase structure (detect inside iteration
inside repair, and so on).

Collection is *session-scoped*: spans are recorded only while a
:class:`TelemetrySession` is active (installed with :func:`session` or
:meth:`TelemetrySession.install`).  With no active session, the
module-level :func:`span` returns a shared no-op object and
:func:`counter` returns immediately — one list truth-test each, no
allocation — so instrumentation points are safe to leave in production
code paths.  The per-access observer hot paths (``DpstBuilder.read`` /
``write``, the detector ``on_read``/``on_write``) are deliberately *not*
instrumented at all: counters for those are harvested once per phase
from aggregates the runtime already maintains (op counts, monitored
accesses, bag unions), so telemetry cost there is zero whether a session
is active or not.

Sessions stack (LIFO): the innermost active session collects.  Within a
session, each thread keeps its own open-span stack (``threading.local``)
and completed root spans are appended under a lock, so concurrent
threads — e.g. HTTP handler threads of the batch service — can record
spans into one session safely.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .counters import Counters

__all__ = [
    "Span",
    "TelemetrySession",
    "current_session",
    "session",
    "span",
    "counter",
]


class Span:
    """One completed (or in-flight) phase measurement."""

    __slots__ = ("name", "category", "meta", "children", "thread_id",
                 "start_s", "end_s", "cpu_start_s", "cpu_end_s", "error")

    def __init__(self, name: str, category: str,
                 meta: Optional[Dict[str, Any]] = None,
                 thread_id: int = 0) -> None:
        self.name = name
        self.category = category
        self.meta = meta or {}
        self.children: List["Span"] = []
        self.thread_id = thread_id
        #: wall-clock endpoints, in the owning session's timebase
        #: (``perf_counter`` seconds; the session records its origin so
        #: exporters can emit relative timestamps).
        self.start_s = 0.0
        self.end_s = 0.0
        self.cpu_start_s = 0.0
        self.cpu_end_s = 0.0
        #: True when the span body raised (the span still closed).
        self.error = False

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def cpu_s(self) -> float:
        return max(self.cpu_end_s - self.cpu_start_s, 0.0)

    @property
    def self_s(self) -> float:
        """Wall time not covered by child spans."""
        return max(self.duration_s
                   - sum(c.duration_s for c in self.children), 0.0)

    def annotate(self, **meta: Any) -> "Span":
        """Attach metadata after entry (chainable)."""
        self.meta.update(meta)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "category": self.category,
            "duration_s": round(self.duration_s, 9),
            "cpu_s": round(self.cpu_s, 9),
            "start_s": round(self.start_s, 9),
        }
        if self.meta:
            data["meta"] = dict(self.meta)
        if self.error:
            data["error"] = True
        if self.children:
            data["children"] = [c.to_dict() for c in self.children]
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_s * 1000:.3f} ms, "
                f"{len(self.children)} child(ren))")


class _NoopSpan:
    """Shared do-nothing span for the disabled path.

    One module-level instance is returned by every :func:`span` call made
    with no active session, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc: Any) -> bool:
        return False

    def annotate(self, **_meta: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    """Context manager that opens/closes one :class:`Span` in a session."""

    __slots__ = ("_session", "_span")

    def __init__(self, session_: "TelemetrySession", span_: Span) -> None:
        self._session = session_
        self._span = span_

    def __enter__(self) -> Span:
        self._session._open(self._span)
        self._span.start_s = time.perf_counter() - self._session.origin_s
        self._span.cpu_start_s = time.process_time()
        return self._span

    def __exit__(self, exc_type: Any, _exc: Any, _tb: Any) -> bool:
        # Close unconditionally: a phase that raises still records its
        # duration (flagged), and the open-span stack stays balanced.
        self._span.end_s = time.perf_counter() - self._session.origin_s
        self._span.cpu_end_s = time.process_time()
        if exc_type is not None:
            self._span.error = True
        self._session._close(self._span)
        return False


class TelemetrySession:
    """Collects the spans and counters of one run.

    Usually used through the module-level :func:`session` context
    manager; long-lived embedders (the batch service's ``run_job``) may
    ``install()``/``uninstall()`` explicitly.
    """

    def __init__(self, name: str = "run") -> None:
        self.name = name
        #: ``perf_counter`` value all span timestamps are relative to.
        self.origin_s = time.perf_counter()
        #: the same origin on the epoch clock, so exporters that join
        #: sessions from different processes (the distributed trace log)
        #: can place spans on one shared time axis.
        self.origin_epoch_s = time.time()
        self.counters = Counters()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[Span] = []

    # -- recording (called by _SpanHandle) -----------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span_: Span) -> None:
        stack = self._stack()
        span_.thread_id = threading.get_ident()
        if stack:
            stack[-1].children.append(span_)
        else:
            with self._lock:
                self._roots.append(span_)
        stack.append(span_)

    def _close(self, span_: Span) -> None:
        stack = self._stack()
        # Defensive: tolerate out-of-order exits instead of corrupting
        # the stack (can only happen with hand-driven handles).
        if span_ in stack:
            while stack and stack[-1] is not span_:
                stack.pop()
            if stack:
                stack.pop()

    # -- public API ----------------------------------------------------

    def span(self, name: str, category: str = "pipeline",
             **meta: Any) -> _SpanHandle:
        return _SpanHandle(self, Span(name, category, meta or None))

    def roots(self) -> List[Span]:
        """Completed (and in-flight) top-level spans, in start order."""
        with self._lock:
            return list(self._roots)

    def all_spans(self) -> List[Span]:
        spans: List[Span] = []
        for root in self.roots():
            spans.extend(root.walk())
        return spans

    def phase_totals(self) -> Dict[str, float]:
        """Total wall-clock seconds per span name, over the whole tree.

        This is the flat per-phase timing map recorded into
        ``JobResult.timings`` and printed by ``--timings``; nesting means
        the totals of a parent and its children overlap by design.
        """
        totals: Dict[str, float] = {}
        for span_ in self.all_spans():
            totals[span_.name] = totals.get(span_.name, 0.0) \
                + span_.duration_s
        return totals

    def install(self) -> "TelemetrySession":
        _active().append(self)
        return self

    def uninstall(self) -> None:
        active = _active()
        if self in active:
            active.remove(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TelemetrySession({self.name!r}, {len(self._roots)} root(s))"


# ----------------------------------------------------------------------
# The active-session stack
# ----------------------------------------------------------------------

# One stack per *process*; sessions are cheap and short-lived (one per
# CLI invocation or batch job).  The stack is only pushed/popped at
# session boundaries, so plain list operations are safe enough for the
# embedding patterns we support (workers install around one job at a
# time; the CLI installs once per command).
_ACTIVE: List[TelemetrySession] = []


def _active() -> List[TelemetrySession]:
    return _ACTIVE


def current_session() -> Optional[TelemetrySession]:
    """The innermost active session, or ``None`` (telemetry disabled)."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def session(name: str = "run") -> Iterator[TelemetrySession]:
    """Activate a fresh collecting session for the ``with`` body."""
    sess = TelemetrySession(name).install()
    try:
        yield sess
    finally:
        sess.uninstall()


def span(name: str, category: str = "pipeline", **meta: Any):
    """A span context manager in the current session, or a shared no-op.

    The disabled path is one truth test and returns a module singleton:
    zero allocations, so instrumentation points cost nothing when no
    session is active.
    """
    if not _ACTIVE:
        return NOOP_SPAN
    return _ACTIVE[-1].span(name, category, **meta)


def counter(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` in the current session (no-op when
    disabled).  Call this once per phase with harvested aggregates, never
    from per-access hot paths."""
    if not _ACTIVE:
        return
    _ACTIVE[-1].counters.inc(name, n)
