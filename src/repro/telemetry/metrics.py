"""Fleet-health metrics: fixed-bucket latency histograms + Prometheus.

The pool's ``/metrics`` has carried bounded sample rings (p50/p95/max
over the last N jobs) since PR 5.  Sample rings forget: a burst of slow
jobs an hour ago vanishes from the percentiles, and two nodes' rings
cannot be added together.  A :class:`Histogram` over **fixed log-spaced
buckets** fixes both — counts are exact over the whole uptime, merging
is element-wise addition, and the shape is precisely what Prometheus'
``histogram_quantile`` expects.

:func:`render_prometheus` turns the service's ``/metrics`` JSON snapshot
into the Prometheus text exposition format (version 0.0.4), so standard
scrapers point at ``GET /metrics?format=prometheus`` unchanged.
:func:`parse_prometheus` is the strict reader the tests and the
observability CI gate use to prove the exposition actually parses.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS_S",
    "Histogram",
    "render_prometheus",
    "parse_prometheus",
]

#: Fixed log-spaced latency bounds (seconds): 1-2.5-5 per decade from
#: 100 µs to 50 s.  Fixed — not adaptive — so histograms from any two
#: nodes, runs or versions are mergeable bucket-by-bucket.
DEFAULT_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 25.0, 50.0,
)


class Histogram:
    """A cumulative-bucket latency histogram (Prometheus semantics).

    ``counts[i]`` is the number of observations ``<= bounds[i]``;
    observations beyond the last bound only land in the implicit
    ``+Inf`` bucket (``count``).  Thread-safety is the caller's
    department — the pool mutates its histograms under the pool lock,
    like every other stat.
    """

    __slots__ = ("bounds", "counts", "count", "sum_s")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS_S) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.counts: List[int] = [0] * len(self.bounds)
        self.count = 0
        self.sum_s = 0.0

    def observe(self, value_s: float) -> None:
        value_s = max(float(value_s), 0.0)
        self.count += 1
        self.sum_s += value_s
        index = bisect_left(self.bounds, value_s)
        for i in range(index, len(self.counts)):
            self.counts[i] += 1

    def merge(self, other: "Histogram | Dict[str, Any]") -> None:
        """Element-wise addition (same bounds required)."""
        if isinstance(other, dict):
            other = Histogram.from_dict(other)
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum_s += other.sum_s

    def quantile(self, q: float) -> float:
        """An upper-bound estimate of the ``q``-quantile (the smallest
        bucket bound covering it); ``inf`` when it falls past the last
        bound, ``0.0`` when empty."""
        if not self.count:
            return 0.0
        target = math.ceil(q * self.count)
        for bound, cumulative in zip(self.bounds, self.counts):
            if cumulative >= target:
                return bound
        return math.inf

    def to_dict(self) -> Dict[str, Any]:
        return {
            "buckets": [[bound, count] for bound, count
                        in zip(self.bounds, self.counts)],
            "count": self.count,
            "sum_s": round(self.sum_s, 9),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        buckets = data.get("buckets") or []
        hist = cls([bound for bound, _count in buckets]
                   if buckets else DEFAULT_BUCKETS_S)
        for i, (_bound, count) in enumerate(buckets):
            hist.counts[i] = int(count)
        hist.count = int(data.get("count", 0))
        hist.sum_s = float(data.get("sum_s", 0.0))
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, sum_s={self.sum_s:.6f})"


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(*parts: str) -> str:
    """Join path components into a legal Prometheus metric name."""
    name = "_".join(_NAME_OK.sub("_", part).strip("_")
                    for part in parts if part)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _fmt(value: Any) -> str:
    number = float(value)
    if number == math.inf:
        return "+Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Exposition:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed: set = set()

    def add(self, name: str, value: Any, labels: Optional[Dict[str, Any]]
            = None, kind: str = "gauge", help_: Optional[str] = None
            ) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if kind == "histogram" and name.endswith(suffix):
                family = name[:-len(suffix)]
        if family not in self._typed:
            self._typed.add(family)
            if help_:
                self.lines.append(f"# HELP {family} {help_}")
            self.lines.append(f"# TYPE {family} {kind}")
        label_text = ""
        if labels:
            inner = ",".join(f'{_LABEL_OK.sub("_", str(k))}='
                             f'"{_escape_label(v)}"'
                             for k, v in sorted(labels.items()))
            label_text = "{" + inner + "}"
        self.lines.append(f"{name}{label_text} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _add_histogram(out: _Exposition, family: str,
                   labels: Dict[str, Any], data: Dict[str, Any],
                   help_: str) -> None:
    for bound, count in data.get("buckets", []):
        out.add(f"{family}_bucket", count,
                labels={**labels, "le": _fmt(bound)},
                kind="histogram", help_=help_)
    out.add(f"{family}_bucket", data.get("count", 0),
            labels={**labels, "le": "+Inf"}, kind="histogram", help_=help_)
    out.add(f"{family}_sum", data.get("sum_s", 0.0),
            labels=labels, kind="histogram", help_=help_)
    out.add(f"{family}_count", data.get("count", 0),
            labels=labels, kind="histogram", help_=help_)


def render_prometheus(metrics: Dict[str, Any],
                      namespace: str = "repro") -> str:
    """The service ``/metrics`` snapshot as Prometheus text exposition.

    Known sections get idiomatic shapes — per-phase histograms as native
    Prometheus histograms, ``by_status``/queue depth as labeled series —
    and every other numeric leaf is flattened to
    ``<namespace>_<path_to_leaf>`` so new counters surface without
    touching this renderer.
    """
    out = _Exposition()

    histograms = metrics.get("histograms") or {}
    for phase in sorted(histograms):
        _add_histogram(out, _metric_name(namespace, "phase_seconds"),
                       {"phase": phase}, histograms[phase],
                       help_="Per-phase job latency (seconds), fixed "
                             "log-spaced buckets.")

    jobs = metrics.get("jobs") or {}
    for status, count in sorted((jobs.get("by_status") or {}).items()):
        out.add(_metric_name(namespace, "jobs_by_status"), count,
                labels={"status": status},
                help_="Completed jobs by terminal status.")

    queue = metrics.get("queue") or {}
    for state, depth in sorted(queue.items()):
        if state == "total":
            continue
        out.add(_metric_name(namespace, "queue_depth"), depth,
                labels={"state": state},
                help_="Queue rows by state.")

    counters = metrics.get("counters") or {}
    for name in sorted(counters):
        out.add(_metric_name(namespace, "counter", name, "total"),
                counters[name], kind="counter",
                help_=None)

    skip = {"histograms", "phases", "counters"}
    flat_jobs = {k: v for k, v in jobs.items() if k != "by_status"}
    flat_queue: Dict[str, Any] = {}

    def flatten(prefix: Tuple[str, ...], value: Any) -> None:
        if isinstance(value, dict):
            for key in sorted(value):
                flatten(prefix + (str(key),), value[key])
        elif isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            out.add(_metric_name(namespace, *prefix), value)

    for section in sorted(metrics):
        if section in skip:
            continue
        value = metrics[section]
        if section == "jobs":
            value = flat_jobs
        elif section == "queue":
            value = flat_queue  # depths were emitted with labels above
        flatten((section,), value)
    return out.text()


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{([^}]*)\})?"
    r"\s+(-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN))"
    r"(\s+-?[0-9]+)?\s*$")
_LABEL_RE = re.compile(
    r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"((?:[^"\\]|\\.)*)"\s*(,|$)')


def parse_prometheus(text: str
                     ) -> List[Tuple[str, Dict[str, str], float]]:
    """A strict parser for the exposition subset we emit: returns
    ``(name, labels, value)`` samples, raising :class:`ValueError` with
    the offending line on any syntax error.  Exists so the tests and the
    CI gate can assert 'a standard scraper would accept this'."""
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: bad comment {line!r}")
            if parts[1] == "TYPE" and parts[3].split()[0] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: bad TYPE {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: bad sample {line!r}")
        name, _braced, label_text, value = match.group(1, 2, 3, 4)
        labels: Dict[str, str] = {}
        if label_text:
            position = 0
            while position < len(label_text):
                label_match = _LABEL_RE.match(label_text, position)
                if label_match is None:
                    raise ValueError(
                        f"line {lineno}: bad labels {label_text!r}")
                raw = label_match.group(2)
                labels[label_match.group(1)] = raw \
                    .replace("\\n", "\n").replace('\\"', '"') \
                    .replace("\\\\", "\\")
                position = label_match.end()
        if value == "+Inf":
            number = math.inf
        elif value == "-Inf":
            number = -math.inf
        elif value == "NaN":
            number = math.nan
        else:
            number = float(value)
        samples.append((name, labels, number))
    return samples
