"""Cheap monotonic counters for runtime and detector aggregates.

A :class:`Counters` set is a locked name → int map.  The intended feed
pattern is *harvest, don't instrument*: the runtime and the detectors
already maintain their own plain-int aggregates on the hot paths (the
interpreter's op count, ``EspBagsDetector.monitored_accesses``,
``BagManager.unions``, the S-DPST builder's node counter), and the phase
boundaries in :mod:`repro.races.detect` / :mod:`repro.races.replay` /
:mod:`repro.repair.engine` copy those totals into the active session's
counters once per phase.  The per-access observer path therefore makes
**zero** telemetry calls — enabled or not — which is what keeps tier-1
overhead negligible (see DESIGN.md, "Telemetry").

Canonical counter names used by the pipeline:

=============================  =========================================
``runtime.ops``                interpreter operations executed
``runtime.output_lines``       lines the program printed
``detector.monitored_accesses``  reads+writes the detector examined
``detector.races``             races recorded (post-dedup)
``detector.bag_unions``        union-find merges in the ESP-bags forest
``dpst.nodes``                 S-DPST nodes created
``replay.events``              control events replayed from the trace
``replay.accesses``            int-coded accesses replayed
``repair.iterations``          detect/place/edit rounds executed
``repair.edits``               finish insertion points applied
``repair.replay_fallbacks``    replays abandoned for re-execution
``incremental.checkpoints``    detector-state checkpoints captured
``incremental.hits``           replays served by the MRW fast path
``incremental.resumes``        replays resumed from a checkpoint (SRW)
``incremental.fallbacks``      incremental misses (full re-scan instead)
``incremental.window_events``  trace events actually re-scanned
``incremental.events_total``   trace events a full re-scan would cover
``incremental.rows_rechecked``   baseline race rows re-validated (MHP)
``incremental.rows_synthesized`` race rows added for split sink steps
``schedule.steps``             computation-graph steps scheduled
=============================  =========================================

The re-scanned window fraction of an incremental repair is
``incremental.window_events / incremental.events_total`` (0 for pure
fast-path repairs, which re-scan structure only, no accesses).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Mapping

__all__ = ["Counters"]


class Counters:
    """A thread-safe bag of monotonic named counters."""

    __slots__ = ("_values", "_lock")

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + n

    def set_max(self, name: str, value: int) -> None:
        """Record a high-water mark (keeps the larger of old and new)."""
        with self._lock:
            if value > self._values.get(name, 0):
                self._values[name] = value

    def merge(self, other: "Mapping[str, int] | Counters") -> None:
        """Add every counter of ``other`` (a mapping or another
        :class:`Counters`) into this set."""
        items = other.as_dict() if isinstance(other, Counters) else other
        with self._lock:
            for name, value in items.items():
                self._values[name] = self._values.get(name, 0) + value

    def get(self, name: str, default: int = 0) -> int:
        with self._lock:
            return self._values.get(name, default)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._values)

    def __getitem__(self, name: str) -> int:
        value = self.get(name, -1)
        if value < 0:
            raise KeyError(name)
        return value

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.as_dict()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.as_dict()!r})"
