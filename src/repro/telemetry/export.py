"""Renderers for a telemetry session: text, JSON, Chrome ``trace_event``.

The Chrome trace format (one JSON object with a ``traceEvents`` array of
complete-``"X"`` duration events, timestamps in microseconds) loads
directly into ``chrome://tracing`` and https://ui.perfetto.dev, which is
how the paper-style "where does the time go" questions get a visual
answer without any plotting dependency.

Two producers share the format:

* :func:`to_chrome_trace` — the span tree of a
  :class:`~repro.telemetry.spans.TelemetrySession` (one row per Python
  thread, spans nested by time);
* :func:`schedule_trace_events` — the simulated processor timeline of a
  :class:`~repro.graph.schedule.ScheduleResult` (one row per simulated
  processor, one slice per computation-graph step), which makes the
  T1/T∞/T_P placement of ``repro measure`` visually inspectable.

:func:`validate_chrome_trace` is the structural checker the test suite
and the CI trace-validation job run against emitted documents.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .spans import Span, TelemetrySession

__all__ = [
    "render_text",
    "to_json",
    "to_chrome_trace",
    "write_chrome_trace",
    "schedule_trace_events",
    "validate_chrome_trace",
    "percentile",
    "summarize_samples",
]


# ----------------------------------------------------------------------
# Sample statistics (shared by the pool's /metrics and the bench script)
# ----------------------------------------------------------------------

def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation; 0.0 if empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def summarize_samples(samples: Sequence[float]) -> Dict[str, Any]:
    """The histogram summary shape used everywhere a duration
    distribution is reported (``/metrics``, batch summaries, bench rows):
    count, total, and p50/p95/max in milliseconds."""
    if not samples:
        return {"count": 0, "total_s": 0.0, "mean_ms": 0.0,
                "p50_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0}
    total = sum(samples)
    return {
        "count": len(samples),
        "total_s": round(total, 6),
        "mean_ms": round(total / len(samples) * 1000, 3),
        "p50_ms": round(percentile(samples, 0.50) * 1000, 3),
        "p95_ms": round(percentile(samples, 0.95) * 1000, 3),
        "max_ms": round(max(samples) * 1000, 3),
    }


# ----------------------------------------------------------------------
# Text and JSON
# ----------------------------------------------------------------------

def _render_span(span_: Span, depth: int, lines: List[str]) -> None:
    flag = "  [raised]" if span_.error else ""
    meta = ""
    if span_.meta:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(span_.meta.items()))
        meta = f"  ({parts})"
    lines.append(f"{'  ' * depth}{span_.name:<{max(28 - 2 * depth, 8)}} "
                 f"{span_.duration_s * 1000:9.2f} ms wall  "
                 f"{span_.cpu_s * 1000:9.2f} ms cpu{meta}{flag}")
    for child in span_.children:
        _render_span(child, depth + 1, lines)


def render_text(session: TelemetrySession, title: Optional[str] = None
                ) -> str:
    """A human-readable phase tree plus the counter table."""
    lines: List[str] = [title or f"telemetry: {session.name}"]
    for root in session.roots():
        _render_span(root, 1, lines)
    counters = session.counters.as_dict()
    if counters:
        lines.append("  counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"    {name:<{width}}  {counters[name]:>14,}")
    return "\n".join(lines)


def to_json(session: TelemetrySession) -> Dict[str, Any]:
    """A plain-data view of the whole session (spans + counters)."""
    return {
        "session": session.name,
        "spans": [root.to_dict() for root in session.roots()],
        "phase_totals_s": {name: round(total, 9) for name, total
                           in sorted(session.phase_totals().items())},
        "counters": session.counters.as_dict(),
    }


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------

#: pid used for pipeline spans in emitted traces.  The real os.getpid()
#: would make traces non-deterministic across runs for no benefit — the
#: trace describes one logical process.
PIPELINE_PID = 1
#: pid used for the simulated-schedule rows (a second "process" so
#: Perfetto groups the processor timeline apart from the span tree).
SCHEDULE_PID = 2


def _span_events(span_: Span, pid: int, tid_of: Dict[int, int]
                 ) -> List[Dict[str, Any]]:
    tid = tid_of.setdefault(span_.thread_id, len(tid_of))
    args: Dict[str, Any] = dict(span_.meta)
    args["cpu_ms"] = round(span_.cpu_s * 1000, 3)
    if span_.error:
        args["error"] = True
    event = {
        "name": span_.name,
        "cat": span_.category,
        "ph": "X",
        "ts": round(span_.start_s * 1e6, 3),
        "dur": round(span_.duration_s * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "args": args,
    }
    events = [event]
    for child in span_.children:
        events.extend(_span_events(child, pid, tid_of))
    return events


def to_chrome_trace(session: TelemetrySession,
                    extra_events: Optional[List[Dict[str, Any]]] = None
                    ) -> Dict[str, Any]:
    """The session as a Chrome ``trace_event`` JSON document.

    ``extra_events`` (e.g. from :func:`schedule_trace_events`) are
    appended verbatim, letting one file carry both the pipeline spans and
    a simulated schedule.
    """
    tid_of: Dict[int, int] = {}
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": PIPELINE_PID, "tid": 0,
        "args": {"name": f"repro pipeline ({session.name})"},
    }]
    for root in session.roots():
        events.extend(_span_events(root, PIPELINE_PID, tid_of))
    end_ts = max((e["ts"] + e.get("dur", 0) for e in events
                  if e["ph"] == "X"), default=0.0)
    for name, value in sorted(session.counters.as_dict().items()):
        events.append({
            "name": name, "cat": "counters", "ph": "C",
            "ts": round(end_ts, 3), "pid": PIPELINE_PID, "tid": 0,
            "args": {"value": value},
        })
    if extra_events:
        events.extend(extra_events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro-telemetry",
            "session": session.name,
        },
    }


def write_chrome_trace(session: TelemetrySession, path: str,
                       extra_events: Optional[List[Dict[str, Any]]] = None
                       ) -> Dict[str, Any]:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the doc."""
    document = to_chrome_trace(session, extra_events=extra_events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return document


def schedule_trace_events(schedule: "ScheduleResult",
                          pid: int = SCHEDULE_PID) -> List[Dict[str, Any]]:
    """Trace events for a simulated greedy schedule, one row per
    processor.

    Requires a schedule produced with ``keep_timeline=True``
    (:func:`repro.graph.schedule.greedy_schedule`); simulated time units
    map 1:1 to trace microseconds.
    """
    timeline = getattr(schedule, "timeline", None)
    if timeline is None:
        raise ValueError(
            "schedule has no timeline; run greedy_schedule(..., "
            "keep_timeline=True) (or measure_program(..., "
            "keep_timeline=True)) to record one")
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": f"simulated schedule (P={schedule.processors}, "
                         f"T1={schedule.work}, Tinf={schedule.span}, "
                         f"TP={schedule.makespan})"},
    }]
    used = sorted({proc for _, proc, _, _ in timeline})
    for proc in used:
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": proc,
            "args": {"name": f"processor {proc}"},
        })
    for step, proc, start, end in timeline:
        events.append({
            "name": f"step {step}",
            "cat": "schedule",
            "ph": "X",
            "ts": float(start),
            "dur": float(end - start),
            "pid": pid,
            "tid": proc,
            "args": {"step": step, "cost": end - start},
        })
    return events


# ----------------------------------------------------------------------
# Validation (tests + CI)
# ----------------------------------------------------------------------

#: Known Trace Event Format phase letters (duration, complete, instant,
#: counter, async, flow, metadata, sample, object, memory-dump, mark).
_PHASES = frozenset("BEXiICPMSTFstfNODbnevR()")


def validate_chrome_trace(document: Any) -> List[str]:
    """Structural errors in a trace document (empty list = valid).

    Checks the subset of the Trace Event Format contract that
    ``chrome://tracing``/Perfetto require to load the file: a
    ``traceEvents`` array whose members have a string ``name``, a known
    ``ph``, numeric non-negative ``ts`` (and ``dur`` for ``X`` events),
    and int-or-string ``pid``/``tid``; ``args`` must be a JSON object
    when present — and the whole document must be JSON-serializable.
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return [f"document must be a JSON object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document must contain a 'traceEvents' array"]
    if not events:
        errors.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty 'name'")
        ph = event.get("ph")
        if not isinstance(ph, str) or ph not in _PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        if ph != "M":  # metadata events need no timestamp
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: bad 'ts' {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: bad 'dur' {dur!r}")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], (int, str)):
                errors.append(f"{where}: bad {key!r} {event[key]!r}")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
    try:
        json.dumps(document)
    except (TypeError, ValueError) as error:
        errors.append(f"document is not JSON-serializable: {error}")
    return errors
