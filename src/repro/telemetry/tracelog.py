"""Distributed tracing: trace contexts, per-node JSONL trace logs, merge.

PR 9 made the service multi-node; a job now travels *submit → queue →
node → pool worker → detect/repair phases* across several OS processes,
and the per-process :class:`~repro.telemetry.spans.TelemetrySession`
fragments that journey.  This module stitches it back together:

* A :class:`TraceContext` — a ``trace_id`` plus the current ``span_id``
  — is minted once at job submission and rides inside the
  :class:`~repro.service.jobs.Job` (and therefore through the queue's
  ``job_json`` rows, the pool's worker pipes, and ``JobResult``), so
  every span recorded anywhere in the fleet carries the job's identity.
* Each process appends *records* (completed spans and point events) to a
  per-node JSONL :class:`TraceLog`: schema-versioned, leveled, written
  with one ``O_APPEND`` write per record (atomic on POSIX — concurrent
  workers of one node share a log without interleaving lines) and
  rotated once the file exceeds a size cap.
* :func:`merge_trace_logs` joins the logs of N nodes into one Chrome
  ``trace_event`` document (one process lane per node, one thread lane
  per worker) that ``validate_chrome_trace`` accepts and Perfetto loads;
  :func:`trace_tree` / :func:`render_trace_tree` reconstruct a single
  job's cross-process span tree with per-hop latency.

Timebase: records carry *epoch* seconds (``time.time()``) so logs from
different processes and hosts merge on one axis.  NTP-class skew between
hosts shows up as small lane offsets, never as corruption — the tree is
linked by ids, not by timestamps.

Emission cost follows the telemetry policy (DESIGN.md §9): nothing is
written from per-access hot paths; spans are exported once per job, so
enabled tracing stays within the <5 % overhead budget enforced by
``scripts/observability_ci.py``.

Enable by environment — ``REPRO_TRACELOG=/path/node.jsonl`` (and
optionally ``REPRO_TRACELOG_LEVEL=debug|info|warn|error``,
``REPRO_NODE_ID=<lane name>``) — or per entry point with ``--trace-log``.
The env var is what forked pool workers inherit.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .spans import TelemetrySession

__all__ = [
    "TRACELOG_SCHEMA",
    "LEVELS",
    "TraceContext",
    "TraceLog",
    "get_tracelog",
    "set_tracelog",
    "read_records",
    "session_records",
    "merge_trace_logs",
    "trace_tree",
    "render_trace_tree",
    "new_id",
]

#: Version stamped on every record; readers skip records from the
#: future instead of misparsing them.
TRACELOG_SCHEMA = 1

#: Record severities, lowest to highest.  A log configured at ``info``
#: drops ``debug`` records at the emission site.
LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}

#: Rotation threshold: when an append would push the file past this,
#: the current file is renamed to ``<path>.1`` (one old generation is
#: kept) and a fresh file is started.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


def new_id() -> str:
    """A fresh 64-bit hex id (span ids; trace ids use two)."""
    return os.urandom(8).hex()


class TraceContext:
    """The portable identity of one traced job: ``trace_id`` names the
    whole journey, ``span_id`` names the sender's current span — the
    parent of whatever the receiver records next."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    @classmethod
    def mint(cls) -> "TraceContext":
        """A brand-new trace, minted at job submission."""
        return cls(os.urandom(16).hex(), new_id())

    def child(self) -> "TraceContext":
        """The context a callee should propagate onward: same trace,
        fresh span id."""
        return TraceContext(self.trace_id, new_id())

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Any) -> Optional["TraceContext"]:
        """Rehydrate; ``None`` for anything that is not a usable
        context (tolerant — tracing must never fail a job)."""
        if isinstance(data, TraceContext):
            return data
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not isinstance(trace_id, str) or not trace_id \
                or not isinstance(span_id, str) or not span_id:
            return None
        return cls(trace_id, span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id[:8]}…/{self.span_id[:8]}…)"


class TraceLog:
    """A per-node JSONL log of spans and events.

    Every record is one JSON object on one line::

        {"schema": 1, "kind": "span"|"event", "level": "info",
         "name": ..., "node": ..., "worker": <pid>,
         "trace_id": ..., "span_id": ..., "parent_id": ...,
         "ts_s": <epoch>, ["end_s": <epoch>,] "args": {...}}

    Appends open the file per record with ``O_APPEND`` and write the
    whole line in one ``os.write`` — atomic with respect to concurrent
    appenders (forked pool workers, several threads), so a node's
    processes may share one path.  Rotation renames the full file to
    ``<path>.1``; readers consume both generations.
    """

    def __init__(self, path: str, node: Optional[str] = None,
                 level: str = "info",
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown trace log level {level!r}; "
                             f"expected one of {', '.join(LEVELS)}")
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.path = path
        self.node = node or os.environ.get("REPRO_NODE_ID") \
            or f"pid-{os.getpid()}"
        self.level = level
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    # -- emission ------------------------------------------------------

    def _enabled(self, level: str) -> bool:
        return LEVELS.get(level, LEVELS["info"]) >= LEVELS[self.level]

    def span(self, name: str, start_s: float, end_s: float,
             trace_id: str, span_id: Optional[str] = None,
             parent_id: Optional[str] = None, level: str = "info",
             worker: Optional[int] = None,
             **args: Any) -> Optional[str]:
        """Record one completed span; returns its span id (``None``
        when filtered by level)."""
        if not self._enabled(level):
            return None
        span_id = span_id or new_id()
        self._append({
            "schema": TRACELOG_SCHEMA, "kind": "span", "level": level,
            "name": name, "node": self.node,
            "worker": worker if worker is not None else os.getpid(),
            "trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id,
            "ts_s": round(float(start_s), 6),
            "end_s": round(float(end_s), 6),
            "args": args,
        })
        return span_id

    def event(self, name: str, trace_id: Optional[str] = None,
              parent_id: Optional[str] = None, level: str = "info",
              ts_s: Optional[float] = None, worker: Optional[int] = None,
              **args: Any) -> None:
        """Record one point-in-time structured event."""
        if not self._enabled(level):
            return
        self._append({
            "schema": TRACELOG_SCHEMA, "kind": "event", "level": level,
            "name": name, "node": self.node,
            "worker": worker if worker is not None else os.getpid(),
            "trace_id": trace_id, "span_id": new_id(),
            "parent_id": parent_id,
            "ts_s": round(time.time() if ts_s is None else float(ts_s), 6),
            "args": args,
        })

    def session(self, tel: TelemetrySession, trace: TraceContext,
                **args: Any) -> int:
        """Export a whole telemetry session's span tree under ``trace``
        (the per-job path: the session's roots become children of the
        context's span).  Returns how many spans were written."""
        records = session_records(tel, trace, node=self.node, **args)
        written = 0
        for record in records:
            if not self._enabled(record["level"]):
                continue
            self._append(record)
            written += 1
        return written

    def _append(self, record: Dict[str, Any]) -> None:
        line = (json.dumps(record, sort_keys=True,
                           separators=(",", ":")) + "\n").encode("utf-8")
        with self._lock:
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = 0
            if size and size + len(line) > self.max_bytes:
                try:
                    os.replace(self.path, self.path + ".1")
                except OSError:  # pragma: no cover - racing rotators
                    pass
            try:
                fd = os.open(self.path,
                             os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            except OSError:  # pragma: no cover - unwritable path
                return
            try:
                os.write(fd, line)
            finally:
                os.close(fd)


# ----------------------------------------------------------------------
# The process-wide log (env-configured; inherited by forked workers)
# ----------------------------------------------------------------------

_CURRENT: Optional[Tuple[Tuple[int, str, str], TraceLog]] = None
_CURRENT_LOCK = threading.Lock()


def get_tracelog() -> Optional[TraceLog]:
    """The process's trace log per ``REPRO_TRACELOG``, or ``None``.

    Cached per (pid, path, level): a forked pool worker re-opens its own
    handle the first time it emits, and a changed env var takes effect
    on the next call.
    """
    global _CURRENT
    path = os.environ.get("REPRO_TRACELOG", "").strip()
    if not path:
        return None
    level = os.environ.get("REPRO_TRACELOG_LEVEL", "info").strip() or "info"
    if level not in LEVELS:
        level = "info"
    key = (os.getpid(), path, level)
    with _CURRENT_LOCK:
        if _CURRENT is not None and _CURRENT[0] == key:
            return _CURRENT[1]
        log = TraceLog(path, level=level)
        _CURRENT = (key, log)
        return log


def set_tracelog(path: Optional[str], node: Optional[str] = None) -> None:
    """Point this process (and every child it forks) at a trace log
    path — the ``--trace-log`` CLI plumbing.  ``None`` disables."""
    global _CURRENT
    with _CURRENT_LOCK:
        _CURRENT = None
    if path:
        os.environ["REPRO_TRACELOG"] = path
        if node:
            os.environ["REPRO_NODE_ID"] = node
    else:
        os.environ.pop("REPRO_TRACELOG", None)


# ----------------------------------------------------------------------
# Reading and exporting
# ----------------------------------------------------------------------

def read_records(path: str, include_rotated: bool = True
                 ) -> List[Dict[str, Any]]:
    """Parse one log (rotated generation first).  Unparsable lines — a
    torn tail after SIGKILL — and future-schema records are skipped, not
    fatal: a crashed node's log must still merge."""
    records: List[Dict[str, Any]] = []
    paths = ([path + ".1"] if include_rotated else []) + [path]
    for candidate in paths:
        try:
            with open(candidate, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("schema", TRACELOG_SCHEMA) > TRACELOG_SCHEMA:
                continue
            records.append(record)
    return records


def session_records(tel: TelemetrySession, trace: TraceContext,
                    node: Optional[str] = None,
                    worker: Optional[int] = None,
                    **extra_args: Any) -> List[Dict[str, Any]]:
    """A telemetry session's span tree as trace log records.

    Root spans become children of ``trace.span_id``; every span gets a
    fresh span id; wall-clock endpoints are mapped from the session's
    ``perf_counter`` timebase onto the epoch via ``origin_epoch_s``.
    """
    node = node or os.environ.get("REPRO_NODE_ID") or f"pid-{os.getpid()}"
    worker = os.getpid() if worker is None else worker
    origin = tel.origin_epoch_s
    records: List[Dict[str, Any]] = []
    stack = [(root, trace.span_id) for root in tel.roots()]
    while stack:
        span_, parent_id = stack.pop()
        span_id = new_id()
        args: Dict[str, Any] = dict(extra_args)
        args.update(span_.meta)
        args["cpu_ms"] = round(span_.cpu_s * 1000, 3)
        records.append({
            "schema": TRACELOG_SCHEMA, "kind": "span",
            "level": "error" if span_.error else "info",
            "name": span_.name, "node": node, "worker": worker,
            "trace_id": trace.trace_id, "span_id": span_id,
            "parent_id": parent_id,
            "ts_s": round(origin + span_.start_s, 6),
            "end_s": round(origin + span_.end_s, 6),
            "args": args,
        })
        for child in span_.children:
            stack.append((child, span_id))
    return records


def _record_times(record: Dict[str, Any]) -> Tuple[float, float]:
    start = float(record.get("ts_s") or 0.0)
    end = float(record.get("end_s") or start)
    return start, max(end, start)


def merge_trace_logs(sources: Sequence[Any]) -> Dict[str, Any]:
    """Join N per-node logs into one Chrome ``trace_event`` document.

    ``sources`` are paths or pre-read record lists.  Lanes: one trace
    *process* per node (named after it), one *thread* per worker pid
    within the node.  Spans become complete-``X`` events whose ``args``
    keep the trace/span/parent ids (Perfetto's query pane can then follow
    a job across lanes); events become instant-``i`` marks.  Timestamps
    are rebased to the earliest record so the trace starts at zero.
    """
    records: List[Dict[str, Any]] = []
    for source in sources:
        if isinstance(source, str):
            records.extend(read_records(source))
        else:
            records.extend(source)
    records.sort(key=lambda r: _record_times(r)[0])
    base = _record_times(records[0])[0] if records else 0.0

    pid_of: Dict[str, int] = {}
    tid_of: Dict[Tuple[str, Any], int] = {}
    events: List[Dict[str, Any]] = []
    for node in sorted({str(r.get("node", "?")) for r in records}):
        pid_of[node] = len(pid_of) + 1
        events.append({
            "name": "process_name", "ph": "M", "pid": pid_of[node],
            "tid": 0, "args": {"name": f"node {node}"}})
    for record in records:
        node = str(record.get("node", "?"))
        worker = record.get("worker", 0)
        lane = (node, worker)
        if lane not in tid_of:
            tid_of[lane] = len([k for k in tid_of if k[0] == node]) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid_of[node],
                "tid": tid_of[lane],
                "args": {"name": f"worker {worker}"}})
        start, end = _record_times(record)
        args = {key: value for key, value in (record.get("args") or {}).items()}
        for key in ("trace_id", "span_id", "parent_id", "level"):
            if record.get(key) is not None:
                args[key] = record[key]
        event: Dict[str, Any] = {
            "name": str(record.get("name", "?")),
            "cat": "trace" if record.get("kind") == "span" else "event",
            "ts": round((start - base) * 1e6, 3),
            "pid": pid_of[node], "tid": tid_of[lane],
            "args": args,
        }
        if record.get("kind") == "span":
            event["ph"] = "X"
            event["dur"] = round((end - start) * 1e6, 3)
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro-tracelog",
            "nodes": sorted(pid_of),
            "records": len(records),
        },
    }


# ----------------------------------------------------------------------
# Per-job span trees (``repro trace show``)
# ----------------------------------------------------------------------

def _matches(record: Dict[str, Any], selector: str) -> bool:
    trace_id = record.get("trace_id")
    if isinstance(trace_id, str) and trace_id.startswith(selector):
        return True
    args = record.get("args") or {}
    for key in ("queue_id", "job_id", "source_name", "job"):
        value = args.get(key)
        if value is None:
            continue
        if str(value) == selector:
            return True
        # Jobs are usually submitted by path; let the bare file name
        # select them too.
        if key in ("source_name", "job") \
                and os.path.basename(str(value)) == selector:
            return True
    return False


def trace_tree(records: Iterable[Dict[str, Any]], selector: str
               ) -> Tuple[Optional[str], List[Dict[str, Any]]]:
    """Resolve ``selector`` (a trace id / prefix, queue id, job id or
    source name) to one trace and build its span forest.

    Returns ``(trace_id, roots)`` where each root dict is the record
    plus a ``children`` list (sorted by start time).  Spans whose parent
    never made it to any log (e.g. a SIGKILL'd emitter) surface as extra
    roots rather than disappearing.
    """
    records = list(records)
    trace_ids = {r["trace_id"] for r in records
                 if r.get("trace_id") and _matches(r, selector)}
    if len(trace_ids) != 1:
        return None, []
    trace_id = trace_ids.pop()
    spans = [dict(r) for r in records
             if r.get("trace_id") == trace_id and r.get("kind") == "span"]
    by_id: Dict[str, Dict[str, Any]] = {}
    for span_ in spans:
        span_["children"] = []
        if span_.get("span_id"):
            by_id[span_["span_id"]] = span_
    roots: List[Dict[str, Any]] = []
    for span_ in spans:
        parent = by_id.get(span_.get("parent_id") or "")
        if parent is not None and parent is not span_:
            parent["children"].append(span_)
        else:
            roots.append(span_)
    key = lambda s: _record_times(s)[0]  # noqa: E731
    roots.sort(key=key)
    for span_ in spans:
        span_["children"].sort(key=key)
    return trace_id, roots


def render_trace_tree(trace_id: str, roots: List[Dict[str, Any]],
                      events: Optional[Iterable[Dict[str, Any]]] = None
                      ) -> str:
    """A human-readable cross-process span tree with per-hop latency.

    Each line shows where the span ran (node/worker), when it started
    relative to the trace, how long it took — and, for children, the
    *gap* since the parent started, which is exactly the per-hop wait
    (queue wait before lease, lease-to-dispatch, dispatch-to-phase...).
    """
    lines = [f"trace {trace_id}"]
    if not roots:
        return lines[0] + "\n  (no spans)"
    base = _record_times(roots[0])[0]

    def walk(span_: Dict[str, Any], depth: int, parent_start: float) -> None:
        start, end = _record_times(span_)
        where = f"{span_.get('node', '?')}/{span_.get('worker', '?')}"
        gap = ""
        if depth:
            gap = f"  (+{(start - parent_start) * 1000:.1f} ms after parent)"
        lines.append(
            f"  {'  ' * depth}{span_.get('name', '?'):<{max(30 - 2 * depth, 8)}}"
            f" @{(start - base) * 1000:9.1f} ms"
            f"  {(end - start) * 1000:9.2f} ms"
            f"  [{where}]{gap}")
        for child in span_["children"]:
            walk(child, depth + 1, start)

    for root in roots:
        walk(root, 0, base)
    for event in sorted(events or [], key=lambda r: _record_times(r)[0]):
        if event.get("trace_id") != trace_id \
                or event.get("kind") != "event":
            continue
        start, _ = _record_times(event)
        lines.append(f"  * {event.get('name', '?'):<28} "
                     f"@{(start - base) * 1000:9.1f} ms"
                     f"  [{event.get('node', '?')}]")
    return "\n".join(lines)
