"""Unified telemetry: pipeline spans, runtime counters, trace export.

A zero-dependency observability layer for the whole stack (see DESIGN.md
§9 "Telemetry"):

* :mod:`~repro.telemetry.spans` — nestable wall/CPU phase spans with a
  thread-safe session collector and a zero-allocation disabled path;
* :mod:`~repro.telemetry.counters` — monotonic counters harvested once
  per phase from aggregates the runtime already keeps (never fed from
  per-access hot paths);
* :mod:`~repro.telemetry.export` — text / JSON / Chrome ``trace_event``
  renderers, the simulated-schedule exporter, and the trace validator.

Typical use::

    from repro import telemetry

    with telemetry.session("profile") as tel:
        result = repair_program(program, args)
    print(telemetry.render_text(tel))
    telemetry.write_chrome_trace(tel, "trace.json")

Library code marks phases with ``telemetry.span("execute")`` and feeds
aggregates with ``telemetry.counter("runtime.ops", n)``; both are no-ops
(one truth test, no allocation) unless a session is active.
"""

from .counters import Counters
from .metrics import (
    DEFAULT_BUCKETS_S,
    Histogram,
    parse_prometheus,
    render_prometheus,
)
from .tracelog import (
    TRACELOG_SCHEMA,
    TraceContext,
    TraceLog,
    get_tracelog,
    merge_trace_logs,
    read_records,
    render_trace_tree,
    session_records,
    set_tracelog,
    trace_tree,
)
from .export import (
    PIPELINE_PID,
    SCHEDULE_PID,
    percentile,
    render_text,
    schedule_trace_events,
    summarize_samples,
    to_chrome_trace,
    to_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from .spans import (
    NOOP_SPAN,
    Span,
    TelemetrySession,
    counter,
    current_session,
    session,
    span,
)

__all__ = [
    "Counters",
    "DEFAULT_BUCKETS_S",
    "Histogram",
    "parse_prometheus",
    "render_prometheus",
    "TRACELOG_SCHEMA",
    "TraceContext",
    "TraceLog",
    "get_tracelog",
    "set_tracelog",
    "read_records",
    "session_records",
    "merge_trace_logs",
    "trace_tree",
    "render_trace_tree",
    "Span",
    "TelemetrySession",
    "NOOP_SPAN",
    "counter",
    "current_session",
    "session",
    "span",
    "render_text",
    "to_json",
    "to_chrome_trace",
    "write_chrome_trace",
    "schedule_trace_events",
    "validate_chrome_trace",
    "percentile",
    "summarize_samples",
    "PIPELINE_PID",
    "SCHEDULE_PID",
]
