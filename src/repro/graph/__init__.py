"""Computation graphs, critical-path analysis and simulated scheduling."""

from typing import Any, Sequence

from .. import telemetry
from ..dpst.builder import DpstBuilder
from ..lang import ast
from ..runtime.interpreter import Interpreter
from .computation import ComputationGraph, span_parts, subtree_completion
from .schedule import ScheduleResult, greedy_schedule

__all__ = [
    "ComputationGraph",
    "span_parts",
    "subtree_completion",
    "ScheduleResult",
    "greedy_schedule",
    "measure_program",
]


def measure_program(program: ast.Program, args: Sequence[Any] = (),
                    processors: int = 12, seed: int = 20140609,
                    max_ops: int = 200_000_000,
                    keep_timeline: bool = False) -> ScheduleResult:
    """Run a program, build its computation graph, and simulate P workers.

    Returns T1 (work == sequential time), T-infinity (CPL) and T_P for the
    greedy schedule — the quantities behind Figure 16.  With
    ``keep_timeline`` the result records each step's processor placement
    (see :func:`~repro.graph.schedule.greedy_schedule`).
    """
    with telemetry.span("measure", processors=processors):
        with telemetry.span("execute"):
            builder = DpstBuilder()
            Interpreter(program, builder, seed=seed, max_ops=max_ops
                        ).run(args)
        with telemetry.span("dpst"):
            dpst = builder.finish()
        with telemetry.span("graph"):
            graph = ComputationGraph.from_dpst(dpst)
        with telemetry.span("schedule"):
            schedule = greedy_schedule(graph, processors,
                                       keep_timeline=keep_timeline)
        telemetry.counter("schedule.steps", len(graph.order))
        telemetry.counter("dpst.nodes", builder.node_count())
    return schedule
