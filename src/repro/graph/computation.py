"""Computation graphs and span analysis over an S-DPST.

Two related views of one execution:

* :func:`span_parts` — per-subtree *(synchronous advance, completion
  time)* pairs.  These are the node execution times ``t_i`` used by the
  dynamic finish-placement DP (an async child contributes 0 synchronous
  advance; its completion is the span of its body).
* :class:`ComputationGraph` — the step-level DAG with continue, spawn and
  join edges, used for work/span/greedy-schedule measurements (the paper's
  Definition 1: critical path length == execution time on unboundedly many
  processors).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..dpst.nodes import ASYNC, FINISH, STEP, DpstNode
from ..dpst.tree import Dpst


def span_parts(node: DpstNode,
               cache: Dict[int, Tuple[int, int]] = None) -> Tuple[int, int]:
    """Return ``(sync_advance, completion)`` for a subtree, in cost units.

    ``sync_advance`` is how long the parent task is busy executing this
    child before moving on; ``completion`` is when the entire subtree
    (including spawned tasks) has finished, measured from the child's
    start.  For an async child the parent moves on immediately
    (``sync_advance == 0``); a finish child holds the parent until
    everything inside joins (``sync_advance == completion``).
    """
    if cache is None:
        cache = {}
    cached = cache.get(node.index)
    if cached is not None:
        return cached
    if node.kind == STEP:
        result = (node.cost, node.cost)
    else:
        clock = 0
        completion = 0
        for child in node.children:
            advance, child_completion = span_parts(child, cache)
            completion = max(completion, clock + child_completion)
            clock += advance
        completion = max(completion, clock)
        if node.kind == ASYNC:
            result = (0, completion)
        elif node.kind == FINISH:
            result = (completion, completion)
        else:  # scope (and the root main task behaves like a scope here)
            result = (clock, completion)
    cache[node.index] = result
    return result


def subtree_completion(node: DpstNode, cache=None) -> int:
    """Completion time (span) of the subtree rooted at ``node``."""
    return span_parts(node, cache)[1]


class ComputationGraph:
    """Step-level DAG of one execution.

    Nodes are S-DPST steps (identified by their DPST index); edges are the
    continue/spawn/join dependences implied by async/finish structure.
    Edge direction always goes forward in depth-first order, so the node
    list is already topologically sorted.
    """

    def __init__(self) -> None:
        self.order: List[int] = []           # topological node order
        self.cost: Dict[int, int] = {}
        self.preds: Dict[int, List[int]] = {}
        self.succs: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------

    @classmethod
    def from_dpst(cls, dpst: Dpst) -> "ComputationGraph":
        """Build the DAG by a structural walk of the tree."""
        graph = cls()
        graph._build(dpst.root, frozenset())
        return graph

    def _add_node(self, step: DpstNode, preds) -> None:
        idx = step.index
        self.order.append(idx)
        self.cost[idx] = step.cost
        self.preds[idx] = sorted(preds)
        self.succs.setdefault(idx, [])
        for p in preds:
            self.succs.setdefault(p, []).append(idx)

    def _build(self, node: DpstNode, entry_preds):
        """Process ``node``; returns ``(sync_preds, dangling)``.

        ``sync_preds`` are the predecessors for whatever synchronous
        computation follows the node in its parent; ``dangling`` are exit
        steps of tasks spawned inside that have not joined yet.
        """
        if node.kind == STEP:
            self._add_node(node, entry_preds)
            return frozenset((node.index,)), frozenset()

        if node.kind == ASYNC:
            sync, dangling = self._sequence(node.children, entry_preds)
            # The parent does not wait: its own frontier is unchanged, and
            # everything live inside the task dangles until some finish.
            return entry_preds, sync | dangling

        if node.kind == FINISH:
            sync, dangling = self._sequence(node.children, entry_preds)
            # Join: whatever follows waits for both the synchronous tail
            # and every spawned task inside.
            return sync | dangling, frozenset()

        # Scope nodes (and the root) are transparent sequences.
        return self._sequence(node.children, entry_preds)

    def _sequence(self, children, entry_preds):
        sync = entry_preds
        dangling = frozenset()
        for child in children:
            child_sync, child_dangling = self._build(child, sync)
            sync = child_sync
            dangling = dangling | child_dangling
        return sync, dangling

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.order)

    def work(self) -> int:
        """T1: total cost over all steps."""
        return sum(self.cost.values())

    def span(self) -> int:
        """T-infinity: the critical path length (Definition 1)."""
        finish_at: Dict[int, int] = {}
        longest = 0
        for idx in self.order:
            start = 0
            for p in self.preds[idx]:
                t = finish_at[p]
                if t > start:
                    start = t
            finish_at[idx] = start + self.cost[idx]
            if finish_at[idx] > longest:
                longest = finish_at[idx]
        return longest

    def critical_path(self) -> List[int]:
        """Step indices along one longest path, in execution order."""
        finish_at: Dict[int, int] = {}
        best_pred: Dict[int, int] = {}
        last = None
        longest = -1
        for idx in self.order:
            start, chosen = 0, None
            for p in self.preds[idx]:
                t = finish_at[p]
                if t > start:
                    start, chosen = t, p
            finish_at[idx] = start + self.cost[idx]
            if chosen is not None:
                best_pred[idx] = chosen
            if finish_at[idx] > longest:
                longest, last = finish_at[idx], idx
        path: List[int] = []
        while last is not None:
            path.append(last)
            last = best_pred.get(last)
        return list(reversed(path))
