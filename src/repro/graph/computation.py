"""Computation graphs and span analysis over an S-DPST.

Two related views of one execution:

* :func:`span_parts` — per-subtree *(synchronous advance, completion
  time)* pairs.  These are the node execution times ``t_i`` used by the
  dynamic finish-placement DP (an async child contributes 0 synchronous
  advance; its completion is the span of its body).
* :class:`ComputationGraph` — the step-level DAG with continue, spawn and
  join edges, used for work/span/greedy-schedule measurements (the paper's
  Definition 1: critical path length == execution time on unboundedly many
  processors).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..dpst.nodes import ASYNC, FINISH, STEP, DpstNode
from ..dpst.tree import Dpst


def span_parts(node: DpstNode,
               cache: Dict[int, Tuple[int, int]] = None) -> Tuple[int, int]:
    """Return ``(sync_advance, completion)`` for a subtree, in cost units.

    ``sync_advance`` is how long the parent task is busy executing this
    child before moving on; ``completion`` is when the entire subtree
    (including spawned tasks) has finished, measured from the child's
    start.  For an async child the parent moves on immediately
    (``sync_advance == 0``); a finish child holds the parent until
    everything inside joins (``sync_advance == completion``).
    """
    if cache is None:
        cache = {}
    root_cached = cache.get(node.index)
    if root_cached is not None:
        return root_cached
    # Explicit post-order stack: an S-DPST is as deep as the program's
    # dynamic nesting (recursive benchmarks reach tens of thousands of
    # levels), which Python recursion cannot cover even with a raised
    # limit.  Each entry is (node, child cursor).
    stack = [[node, 0]]
    while stack:
        top = stack[-1]
        current, cursor = top
        if current.kind == STEP:
            cache[current.index] = (current.cost, current.cost)
            stack.pop()
            continue
        children = current.children
        advanced = False
        count = len(children)
        while cursor < count:
            child = children[cursor]
            cursor += 1
            if child.index not in cache:
                top[1] = cursor
                stack.append([child, 0])
                advanced = True
                break
        if advanced:
            continue
        clock = 0
        completion = 0
        for child in children:
            advance, child_completion = cache[child.index]
            if clock + child_completion > completion:
                completion = clock + child_completion
            clock += advance
        if clock > completion:
            completion = clock
        if current.kind == ASYNC:
            result = (0, completion)
        elif current.kind == FINISH:
            result = (completion, completion)
        else:  # scope (and the root main task behaves like a scope here)
            result = (clock, completion)
        cache[current.index] = result
        stack.pop()
    return cache[node.index]


def subtree_completion(node: DpstNode, cache=None) -> int:
    """Completion time (span) of the subtree rooted at ``node``."""
    return span_parts(node, cache)[1]


class ComputationGraph:
    """Step-level DAG of one execution.

    Nodes are S-DPST steps (identified by their DPST index); edges are the
    continue/spawn/join dependences implied by async/finish structure.
    Edge direction always goes forward in depth-first order, so the node
    list is already topologically sorted.
    """

    def __init__(self) -> None:
        self.order: List[int] = []           # topological node order
        self.cost: Dict[int, int] = {}
        self.preds: Dict[int, List[int]] = {}
        self.succs: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------

    @classmethod
    def from_dpst(cls, dpst: Dpst) -> "ComputationGraph":
        """Build the DAG by a structural walk of the tree."""
        graph = cls()
        graph._build(dpst.root, frozenset())
        return graph

    def _add_node(self, step: DpstNode, preds) -> None:
        idx = step.index
        self.order.append(idx)
        self.cost[idx] = step.cost
        # Predecessor order is irrelevant to every consumer (longest-path
        # scans and the scheduler take maxima over the list), so skip the
        # per-node sort the original build paid.
        self.preds[idx] = list(preds)
        self.succs.setdefault(idx, [])
        for p in preds:
            self.succs.setdefault(p, []).append(idx)

    def _build(self, node: DpstNode, entry_preds):
        """Process ``node``; returns ``(sync_preds, dangling)``.

        ``sync_preds`` are the predecessors for whatever synchronous
        computation follows the node in its parent; ``dangling`` are exit
        steps of tasks spawned inside that have not joined yet.
        """
        if node.kind == STEP:
            self._add_node(node, entry_preds)
            return frozenset((node.index,)), frozenset()

        if node.kind == ASYNC:
            sync, dangling = self._sequence(node.children, entry_preds)
            # The parent does not wait: its own frontier is unchanged, and
            # everything live inside the task dangles until some finish.
            return entry_preds, sync | dangling

        if node.kind == FINISH:
            sync, dangling = self._sequence(node.children, entry_preds)
            # Join: whatever follows waits for both the synchronous tail
            # and every spawned task inside.
            return sync | dangling, frozenset()

        # Scope nodes (and the root) are transparent sequences.
        return self._sequence(node.children, entry_preds)

    def _sequence(self, children, entry_preds):
        sync = entry_preds
        dangling = frozenset()
        for child in children:
            child_sync, child_dangling = self._build(child, sync)
            sync = child_sync
            dangling = dangling | child_dangling
        return sync, dangling

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.order)

    def work(self) -> int:
        """T1: total cost over all steps."""
        return sum(self.cost.values())

    def _longest_path_scan(self) -> Tuple[int, Dict[int, int], int]:
        """One forward pass over the DAG shared by :meth:`span` and
        :meth:`critical_path`: returns ``(longest, best_pred, last)``
        where ``best_pred`` chains each node to the predecessor that
        determined its start time."""
        finish_at: Dict[int, int] = {}
        best_pred: Dict[int, int] = {}
        preds = self.preds
        cost = self.cost
        last = None
        longest = 0
        for idx in self.order:
            start, chosen = 0, None
            for p in preds[idx]:
                t = finish_at[p]
                if t > start:
                    start, chosen = t, p
            t = start + cost[idx]
            finish_at[idx] = t
            if chosen is not None:
                best_pred[idx] = chosen
            if t > longest or last is None:
                longest, last = t, idx
        return longest, best_pred, last

    def span(self) -> int:
        """T-infinity: the critical path length (Definition 1)."""
        return self._longest_path_scan()[0] if self.order else 0

    def critical_path(self) -> List[int]:
        """Step indices along one longest path, in execution order."""
        if not self.order:
            return []
        _, best_pred, last = self._longest_path_scan()
        path: List[int] = []
        while last is not None:
            path.append(last)
            last = best_pred.get(last)
        return list(reversed(path))
