"""Greedy list scheduling of a computation graph on P processors.

This replaces the paper's 12-core wall-clock measurements (Figure 16): we
simulate a greedy (work-conserving) scheduler, which by Brent's bound is
within a factor of two of optimal and models a work-stealing runtime well
enough to preserve the paper's sequential-vs-parallel shape.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from .computation import ComputationGraph


class ScheduleResult:
    """Outcome of simulating a P-processor execution."""

    def __init__(self, processors: int, makespan: int, work: int,
                 span: int) -> None:
        self.processors = processors
        #: simulated parallel execution time T_P
        self.makespan = makespan
        #: total work T_1
        self.work = work
        #: critical path length T_inf
        self.span = span

    @property
    def speedup(self) -> float:
        """T1 / TP — the speedup over sequential execution."""
        return self.work / self.makespan if self.makespan else 1.0

    @property
    def parallelism(self) -> float:
        """T1 / T_inf — the maximum available parallelism."""
        return self.work / self.span if self.span else 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScheduleResult(P={self.processors}, T_P={self.makespan}, "
                f"T1={self.work}, Tinf={self.span})")


def greedy_schedule(graph: ComputationGraph, processors: int) -> ScheduleResult:
    """Simulate greedy list scheduling; deterministic (ties by step index).

    At every moment each of the ``processors`` workers runs one ready step
    to completion (steps are the atomic units, as in the paper's model
    where only async/finish boundaries yield).
    """
    if processors <= 0:
        raise ValueError("processors must be positive")
    indegree: Dict[int, int] = {i: len(graph.preds[i]) for i in graph.order}
    ready: List[int] = [i for i in graph.order if indegree[i] == 0]
    heapq.heapify(ready)
    # (finish_time, step) for steps currently running.
    running: List = []
    clock = 0
    makespan = 0
    idle = processors
    while ready or running:
        while ready and idle > 0:
            step = heapq.heappop(ready)
            idle -= 1
            heapq.heappush(running, (clock + graph.cost[step], step))
        if not running:
            break  # all remaining steps have unsatisfied preds: impossible
        finish_time, step = heapq.heappop(running)
        clock = finish_time
        makespan = max(makespan, clock)
        idle += 1
        for succ in graph.succs.get(step, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, succ)
        # Drain everything else finishing at the same instant.
        while running and running[0][0] == clock:
            _, other = heapq.heappop(running)
            idle += 1
            for succ in graph.succs.get(other, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, succ)
    return ScheduleResult(processors, makespan, graph.work(), graph.span())
