"""Greedy list scheduling of a computation graph on P processors.

This replaces the paper's 12-core wall-clock measurements (Figure 16): we
simulate a greedy (work-conserving) scheduler, which by Brent's bound is
within a factor of two of optimal and models a work-stealing runtime well
enough to preserve the paper's sequential-vs-parallel shape.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from .computation import ComputationGraph


class ScheduleResult:
    """Outcome of simulating a P-processor execution."""

    def __init__(self, processors: int, makespan: int, work: int,
                 span: int,
                 timeline: Optional[List[Tuple[int, int, int, int]]] = None
                 ) -> None:
        self.processors = processors
        #: simulated parallel execution time T_P
        self.makespan = makespan
        #: total work T_1
        self.work = work
        #: critical path length T_inf
        self.span = span
        #: per-step placement ``(step, processor, start, end)`` in
        #: simulated time units, completion order — recorded only with
        #: ``keep_timeline=True`` (it is O(steps) memory).  The telemetry
        #: exporter renders it as a Chrome trace, one row per processor.
        self.timeline = timeline

    @property
    def speedup(self) -> float:
        """T1 / TP — the speedup over sequential execution."""
        return self.work / self.makespan if self.makespan else 1.0

    @property
    def parallelism(self) -> float:
        """T1 / T_inf — the maximum available parallelism."""
        return self.work / self.span if self.span else 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScheduleResult(P={self.processors}, T_P={self.makespan}, "
                f"T1={self.work}, Tinf={self.span})")


def greedy_schedule(graph: ComputationGraph, processors: int,
                    keep_timeline: bool = False) -> ScheduleResult:
    """Simulate greedy list scheduling; deterministic (ties by step index,
    assigned to the lowest-numbered free processor).

    At every moment each of the ``processors`` workers runs one ready step
    to completion (steps are the atomic units, as in the paper's model
    where only async/finish boundaries yield).  With ``keep_timeline`` the
    result also records every step's ``(step, processor, start, end)``
    placement — O(steps) memory, for the telemetry schedule exporter.
    """
    if processors <= 0:
        raise ValueError("processors must be positive")
    indegree: Dict[int, int] = {i: len(graph.preds[i]) for i in graph.order}
    ready: List[int] = [i for i in graph.order if indegree[i] == 0]
    heapq.heapify(ready)
    # (finish_time, step, processor, start_time) for running steps; the
    # heap orders by (finish_time, step), same tie-break as before the
    # processor/start fields were carried along.
    running: List = []
    free: List[int] = list(range(processors))
    timeline: Optional[List[Tuple[int, int, int, int]]] = \
        [] if keep_timeline else None
    clock = 0
    makespan = 0
    idle = processors

    def complete(entry) -> None:
        finish_time, step, proc, started = entry
        heapq.heappush(free, proc)
        if timeline is not None:
            timeline.append((step, proc, started, finish_time))
        for succ in graph.succs.get(step, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, succ)

    while ready or running:
        while ready and idle > 0:
            step = heapq.heappop(ready)
            idle -= 1
            proc = heapq.heappop(free)
            heapq.heappush(running,
                           (clock + graph.cost[step], step, proc, clock))
        if not running:
            break  # all remaining steps have unsatisfied preds: impossible
        entry = heapq.heappop(running)
        clock = entry[0]
        makespan = max(makespan, clock)
        idle += 1
        complete(entry)
        # Drain everything else finishing at the same instant.
        while running and running[0][0] == clock:
            idle += 1
            complete(heapq.heappop(running))
    return ScheduleResult(processors, makespan, graph.work(), graph.span(),
                          timeline=timeline)
