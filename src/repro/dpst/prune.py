"""S-DPST pruning (paper §9, future work).

Long-running programs build S-DPSTs that may not fit in memory; the
paper proposes garbage-collecting parts of the tree that exhibit no race
conditions.  :func:`prune_race_free` implements the offline variant:
given a tree and its race report, race-free subtrees collapse into
summary steps that preserve the subtree's exact timing signature
(synchronous advance and completion), so the pruned tree still supports
exact finish-placement computations for the remaining races.

Collapse rules (each provably timing-exact):

* a race-free *scope* whose completion equals its synchronous advance
  (no dangling tasks inside) becomes one step of that cost;
* a race-free *async* or *finish* keeps its root node — its kind governs
  how time composes with the parent — and its interior becomes one step
  whose cost is the body's completion time;
* anything containing a race endpoint, or a scope with dangling task
  time, is recursed into instead.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..graph.computation import span_parts
from .nodes import ASYNC, FINISH, SCOPE, STEP, DpstNode
from .tree import Dpst


def prune_race_free(tree: Dpst, report) -> int:
    """Collapse race-free subtrees into summary steps, in place.

    ``report`` is a :class:`~repro.races.report.RaceReport` (or any
    iterable of races with ``source``/``sink`` step nodes).  Returns the
    number of nodes removed.
    """
    keep: Set[int] = set()
    for race in report:
        for endpoint in (race.source, race.sink):
            node = endpoint
            while node is not None and node.index not in keep:
                keep.add(node.index)
                node = node.parent
    before = tree.node_count()
    cache: Dict[int, Tuple[int, int]] = {}

    def summary_step(parent: DpstNode, cost: int,
                     anchor: int) -> DpstNode:
        step = DpstNode(STEP, index=-1, parent=parent, anchor_nid=anchor)
        step.cost = cost
        if anchor is not None:
            step.anchors.append(anchor)
        step.label = "pruned"
        return step

    def visit(node: DpstNode) -> None:
        new_children = []
        for child in node.children:
            if child.index in keep:
                visit(child)
                new_children.append(child)
            elif child.kind == STEP or not child.children:
                new_children.append(child)
            elif child.kind == SCOPE:
                advance, completion = span_parts(child, cache)
                if advance == completion:
                    new_children.append(
                        summary_step(node, advance, child.anchor_nid))
                else:  # dangling task time inside: keep structure
                    visit(child)
                    new_children.append(child)
            else:  # race-free async or finish: collapse the interior
                assert child.kind in (ASYNC, FINISH)
                _, completion = span_parts(child, cache)
                anchor = (child.children[0].anchor_nid
                          if child.children else child.anchor_nid)
                child.children = [summary_step(child, completion, anchor)]
                new_children.append(child)
        node.children = new_children

    visit(tree.root)
    tree._renumber()
    return before - tree.node_count()
