"""Online construction of the S-DPST during a sequential execution.

The builder is an :class:`~repro.runtime.interpreter.ExecutionObserver`:
the interpreter drives it, and it in turn drives an optional race detector
(which needs to know the current task and step for every memory access).

Step nodes are created lazily — a step appears only when some cost or
memory access lands in it — so empty steps never clutter the tree, and
each step records the ids of the top-level statements it covers (its
*anchors*), which static finish placement later maps back to AST blocks.
"""

from __future__ import annotations

from typing import List, Optional

from ..lang import ast
from ..runtime.interpreter import ExecutionObserver
from .nodes import ASYNC, FINISH, SCOPE, STEP, DpstNode
from .tree import Dpst


class DetectorBase:
    """Interface the builder drives; race detectors implement this."""

    def task_begin(self, task: DpstNode) -> None:
        """A task (async, or the root main task) starts executing."""

    def task_end(self, task: DpstNode) -> None:
        """The task's body (and, depth-first, all its children) finished."""

    def finish_begin(self, finish: DpstNode) -> None:
        """A finish block starts."""

    def finish_end(self, finish: DpstNode) -> None:
        """A finish block ends; its tasks have joined."""

    def on_read(self, addr, task: DpstNode, step: DpstNode,
                node: ast.Node) -> None:
        """``step`` (owned by ``task``) read memory location ``addr``."""

    def on_write(self, addr, task: DpstNode, step: DpstNode,
                 node: ast.Node) -> None:
        """``step`` (owned by ``task``) wrote memory location ``addr``."""


class DpstBuilder(ExecutionObserver):
    """Builds the S-DPST and forwards access events to a detector."""

    def __init__(self, detector: Optional[DetectorBase] = None) -> None:
        self.detector = detector if detector is not None else DetectorBase()
        self._counter = 0
        self.root = DpstNode(ASYNC, index=0, parent=None)
        self.root.label = "main-task"
        self._stack: List[DpstNode] = [self.root]
        self._task_stack: List[DpstNode] = [self.root]
        self.current_step: Optional[DpstNode] = None
        self.current_anchor: Optional[int] = None
        self._anchor_stack: List[Optional[int]] = []
        self._finished = False
        # Per-access hot path: the detector callbacks are bound once here
        # instead of being re-resolved through two attribute loads on
        # every monitored read/write.
        self._on_read = self.detector.on_read
        self._on_write = self.detector.on_write
        self.detector.task_begin(self.root)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @property
    def current_task(self) -> DpstNode:
        """The innermost executing task (an async, or the root main task).

        Exposed for trace replay (:mod:`repro.races.replay`), which
        drives the builder's structural events but calls the detector
        directly for the per-access stream.
        """
        return self._task_stack[-1]

    def node_count(self) -> int:
        """Total S-DPST nodes created so far, including the root.

        Node indices are allocated densely in creation order, so this is
        an O(1) read — telemetry harvesting uses it instead of walking
        the finished tree.
        """
        return self._counter + 1

    def _new_node(self, kind: str, **kwargs) -> DpstNode:
        self._counter += 1
        parent = self._stack[-1]
        node = DpstNode(kind, index=self._counter, parent=parent, **kwargs)
        parent.add_child(node)
        return node

    def _close_step(self) -> None:
        self.current_step = None

    def ensure_step(self) -> DpstNode:
        """Return the current step, creating it lazily."""
        step = self.current_step
        if step is None:
            step = self._new_node(STEP, anchor_nid=self.current_anchor)
            if self.current_anchor is not None:
                step.anchors.append(self.current_anchor)
            self.current_step = step
        elif (self.current_anchor is not None
              and (not step.anchors or step.anchors[-1] != self.current_anchor)):
            step.anchors.append(self.current_anchor)
            step.anchor_nid = step.anchor_nid if step.anchor_nid is not None \
                else self.current_anchor
        return step

    def _push(self, node: DpstNode) -> None:
        self._close_step()
        self._stack.append(node)
        self._anchor_stack.append(self.current_anchor)
        self.current_anchor = None

    def _pop(self) -> DpstNode:
        self._close_step()
        node = self._stack.pop()
        self.current_anchor = self._anchor_stack.pop()
        return node

    # ------------------------------------------------------------------
    # ExecutionObserver interface
    # ------------------------------------------------------------------

    def at_statement(self, stmt_nid: int) -> None:
        self.current_anchor = stmt_nid

    def enter_async(self, stmt: ast.AsyncStmt) -> None:
        node = self._new_node(ASYNC, anchor_nid=stmt.nid,
                              block_nid=stmt.body.nid, construct_nid=stmt.nid)
        self._push(node)
        self._task_stack.append(node)
        self.detector.task_begin(node)

    def exit_async(self) -> None:
        node = self._pop()
        self._task_stack.pop()
        self.detector.task_end(node)

    def enter_finish(self, stmt: ast.FinishStmt) -> None:
        node = self._new_node(FINISH, anchor_nid=stmt.nid,
                              block_nid=stmt.body.nid, construct_nid=stmt.nid)
        self._push(node)
        self.detector.finish_begin(node)

    def exit_finish(self) -> None:
        node = self._pop()
        self.detector.finish_end(node)

    def enter_scope(self, kind: str, construct_nid: int,
                    block_nid: int) -> None:
        node = self._new_node(SCOPE, anchor_nid=self.current_anchor,
                              block_nid=block_nid, construct_nid=construct_nid,
                              scope_kind=kind)
        self._push(node)

    def exit_scope(self) -> None:
        self._pop()

    # The three per-access observer hooks below inline ensure_step()'s
    # fast path (current step exists, anchor already recorded): they are
    # called once per monitored access / cost flush and dominate the
    # instrumented run's overhead.

    def read(self, addr, node: ast.Node) -> None:
        step = self.current_step
        anchor = self.current_anchor
        if step is None:
            step = self.ensure_step()
        elif anchor is not None:
            anchors = step.anchors
            if not anchors or anchors[-1] != anchor:
                anchors.append(anchor)
                if step.anchor_nid is None:
                    step.anchor_nid = anchor
        self._on_read(addr, self._task_stack[-1], step, node)

    def write(self, addr, node: ast.Node) -> None:
        step = self.current_step
        anchor = self.current_anchor
        if step is None:
            step = self.ensure_step()
        elif anchor is not None:
            anchors = step.anchors
            if not anchors or anchors[-1] != anchor:
                anchors.append(anchor)
                if step.anchor_nid is None:
                    step.anchor_nid = anchor
        self._on_write(addr, self._task_stack[-1], step, node)

    def add_cost(self, units: int) -> None:
        step = self.current_step
        anchor = self.current_anchor
        if step is None:
            step = self.ensure_step()
        elif anchor is not None:
            anchors = step.anchors
            if not anchors or anchors[-1] != anchor:
                anchors.append(anchor)
                if step.anchor_nid is None:
                    step.anchor_nid = anchor
        step.cost += units

    # Fused entry points used by the compiled engine: exactly
    # ``add_cost(units)`` (when non-zero) followed by ``read``/``write``,
    # but with the step/anchor bookkeeping done once instead of twice and
    # one observer call instead of two.  Net effect on the S-DPST and the
    # detector is identical to the two-call sequence.

    def cost_read(self, units: int, addr, node: ast.Node) -> None:
        step = self.current_step
        anchor = self.current_anchor
        if step is None:
            # ensure_step() unrolled: build the step node in place.
            self._counter += 1
            parent = self._stack[-1]
            step = DpstNode(STEP, self._counter, parent, anchor_nid=anchor)
            if anchor is not None:
                step.anchors.append(anchor)
            parent.children.append(step)
            self.current_step = step
        elif anchor is not None:
            anchors = step.anchors
            if not anchors or anchors[-1] != anchor:
                anchors.append(anchor)
                if step.anchor_nid is None:
                    step.anchor_nid = anchor
        step.cost += units
        self._on_read(addr, self._task_stack[-1], step, node)

    def cost_write(self, units: int, addr, node: ast.Node) -> None:
        step = self.current_step
        anchor = self.current_anchor
        if step is None:
            self._counter += 1
            parent = self._stack[-1]
            step = DpstNode(STEP, self._counter, parent, anchor_nid=anchor)
            if anchor is not None:
                step.anchors.append(anchor)
            parent.children.append(step)
            self.current_step = step
        elif anchor is not None:
            anchors = step.anchors
            if not anchors or anchors[-1] != anchor:
                anchors.append(anchor)
                if step.anchor_nid is None:
                    step.anchor_nid = anchor
        step.cost += units
        self._on_write(addr, self._task_stack[-1], step, node)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finish(self) -> Dpst:
        """Close the main task and return the completed tree."""
        if not self._finished:
            self._finished = True
            self._close_step()
            self.detector.task_end(self.root)
        return Dpst(self.root)
