"""The S-DPST container: traversals, LCA queries, and the structural
operations the repair algorithms need (Definitions 3-5 and Theorem 1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import RepairError
from .nodes import ASYNC, FINISH, SCOPE, STEP, DpstNode


class Dpst:
    """A Scoped Dynamic Program Structure Tree for one execution."""

    def __init__(self, root: DpstNode) -> None:
        self.root = root

    # ------------------------------------------------------------------
    # Traversal and counting
    # ------------------------------------------------------------------

    def walk(self) -> Iterator[DpstNode]:
        """Preorder (== depth-first execution order) traversal."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def node_count(self) -> int:
        """Total number of S-DPST nodes (the Table 2 metric)."""
        return sum(1 for _ in self.walk())

    def steps(self) -> List[DpstNode]:
        return [n for n in self.walk() if n.kind == STEP]

    def counts_by_kind(self) -> dict:
        counts = {ASYNC: 0, FINISH: 0, SCOPE: 0, STEP: 0}
        for node in self.walk():
            counts[node.kind] += 1
        return counts

    # ------------------------------------------------------------------
    # LCA machinery
    # ------------------------------------------------------------------

    @staticmethod
    def lca(a: DpstNode, b: DpstNode) -> DpstNode:
        """Least common ancestor by the classic two-pointer walk."""
        while a.depth > b.depth:
            a = a.parent  # type: ignore[assignment]
        while b.depth > a.depth:
            b = b.parent  # type: ignore[assignment]
        while a is not b:
            a = a.parent  # type: ignore[assignment]
            b = b.parent  # type: ignore[assignment]
            if a is None or b is None:
                raise RepairError("nodes are not in the same S-DPST")
        return a

    @classmethod
    def ns_lca(cls, a: DpstNode, b: DpstNode) -> DpstNode:
        """Non-scope least common ancestor (Definition 4).

        The first non-scope node on the path from ``lca(a, b)`` to the
        root, inclusive.
        """
        node = cls.lca(a, b)
        while node.kind == SCOPE:
            if node.parent is None:
                raise RepairError("S-DPST root is a scope node")
            node = node.parent
        return node

    @staticmethod
    def non_scope_child_toward(ancestor: DpstNode,
                               descendant: DpstNode) -> DpstNode:
        """The non-scope child of ``ancestor`` on the path to ``descendant``
        (Definition 3): the unique non-scope node ``c`` on that path with
        only scope nodes strictly between ``ancestor`` and ``c``.
        """
        path: List[DpstNode] = []
        node: Optional[DpstNode] = descendant
        while node is not None and node is not ancestor:
            path.append(node)
            node = node.parent
        if node is None:
            raise RepairError(
                f"{ancestor.describe()} is not an ancestor of "
                f"{descendant.describe()}")
        for candidate in reversed(path):
            if candidate.kind != SCOPE:
                return candidate
        raise RepairError(
            f"no non-scope node between {ancestor.describe()} and "
            f"{descendant.describe()}")

    def non_scope_children(self, node: DpstNode) -> List[DpstNode]:
        """All non-scope children of ``node``, in left-to-right order.

        Scope children are transparent: their own non-scope children are
        flattened into the result (recursively).
        """
        result: List[DpstNode] = []
        stack = list(reversed(node.children))
        while stack:
            child = stack.pop()
            if child.kind == SCOPE:
                stack.extend(reversed(child.children))
            else:
                result.append(child)
        return result

    # ------------------------------------------------------------------
    # May-happen-in-parallel (Theorem 1)
    # ------------------------------------------------------------------

    @classmethod
    def may_happen_in_parallel(cls, s1: DpstNode, s2: DpstNode) -> bool:
        """True iff the two steps can execute in parallel.

        Theorem 1: with ``s1`` to the left of ``s2`` and ``N`` their
        NS-LCA, they are parallel iff the non-scope child of ``N`` that is
        an ancestor of ``s1`` is an async node.
        """
        if s1 is s2:
            return False
        if s1.index > s2.index:
            s1, s2 = s2, s1
        nslca = cls.ns_lca(s1, s2)
        if nslca is s1:
            # s1 is an ancestor of s2; an ancestor step cannot run in
            # parallel with its own descendants.
            return False
        toward = cls.non_scope_child_toward(nslca, s1)
        return toward.kind == ASYNC

    # ------------------------------------------------------------------
    # Structural edits (used to model repairs without re-execution)
    # ------------------------------------------------------------------

    def insert_finish_node(self, parent: DpstNode, start: int,
                           end: int) -> DpstNode:
        """Wrap ``parent.children[start..end]`` (inclusive) in a new finish
        node, mirroring Figure 14 of the paper.  Re-numbers the tree so
        ``index`` stays a valid DFS order.
        """
        if not (0 <= start <= end < len(parent.children)):
            raise RepairError(
                f"finish wrap [{start}, {end}] out of range for "
                f"{parent.describe()} with {len(parent.children)} children")
        wrapped = parent.children[start:end + 1]
        finish = DpstNode(FINISH, index=-1, parent=parent,
                          anchor_nid=wrapped[0].anchor_nid,
                          block_nid=parent.block_nid)
        finish.children = wrapped
        for child in wrapped:
            child.parent = finish
        parent.children[start:end + 1] = [finish]
        self._renumber()
        return finish

    def _renumber(self) -> None:
        for index, node in enumerate(self.walk()):
            node.index = index
            node.depth = 0 if node.parent is None else node.parent.depth + 1

    # ------------------------------------------------------------------
    # Rendering (debugging / golden tests)
    # ------------------------------------------------------------------

    def render(self, max_nodes: int = 200) -> str:
        """ASCII rendering of the tree, one node per line."""
        lines: List[str] = []
        count = 0

        def visit(node: DpstNode, indent: int) -> None:
            nonlocal count
            if count >= max_nodes:
                return
            count += 1
            extra = ""
            if node.kind == STEP:
                extra = f" cost={node.cost}"
            if node.label:
                extra += f" [{node.label}]"
            lines.append(f"{'  ' * indent}{node.describe()}{extra}")
            for child in node.children:
                visit(child, indent + 1)

        visit(self.root, 0)
        if count >= max_nodes:
            lines.append("  ...")
        return "\n".join(lines)


def path_between(ancestor: DpstNode,
                 descendant: DpstNode) -> Tuple[DpstNode, ...]:
    """The path ``ancestor -> ... -> descendant`` inclusive."""
    path: List[DpstNode] = []
    node: Optional[DpstNode] = descendant
    while node is not None:
        path.append(node)
        if node is ancestor:
            return tuple(reversed(path))
        node = node.parent
    raise RepairError("not an ancestor/descendant pair")
