"""Scoped Dynamic Program Structure Tree (S-DPST) — the principal data
structure of the paper's analysis (Section 4.2)."""

from .builder import DetectorBase, DpstBuilder
from .prune import prune_race_free
from .nodes import ASYNC, FINISH, SCOPE, STEP, DpstNode
from .tree import Dpst, path_between

__all__ = [
    "ASYNC",
    "FINISH",
    "SCOPE",
    "STEP",
    "DpstNode",
    "Dpst",
    "path_between",
    "DpstBuilder",
    "DetectorBase",
    "prune_race_free",
]
