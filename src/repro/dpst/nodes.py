"""Node types of the Scoped Dynamic Program Structure Tree (S-DPST).

Definition 2 of the paper: leaves are *step* instances; interior nodes are
*async*, *finish* and *scope* instances; siblings are ordered left-to-right
by the sequential depth-first execution.

Every node carries:

* ``index`` — its position in the depth-first traversal (creation order,
  since the tree is built during a depth-first execution);
* ``depth`` — distance from the root, used by LCA and by the VALID check
  of Algorithm 2;
* ``anchor_nid`` — the id of the AST statement, *in the parent scope's
  block*, that this node hangs off.  Static finish placement uses anchors
  to translate an S-DPST child run into a statement range.
* ``block_nid`` — for interior nodes, the AST block whose statements the
  node's direct children anchor into (``None`` for the synthetic root).
"""

from __future__ import annotations

from typing import List, Optional

ASYNC = "async"
FINISH = "finish"
SCOPE = "scope"
STEP = "step"


class DpstNode:
    """One node of the S-DPST."""

    __slots__ = ("kind", "index", "depth", "parent", "children",
                 "anchor_nid", "block_nid", "construct_nid", "scope_kind",
                 "anchors", "cost", "label")

    def __init__(self, kind: str, index: int, parent: Optional["DpstNode"],
                 anchor_nid: Optional[int] = None,
                 block_nid: Optional[int] = None,
                 construct_nid: Optional[int] = None,
                 scope_kind: Optional[str] = None) -> None:
        self.kind = kind
        self.index = index
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.children: List[DpstNode] = []
        #: AST statement id this node anchors to in the parent's block.
        self.anchor_nid = anchor_nid
        #: AST block whose statements this node's children anchor into.
        self.block_nid = block_nid
        #: AST construct that created this node (async/finish stmt, function,
        #: if, loop, ...).
        self.construct_nid = construct_nid
        #: For scope nodes: "call", "if", "else", "loop" or "block".
        self.scope_kind = scope_kind
        #: For step nodes: ordered ids of the top-level statements covered.
        self.anchors: List[int] = []
        #: For step nodes: accumulated execution time units.
        self.cost = 0
        #: Optional human-readable tag for debugging and reports.
        self.label: Optional[str] = None

    # ------------------------------------------------------------------

    @property
    def is_step(self) -> bool:
        return self.kind == STEP

    @property
    def is_async(self) -> bool:
        return self.kind == ASYNC

    @property
    def is_finish(self) -> bool:
        return self.kind == FINISH

    @property
    def is_scope(self) -> bool:
        return self.kind == SCOPE

    def add_child(self, child: "DpstNode") -> None:
        self.children.append(child)

    def ancestors(self):
        """Yield the strict ancestors, innermost first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "DpstNode") -> bool:
        """True if ``self`` is an ancestor of ``other`` (strict or equal)."""
        node: Optional[DpstNode] = other
        while node is not None and node.depth >= self.depth:
            if node is self:
                return True
            node = node.parent
        return False

    def describe(self) -> str:
        """Short human-readable form, e.g. ``Async:3`` or ``Scope(if):8``."""
        if self.kind == SCOPE:
            return f"Scope({self.scope_kind}):{self.index}"
        return f"{self.kind.capitalize()}:{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
