"""Test-driven repair of data races in structured parallel programs.

A faithful, self-contained Python reproduction of the PLDI 2014 paper by
Surendran, Raman, Chaudhuri, Mellor-Crummey and Sarkar: a mini-HJ
async/finish language, a sequential instrumented interpreter, S-DPST
construction, SRW/MRW ESP-bags race detection, and the dynamic + static
finish-placement algorithms that repair racy programs while maximizing
parallelism.

Typical use::

    from repro import parse, repair_program
    result = repair_program(parse(source), args=(1000,))
    print(result.repaired_source)
"""

from .lang import (
    ast,
    parse,
    pretty,
    serial_elision,
    strip_finishes,
    validate,
)
from .races import detect_races
from .version import __version__

__all__ = [
    "ast",
    "parse",
    "pretty",
    "serial_elision",
    "strip_finishes",
    "validate",
    "detect_races",
    "repair_program",
    "RepairEngine",
    "__version__",
]


def __getattr__(name):
    # Imported lazily to keep `import repro` light and cycle-free.
    if name in ("repair_program", "RepairEngine"):
        from .repair import engine
        return getattr(engine, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
