"""Hand-written lexer for the mini-HJ language."""

from __future__ import annotations

from typing import List

from ..errors import LexError
from .tokens import KEYWORDS, Token, TokenType

_TWO_CHAR_OPS = {
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "&&": TokenType.AND,
    "||": TokenType.OR,
    "<<": TokenType.SHL,
    ">>": TokenType.SHR,
    "+=": TokenType.PLUS_ASSIGN,
    "-=": TokenType.MINUS_ASSIGN,
    "*=": TokenType.STAR_ASSIGN,
    "/=": TokenType.SLASH_ASSIGN,
}

_ONE_CHAR_OPS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMI,
    ".": TokenType.DOT,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
    "&": TokenType.BITAND,
    "|": TokenType.BITOR,
    "^": TokenType.BITXOR,
    "~": TokenType.BITNOT,
}

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "0": "\0"}


class Lexer:
    """Converts mini-HJ source text into a list of tokens.

    Supports ``//`` line comments and ``/* ... */`` block comments, decimal
    integer and floating-point literals, and double-quoted strings with the
    usual escapes.
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        """Lex the entire input and return the token list (ending in EOF)."""
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenType.EOF, None, self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment",
                                       start_line, start_col)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number(line, column)
        if ch.isalpha() or ch == "_":
            return self._lex_word(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        two = ch + self._peek(1)
        if two in _TWO_CHAR_OPS:
            self._advance(2)
            return Token(_TWO_CHAR_OPS[two], two, line, column)
        if ch in _ONE_CHAR_OPS:
            self._advance()
            return Token(_ONE_CHAR_OPS[ch], ch, line, column)
        raise LexError(f"unexpected character {ch!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.pos]
        if is_float:
            return Token(TokenType.FLOAT, float(text), line, column)
        return Token(TokenType.INT, int(text), line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        if text in KEYWORDS:
            return Token(KEYWORDS[text], text, line, column)
        return Token(TokenType.IDENT, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", line, column)
            if ch == "\n":
                raise LexError("newline in string literal", line, column)
            if ch == '"':
                self._advance()
                return Token(TokenType.STRING, "".join(chars), line, column)
            if ch == "\\":
                esc = self._peek(1)
                if esc not in _ESCAPES:
                    raise LexError(f"bad escape sequence \\{esc}",
                                   self.line, self.column)
                chars.append(_ESCAPES[esc])
                self._advance(2)
            else:
                chars.append(ch)
                self._advance()


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
