"""Serial elision: the sequential program obtained by deleting ``async``
and ``finish`` keywords (Problem 1, criterion 4 of the paper).

A repaired program must compute the same results as its serial elision;
the test suite checks this by running both and comparing outputs.
"""

from __future__ import annotations

from typing import List

from . import ast
from .transform import clone_program


def serial_elision(program: ast.Program) -> ast.Program:
    """Return a copy of ``program`` with async/finish replaced by blocks.

    The bodies stay in place as bare blocks, so evaluation order and
    variable scoping are exactly those of the depth-first sequential
    execution of the parallel program.
    """
    elided = clone_program(program)
    for func in elided.functions.values():
        _elide_block(func.body)
    return elided


def _elide_block(block: ast.Block) -> None:
    new_stmts: List[ast.Stmt] = []
    for stmt in block.stmts:
        if isinstance(stmt, (ast.AsyncStmt, ast.FinishStmt)):
            _elide_block(stmt.body)
            new_stmts.append(stmt.body)
        elif isinstance(stmt, ast.Block):
            _elide_block(stmt)
            new_stmts.append(stmt)
        else:
            for child in stmt.children():
                if isinstance(child, ast.Block):
                    _elide_block(child)
            new_stmts.append(stmt)
    block.stmts = new_stmts


def is_sequential(program: ast.Program) -> bool:
    """True if the program contains no async or finish statements."""
    return not any(isinstance(n, (ast.AsyncStmt, ast.FinishStmt))
                   for n in ast.walk(program))
