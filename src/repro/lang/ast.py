"""Abstract syntax tree for the mini-HJ language.

Every node carries a program-unique integer id (``nid``) and a source
position.  Node ids are the link between the dynamic analysis (S-DPST nodes
record the ids of the AST constructs they were created from) and the static
repair (finish statements are spliced into blocks identified by id).

The tree is deliberately mutable: the static finish-placement pass edits
``Block.stmts`` in place, allocating fresh ids for the inserted ``finish``
nodes from the owning :class:`Program`'s counter.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("nid", "line", "col")

    def __init__(self, nid: int, line: int = 0, col: int = 0) -> None:
        self.nid = nid
        self.line = line
        self.col = col

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (used by generic walks)."""
        return iter(())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(nid={self.nid})"


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every descendant in preorder."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(current.children())))


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

class Expr(Node):
    """Base class for expressions."""
    __slots__ = ()


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, nid: int, value: int, line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.value = value


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, nid: int, value: float, line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.value = value


class StringLit(Expr):
    __slots__ = ("value",)

    def __init__(self, nid: int, value: str, line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.value = value


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, nid: int, value: bool, line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.value = value


class NullLit(Expr):
    __slots__ = ()


class VarRef(Expr):
    """A reference to a variable by name (local, parameter, or global)."""
    __slots__ = ("name",)

    def __init__(self, nid: int, name: str, line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.name = name


class Unary(Expr):
    """Unary operator application: ``-``, ``!`` or ``~``."""
    __slots__ = ("op", "operand")

    def __init__(self, nid: int, op: str, operand: Expr,
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.op = op
        self.operand = operand

    def children(self) -> Iterator[Node]:
        yield self.operand


class Binary(Expr):
    """Binary operator application.

    ``&&`` and ``||`` short-circuit; all other operators are strict.
    """
    __slots__ = ("op", "left", "right")

    def __init__(self, nid: int, op: str, left: Expr, right: Expr,
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


class Call(Expr):
    """A call to a user function or builtin, by name."""
    __slots__ = ("name", "args")

    def __init__(self, nid: int, name: str, args: List[Expr],
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.name = name
        self.args = args

    def children(self) -> Iterator[Node]:
        return iter(self.args)


class Index(Expr):
    """Array element access ``base[index]``."""
    __slots__ = ("base", "index")

    def __init__(self, nid: int, base: Expr, index: Expr,
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.base = base
        self.index = index

    def children(self) -> Iterator[Node]:
        yield self.base
        yield self.index


class FieldAccess(Expr):
    """Struct field access ``base.field``."""
    __slots__ = ("base", "field")

    def __init__(self, nid: int, base: Expr, field: str,
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.base = base
        self.field = field

    def children(self) -> Iterator[Node]:
        yield self.base


class NewArray(Expr):
    """Array allocation ``new elem[len]`` (dims may nest for 2-D arrays).

    ``elem_type`` is the written element type name; it determines the fill
    value (0 for ``int``, 0.0 for ``double``, false for ``boolean``, null
    otherwise).  ``dims`` holds one expression per dimension.
    """
    __slots__ = ("elem_type", "dims")

    def __init__(self, nid: int, elem_type: str, dims: List[Expr],
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.elem_type = elem_type
        self.dims = dims

    def children(self) -> Iterator[Node]:
        return iter(self.dims)


class NewStruct(Expr):
    """Struct allocation ``new Name()``; all fields start as null/0."""
    __slots__ = ("struct_name",)

    def __init__(self, nid: int, struct_name: str,
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.struct_name = struct_name


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

class Stmt(Node):
    """Base class for statements."""
    __slots__ = ()


class Block(Stmt):
    """A brace-delimited statement list.

    Blocks are the splice points for repair: new ``finish`` statements wrap
    contiguous ranges of ``stmts``.
    """
    __slots__ = ("stmts",)

    def __init__(self, nid: int, stmts: List[Stmt],
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.stmts = stmts

    def children(self) -> Iterator[Node]:
        return iter(self.stmts)


class VarDecl(Stmt):
    """``var name = init;`` — declares a new variable in the current scope."""
    __slots__ = ("name", "init")

    def __init__(self, nid: int, name: str, init: Optional[Expr],
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.name = name
        self.init = init

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init


class Assign(Stmt):
    """Assignment to an lvalue; ``op`` is ``=``, ``+=``, ``-=``, ``*=`` or ``/=``."""
    __slots__ = ("target", "op", "value")

    def __init__(self, nid: int, target: Expr, op: str, value: Expr,
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.target = target
        self.op = op
        self.value = value

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value


class ExprStmt(Stmt):
    """An expression evaluated for effect (typically a call)."""
    __slots__ = ("expr",)

    def __init__(self, nid: int, expr: Expr, line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.expr = expr

    def children(self) -> Iterator[Node]:
        yield self.expr


class If(Stmt):
    __slots__ = ("cond", "then_block", "else_block")

    def __init__(self, nid: int, cond: Expr, then_block: Block,
                 else_block: Optional[Block], line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then_block
        if self.else_block is not None:
            yield self.else_block


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, nid: int, cond: Expr, body: Block,
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.cond = cond
        self.body = body

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.body


class For(Stmt):
    """C-style ``for (init; cond; update) body``.

    ``init`` is a :class:`VarDecl` or :class:`Assign` (or None); ``update``
    is an :class:`Assign` or :class:`ExprStmt` (or None).
    """
    __slots__ = ("init", "cond", "update", "body")

    def __init__(self, nid: int, init: Optional[Stmt], cond: Optional[Expr],
                 update: Optional[Stmt], body: Block,
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.init = init
        self.cond = cond
        self.update = update
        self.body = body

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.cond is not None:
            yield self.cond
        if self.update is not None:
            yield self.update
        yield self.body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, nid: int, value: Optional[Expr],
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.value = value

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class AsyncStmt(Stmt):
    """``async { body }`` — spawn ``body`` as an asynchronous child task."""
    __slots__ = ("body",)

    def __init__(self, nid: int, body: Block, line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.body = body

    def children(self) -> Iterator[Node]:
        yield self.body


class FinishStmt(Stmt):
    """``finish { body }`` — run ``body`` and join all tasks spawned in it.

    ``synthetic`` marks finishes inserted by the repair tool, so reports and
    pretty-printing can distinguish them from programmer-written ones.
    """
    __slots__ = ("body", "synthetic")

    def __init__(self, nid: int, body: Block, line: int = 0, col: int = 0,
                 synthetic: bool = False) -> None:
        super().__init__(nid, line, col)
        self.body = body
        self.synthetic = synthetic

    def children(self) -> Iterator[Node]:
        yield self.body


# ----------------------------------------------------------------------
# Declarations and programs
# ----------------------------------------------------------------------

class Param(Node):
    __slots__ = ("name",)

    def __init__(self, nid: int, name: str, line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.name = name


class FuncDecl(Node):
    __slots__ = ("name", "params", "body")

    def __init__(self, nid: int, name: str, params: List[Param], body: Block,
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.name = name
        self.params = params
        self.body = body

    def children(self) -> Iterator[Node]:
        yield from self.params
        yield self.body


class StructDecl(Node):
    __slots__ = ("name", "fields")

    def __init__(self, nid: int, name: str, fields: List[str],
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.name = name
        self.fields = fields


class GlobalDecl(Node):
    """A top-level ``var`` declaration (a shared global variable)."""
    __slots__ = ("name", "init")

    def __init__(self, nid: int, name: str, init: Optional[Expr],
                 line: int = 0, col: int = 0) -> None:
        super().__init__(nid, line, col)
        self.name = name
        self.init = init

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init


class Program(Node):
    """A whole mini-HJ program.

    Owns the node-id counter used to allocate fresh ids for nodes created
    after parsing (e.g. repair-inserted finish statements).  Execution
    starts at the function named ``main``.
    """

    __slots__ = ("functions", "structs", "globals", "_next_id", "source_name")

    def __init__(self, nid: int = 0, source_name: str = "<program>") -> None:
        super().__init__(nid)
        self.functions: Dict[str, FuncDecl] = {}
        self.structs: Dict[str, StructDecl] = {}
        self.globals: List[GlobalDecl] = []
        self._next_id = nid + 1
        self.source_name = source_name

    def children(self) -> Iterator[Node]:
        yield from self.globals
        yield from self.structs.values()
        yield from self.functions.values()

    def fresh_id(self) -> int:
        """Allocate a new program-unique node id."""
        nid = self._next_id
        self._next_id += 1
        return nid

    def note_max_id(self, nid: int) -> None:
        """Ensure future :meth:`fresh_id` calls stay above ``nid``."""
        if nid >= self._next_id:
            self._next_id = nid + 1

    def node_index(self) -> Dict[int, Node]:
        """Build a map from node id to node over the whole program."""
        return {n.nid: n for n in walk(self)}

    @property
    def main(self) -> FuncDecl:
        """The entry-point function; raises ``KeyError`` if absent."""
        return self.functions["main"]
