"""Token definitions for the mini-HJ language.

The language is a small dialect of Habanero Java / X10 restricted to the
constructs the paper's repair tool needs: functions, structs, globals,
arrays, structured control flow, and the two parallel constructs ``async``
and ``finish``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class TokenType(enum.Enum):
    """Kinds of lexical tokens."""

    # Literals and identifiers.
    INT = "int-literal"
    FLOAT = "float-literal"
    STRING = "string-literal"
    IDENT = "identifier"

    # Keywords.
    DEF = "def"
    VAR = "var"
    STRUCT = "struct"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    FOR = "for"
    RETURN = "return"
    BREAK = "break"
    CONTINUE = "continue"
    ASYNC = "async"
    FINISH = "finish"
    NEW = "new"
    TRUE = "true"
    FALSE = "false"
    NULL = "null"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    DOT = "."

    # Operators.
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"
    BITAND = "&"
    BITOR = "|"
    BITXOR = "^"
    BITNOT = "~"
    SHL = "<<"
    SHR = ">>"

    EOF = "end-of-file"


#: Mapping from keyword spelling to its token type.
KEYWORDS = {
    "def": TokenType.DEF,
    "var": TokenType.VAR,
    "struct": TokenType.STRUCT,
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "while": TokenType.WHILE,
    "for": TokenType.FOR,
    "return": TokenType.RETURN,
    "break": TokenType.BREAK,
    "continue": TokenType.CONTINUE,
    "async": TokenType.ASYNC,
    "finish": TokenType.FINISH,
    "new": TokenType.NEW,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
    "null": TokenType.NULL,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded literal for INT/FLOAT/STRING tokens and the
    spelling for identifiers; for punctuation it is the token text.
    """

    type: TokenType
    value: Union[int, float, str, None]
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
