"""Recursive-descent parser for the mini-HJ language.

Grammar sketch::

    program   := (funcdecl | structdecl | globaldecl)*
    funcdecl  := 'def' IDENT '(' [IDENT (',' IDENT)*] ')' block
    structdecl:= 'struct' IDENT '{' [IDENT (',' IDENT)*] '}'
    globaldecl:= 'var' IDENT ['=' expr] ';'
    block     := '{' stmt* '}'
    stmt      := block | vardecl | if | while | for | return ';'-stmt
               | 'break' ';' | 'continue' ';'
               | 'async' stmt | 'finish' stmt
               | simple ';'
    simple    := lvalue ('='|'+='|'-='|'*='|'/=') expr | expr

``async f(x);`` is sugar for ``async { f(x); }`` (and likewise for
``finish``), matching the paper's examples.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenType

# Binary operator precedence, higher binds tighter.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_BINARY_TOKENS = {
    TokenType.OR: "||", TokenType.AND: "&&",
    TokenType.BITOR: "|", TokenType.BITXOR: "^", TokenType.BITAND: "&",
    TokenType.EQ: "==", TokenType.NE: "!=",
    TokenType.LT: "<", TokenType.LE: "<=",
    TokenType.GT: ">", TokenType.GE: ">=",
    TokenType.SHL: "<<", TokenType.SHR: ">>",
    TokenType.PLUS: "+", TokenType.MINUS: "-",
    TokenType.STAR: "*", TokenType.SLASH: "/", TokenType.PERCENT: "%",
}

_ASSIGN_TOKENS = {
    TokenType.ASSIGN: "=",
    TokenType.PLUS_ASSIGN: "+=",
    TokenType.MINUS_ASSIGN: "-=",
    TokenType.STAR_ASSIGN: "*=",
    TokenType.SLASH_ASSIGN: "/=",
}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: List[Token], source_name: str = "<program>") -> None:
        self.tokens = tokens
        self.pos = 0
        self.program = ast.Program(nid=0, source_name=source_name)

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, ttype: TokenType) -> bool:
        return self._peek().type is ttype

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _expect(self, ttype: TokenType, what: str = "") -> Token:
        token = self._peek()
        if token.type is not ttype:
            wanted = what or ttype.value
            raise ParseError(
                f"expected {wanted}, found {token.type.value}"
                f"{'' if token.value is None else f' ({token.value!r})'}",
                token.line, token.column)
        return self._advance()

    def _match(self, ttype: TokenType) -> Optional[Token]:
        if self._at(ttype):
            return self._advance()
        return None

    def _nid(self) -> int:
        return self.program.fresh_id()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse the whole token stream into a program."""
        while not self._at(TokenType.EOF):
            token = self._peek()
            if token.type is TokenType.DEF:
                func = self._parse_funcdecl()
                if func.name in self.program.functions:
                    raise ParseError(f"duplicate function {func.name!r}",
                                     func.line, func.col)
                self.program.functions[func.name] = func
            elif token.type is TokenType.STRUCT:
                struct = self._parse_structdecl()
                if struct.name in self.program.structs:
                    raise ParseError(f"duplicate struct {struct.name!r}",
                                     struct.line, struct.col)
                self.program.structs[struct.name] = struct
            elif token.type is TokenType.VAR:
                self.program.globals.append(self._parse_globaldecl())
            else:
                raise ParseError(
                    f"expected 'def', 'struct' or 'var' at top level, "
                    f"found {token.type.value}", token.line, token.column)
        return self.program

    def _parse_funcdecl(self) -> ast.FuncDecl:
        start = self._expect(TokenType.DEF)
        name = self._expect(TokenType.IDENT, "function name")
        self._expect(TokenType.LPAREN)
        params: List[ast.Param] = []
        if not self._at(TokenType.RPAREN):
            while True:
                ptok = self._expect(TokenType.IDENT, "parameter name")
                params.append(ast.Param(self._nid(), str(ptok.value),
                                        ptok.line, ptok.column))
                if not self._match(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN)
        body = self._parse_block()
        return ast.FuncDecl(self._nid(), str(name.value), params, body,
                            start.line, start.column)

    def _parse_structdecl(self) -> ast.StructDecl:
        start = self._expect(TokenType.STRUCT)
        name = self._expect(TokenType.IDENT, "struct name")
        self._expect(TokenType.LBRACE)
        fields: List[str] = []
        if not self._at(TokenType.RBRACE):
            while True:
                ftok = self._expect(TokenType.IDENT, "field name")
                if ftok.value in fields:
                    raise ParseError(f"duplicate field {ftok.value!r}",
                                     ftok.line, ftok.column)
                fields.append(str(ftok.value))
                if not self._match(TokenType.COMMA):
                    break
        self._expect(TokenType.RBRACE)
        return ast.StructDecl(self._nid(), str(name.value), fields,
                              start.line, start.column)

    def _parse_globaldecl(self) -> ast.GlobalDecl:
        start = self._expect(TokenType.VAR)
        name = self._expect(TokenType.IDENT, "global name")
        init = None
        if self._match(TokenType.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenType.SEMI)
        return ast.GlobalDecl(self._nid(), str(name.value), init,
                              start.line, start.column)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect(TokenType.LBRACE)
        stmts: List[ast.Stmt] = []
        while not self._at(TokenType.RBRACE):
            if self._at(TokenType.EOF):
                raise ParseError("unterminated block", start.line, start.column)
            stmts.append(self._parse_stmt())
        self._expect(TokenType.RBRACE)
        return ast.Block(self._nid(), stmts, start.line, start.column)

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        ttype = token.type
        if ttype is TokenType.LBRACE:
            return self._parse_block()
        if ttype is TokenType.VAR:
            return self._parse_vardecl()
        if ttype is TokenType.IF:
            return self._parse_if()
        if ttype is TokenType.WHILE:
            return self._parse_while()
        if ttype is TokenType.FOR:
            return self._parse_for()
        if ttype is TokenType.RETURN:
            self._advance()
            value = None if self._at(TokenType.SEMI) else self._parse_expr()
            self._expect(TokenType.SEMI)
            return ast.Return(self._nid(), value, token.line, token.column)
        if ttype is TokenType.BREAK:
            self._advance()
            self._expect(TokenType.SEMI)
            return ast.Break(self._nid(), token.line, token.column)
        if ttype is TokenType.CONTINUE:
            self._advance()
            self._expect(TokenType.SEMI)
            return ast.Continue(self._nid(), token.line, token.column)
        if ttype is TokenType.ASYNC:
            self._advance()
            body = self._parse_construct_body()
            return ast.AsyncStmt(self._nid(), body, token.line, token.column)
        if ttype is TokenType.FINISH:
            self._advance()
            body = self._parse_construct_body()
            return ast.FinishStmt(self._nid(), body, token.line, token.column)
        return self._parse_simple_stmt()

    def _parse_construct_body(self) -> ast.Block:
        """Body of async/finish: a block, or a single statement (sugar)."""
        if self._at(TokenType.LBRACE):
            return self._parse_block()
        stmt = self._parse_stmt()
        return ast.Block(self._nid(), [stmt], stmt.line, stmt.col)

    def _parse_vardecl(self) -> ast.VarDecl:
        start = self._expect(TokenType.VAR)
        name = self._expect(TokenType.IDENT, "variable name")
        init = None
        if self._match(TokenType.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenType.SEMI)
        return ast.VarDecl(self._nid(), str(name.value), init,
                           start.line, start.column)

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenType.IF)
        self._expect(TokenType.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenType.RPAREN)
        then_block = self._parse_block()
        else_block = None
        if self._match(TokenType.ELSE):
            if self._at(TokenType.IF):
                # else-if chain: wrap the nested if in a block.
                nested = self._parse_if()
                else_block = ast.Block(self._nid(), [nested],
                                       nested.line, nested.col)
            else:
                else_block = self._parse_block()
        return ast.If(self._nid(), cond, then_block, else_block,
                      start.line, start.column)

    def _parse_while(self) -> ast.While:
        start = self._expect(TokenType.WHILE)
        self._expect(TokenType.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenType.RPAREN)
        body = self._parse_block()
        return ast.While(self._nid(), cond, body, start.line, start.column)

    def _parse_for(self) -> ast.For:
        start = self._expect(TokenType.FOR)
        self._expect(TokenType.LPAREN)
        init: Optional[ast.Stmt] = None
        if not self._at(TokenType.SEMI):
            if self._at(TokenType.VAR):
                init = self._parse_vardecl()  # consumes the ';'
            else:
                init = self._parse_simple_no_semi()
                self._expect(TokenType.SEMI)
        else:
            self._expect(TokenType.SEMI)
        cond: Optional[ast.Expr] = None
        if not self._at(TokenType.SEMI):
            cond = self._parse_expr()
        self._expect(TokenType.SEMI)
        update: Optional[ast.Stmt] = None
        if not self._at(TokenType.RPAREN):
            update = self._parse_simple_no_semi()
        self._expect(TokenType.RPAREN)
        body = self._parse_block()
        return ast.For(self._nid(), init, cond, update, body,
                       start.line, start.column)

    def _parse_simple_stmt(self) -> ast.Stmt:
        stmt = self._parse_simple_no_semi()
        self._expect(TokenType.SEMI)
        return stmt

    def _parse_simple_no_semi(self) -> ast.Stmt:
        token = self._peek()
        expr = self._parse_expr()
        assign = self._peek()
        if assign.type in _ASSIGN_TOKENS:
            if not isinstance(expr, (ast.VarRef, ast.Index, ast.FieldAccess)):
                raise ParseError("invalid assignment target",
                                 assign.line, assign.column)
            self._advance()
            value = self._parse_expr()
            return ast.Assign(self._nid(), expr, _ASSIGN_TOKENS[assign.type],
                              value, token.line, token.column)
        return ast.ExprStmt(self._nid(), expr, token.line, token.column)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expr(self, min_prec: int = 1) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            op = _BINARY_TOKENS.get(token.type)
            if op is None or _PRECEDENCE[op] < min_prec:
                return left
            self._advance()
            right = self._parse_expr(_PRECEDENCE[op] + 1)
            left = ast.Binary(self._nid(), op, left, right,
                              token.line, token.column)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.MINUS:
            self._advance()
            return ast.Unary(self._nid(), "-", self._parse_unary(),
                             token.line, token.column)
        if token.type is TokenType.NOT:
            self._advance()
            return ast.Unary(self._nid(), "!", self._parse_unary(),
                             token.line, token.column)
        if token.type is TokenType.BITNOT:
            self._advance()
            return ast.Unary(self._nid(), "~", self._parse_unary(),
                             token.line, token.column)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.type is TokenType.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(TokenType.RBRACKET)
                expr = ast.Index(self._nid(), expr, index,
                                 token.line, token.column)
            elif token.type is TokenType.DOT:
                self._advance()
                field = self._expect(TokenType.IDENT, "field name")
                expr = ast.FieldAccess(self._nid(), expr, str(field.value),
                                       token.line, token.column)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        ttype = token.type
        if ttype is TokenType.INT:
            self._advance()
            return ast.IntLit(self._nid(), int(token.value), token.line, token.column)
        if ttype is TokenType.FLOAT:
            self._advance()
            return ast.FloatLit(self._nid(), float(token.value),
                                token.line, token.column)
        if ttype is TokenType.STRING:
            self._advance()
            return ast.StringLit(self._nid(), str(token.value),
                                 token.line, token.column)
        if ttype is TokenType.TRUE:
            self._advance()
            return ast.BoolLit(self._nid(), True, token.line, token.column)
        if ttype is TokenType.FALSE:
            self._advance()
            return ast.BoolLit(self._nid(), False, token.line, token.column)
        if ttype is TokenType.NULL:
            self._advance()
            return ast.NullLit(self._nid(), token.line, token.column)
        if ttype is TokenType.NEW:
            return self._parse_new()
        if ttype is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN)
            return expr
        if ttype is TokenType.IDENT:
            self._advance()
            if self._at(TokenType.LPAREN):
                self._advance()
                args: List[ast.Expr] = []
                if not self._at(TokenType.RPAREN):
                    while True:
                        args.append(self._parse_expr())
                        if not self._match(TokenType.COMMA):
                            break
                self._expect(TokenType.RPAREN)
                return ast.Call(self._nid(), str(token.value), args,
                                token.line, token.column)
            return ast.VarRef(self._nid(), str(token.value),
                              token.line, token.column)
        raise ParseError(f"expected expression, found {ttype.value}",
                         token.line, token.column)

    def _parse_new(self) -> ast.Expr:
        start = self._expect(TokenType.NEW)
        name = self._expect(TokenType.IDENT, "type name")
        if self._at(TokenType.LPAREN):
            self._advance()
            self._expect(TokenType.RPAREN)
            return ast.NewStruct(self._nid(), str(name.value),
                                 start.line, start.column)
        dims: List[ast.Expr] = []
        self._expect(TokenType.LBRACKET, "'[' or '(' after new")
        dims.append(self._parse_expr())
        self._expect(TokenType.RBRACKET)
        while self._at(TokenType.LBRACKET):
            self._advance()
            dims.append(self._parse_expr())
            self._expect(TokenType.RBRACKET)
        return ast.NewArray(self._nid(), str(name.value), dims,
                            start.line, start.column)


def parse(source: str, source_name: str = "<program>") -> ast.Program:
    """Parse mini-HJ ``source`` text into a :class:`Program`."""
    from .. import telemetry

    with telemetry.span("lex"):
        tokens = tokenize(source)
    with telemetry.span("parse"):
        return Parser(tokens, source_name).parse_program()
