"""Static well-formedness checks for mini-HJ programs.

These rules keep the dynamic analysis honest: the interpreter and the
repair engine may assume every program passed validation.  Checks:

* every referenced variable is declared (lexically) before use;
* no duplicate declaration in the same scope;
* ``break``/``continue`` appear only inside loops and do not cross an
  ``async`` boundary;
* ``return`` does not appear inside an ``async`` body (a task cannot
  return from its parent's function, mirroring HJ/X10);
* every called name is a user function (with the right arity) or a known
  builtin;
* ``new S()`` references a declared struct, and a ``main`` function exists.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from ..errors import ValidationError
from . import ast


class _Scope:
    def __init__(self, parent: Optional["_Scope"]) -> None:
        self.parent = parent
        self.names: Set[str] = set()

    def declare(self, name: str, node: ast.Node) -> None:
        if name in self.names:
            raise ValidationError(f"duplicate declaration of {name!r}",
                                  node.line, node.col)
        self.names.add(name)

    def is_visible(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False


class Validator:
    """Validates one program; raises :class:`ValidationError` on failure."""

    def __init__(self, program: ast.Program,
                 builtin_names: Sequence[str] = ()) -> None:
        self.program = program
        self.builtin_names = set(builtin_names)
        self.global_scope = _Scope(None)

    def validate(self, require_main: bool = True) -> None:
        if require_main and "main" not in self.program.functions:
            raise ValidationError("program has no 'main' function")
        for gdecl in self.program.globals:
            if gdecl.init is not None:
                self._check_expr(gdecl.init, self.global_scope)
            self.global_scope.declare(gdecl.name, gdecl)
        for func in self.program.functions.values():
            self._check_function(func)

    # ------------------------------------------------------------------

    def _check_function(self, func: ast.FuncDecl) -> None:
        scope = _Scope(self.global_scope)
        for param in func.params:
            scope.declare(param.name, param)
        self._check_block(func.body, scope, loop_depth=0, async_depth=0)

    def _check_block(self, block: ast.Block, parent: _Scope,
                     loop_depth: int, async_depth: int) -> None:
        scope = _Scope(parent)
        for stmt in block.stmts:
            self._check_stmt(stmt, scope, loop_depth, async_depth)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope,
                    loop_depth: int, async_depth: int) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, loop_depth, async_depth)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._check_expr(stmt.init, scope)
            scope.declare(stmt.name, stmt)
        elif isinstance(stmt, ast.Assign):
            self._check_lvalue(stmt.target, scope)
            self._check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope)
            self._check_block(stmt.then_block, scope, loop_depth, async_depth)
            if stmt.else_block is not None:
                self._check_block(stmt.else_block, scope, loop_depth,
                                  async_depth)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope)
            self._check_block(stmt.body, scope, loop_depth + 1, async_depth)
        elif isinstance(stmt, ast.For):
            for_scope = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, for_scope, loop_depth, async_depth)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, for_scope)
            if stmt.update is not None:
                self._check_stmt(stmt.update, for_scope, loop_depth,
                                 async_depth)
            self._check_block(stmt.body, for_scope, loop_depth + 1,
                              async_depth)
        elif isinstance(stmt, ast.Return):
            if async_depth > 0:
                raise ValidationError("return inside async body",
                                      stmt.line, stmt.col)
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.Break):
            if loop_depth <= 0:
                raise ValidationError("break outside loop", stmt.line, stmt.col)
        elif isinstance(stmt, ast.Continue):
            if loop_depth <= 0:
                raise ValidationError("continue outside loop",
                                      stmt.line, stmt.col)
        elif isinstance(stmt, ast.AsyncStmt):
            # A fresh loop_depth: break/continue may not escape the task.
            self._check_block(stmt.body, scope, loop_depth=0,
                              async_depth=async_depth + 1)
        elif isinstance(stmt, ast.FinishStmt):
            self._check_block(stmt.body, scope, loop_depth, async_depth)
        else:
            raise ValidationError(
                f"unknown statement {type(stmt).__name__}", stmt.line, stmt.col)

    def _check_lvalue(self, target: ast.Expr, scope: _Scope) -> None:
        if isinstance(target, ast.VarRef):
            if not scope.is_visible(target.name):
                raise ValidationError(f"assignment to undeclared variable "
                                      f"{target.name!r}", target.line, target.col)
        elif isinstance(target, (ast.Index, ast.FieldAccess)):
            self._check_expr(target, scope)
        else:
            raise ValidationError("invalid assignment target",
                                  target.line, target.col)

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> None:
        if isinstance(expr, ast.VarRef):
            if not scope.is_visible(expr.name):
                raise ValidationError(f"use of undeclared variable "
                                      f"{expr.name!r}", expr.line, expr.col)
        elif isinstance(expr, ast.Call):
            func = self.program.functions.get(expr.name)
            if func is not None:
                if len(func.params) != len(expr.args):
                    raise ValidationError(
                        f"call to {expr.name!r} with {len(expr.args)} args, "
                        f"expected {len(func.params)}", expr.line, expr.col)
            elif expr.name not in self.builtin_names:
                raise ValidationError(f"call to unknown function {expr.name!r}",
                                      expr.line, expr.col)
            for arg in expr.args:
                self._check_expr(arg, scope)
        elif isinstance(expr, ast.NewStruct):
            if expr.struct_name not in self.program.structs:
                raise ValidationError(f"unknown struct {expr.struct_name!r}",
                                      expr.line, expr.col)
        else:
            for child in expr.children():
                self._check_expr(child, scope)  # type: ignore[arg-type]


def validate(program: ast.Program, builtin_names: Sequence[str] = (),
             require_main: bool = True) -> None:
    """Validate ``program``; raise :class:`ValidationError` on the first
    violation found."""
    from .. import telemetry

    with telemetry.span("validate"):
        Validator(program, builtin_names).validate(require_main=require_main)
