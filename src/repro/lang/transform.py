"""AST transformations used by the repair engine and the test harness.

The central operation is :func:`insert_finish`, which wraps a contiguous
statement range of a block in a new synthetic ``finish`` — this is how the
static finish placement (Section 6 of the paper) edits the program.  The
inverse direction, :func:`strip_finishes`, produces the unsynchronized
"buggy" inputs used in the evaluation (Section 7.1: *"We removed all finish
statements from the benchmarks..."*).
"""

from __future__ import annotations

import copy
from typing import List, Tuple

from ..errors import RepairError
from . import ast


def clone_program(program: ast.Program) -> ast.Program:
    """Deep-copy a program, preserving all node ids."""
    return copy.deepcopy(program)


def strip_finishes(program: ast.Program) -> ast.Program:
    """Return a copy of ``program`` with every ``finish`` statement removed.

    The finish bodies are kept as plain blocks in place of the finish, so
    statement order and lexical scoping are untouched — only the join
    synchronization disappears.
    """
    stripped = clone_program(program)
    for func in stripped.functions.values():
        _strip_in_block(func.body)
    return stripped


def _strip_in_block(block: ast.Block) -> None:
    new_stmts: List[ast.Stmt] = []
    for stmt in block.stmts:
        if isinstance(stmt, ast.FinishStmt):
            _strip_in_block(stmt.body)
            # Replace `finish { S* }` with the bare block `{ S* }`; keeping
            # the block preserves any variable scoping inside.
            new_stmts.append(stmt.body)
        elif isinstance(stmt, ast.Block):
            _strip_in_block(stmt)
            new_stmts.append(stmt)
        else:
            for child in stmt.children():
                if isinstance(child, ast.Block):
                    _strip_in_block(child)
            new_stmts.append(stmt)
    block.stmts = new_stmts


def count_finishes(program: ast.Program) -> int:
    """Number of finish statements in the program."""
    return sum(1 for n in ast.walk(program) if isinstance(n, ast.FinishStmt))


def count_asyncs(program: ast.Program) -> int:
    """Number of async statements in the program."""
    return sum(1 for n in ast.walk(program) if isinstance(n, ast.AsyncStmt))


def synthetic_finishes(program: ast.Program) -> List[ast.FinishStmt]:
    """All repair-inserted finish statements, in walk order."""
    return [n for n in ast.walk(program)
            if isinstance(n, ast.FinishStmt) and n.synthetic]


def find_block(program: ast.Program, block_nid: int) -> ast.Block:
    """Locate the block with the given node id.

    Raises :class:`RepairError` if the id does not name a block — that
    indicates a stale placement (e.g. computed against a different program
    copy).
    """
    for node in ast.walk(program):
        if node.nid == block_nid:
            if not isinstance(node, ast.Block):
                raise RepairError(
                    f"node {block_nid} is a {type(node).__name__}, not a Block")
            return node
    raise RepairError(f"no node with id {block_nid} in program")


def insert_finish(program: ast.Program, block_nid: int,
                  start_idx: int, end_idx: int) -> ast.FinishStmt:
    """Wrap ``block.stmts[start_idx..end_idx]`` (inclusive) in a finish.

    Returns the newly created synthetic :class:`FinishStmt`.  Raises
    :class:`RepairError` on an out-of-range span.
    """
    block = find_block(program, block_nid)
    if not (0 <= start_idx <= end_idx < len(block.stmts)):
        raise RepairError(
            f"finish span [{start_idx}, {end_idx}] out of range for block "
            f"{block_nid} with {len(block.stmts)} statements")
    wrapped = block.stmts[start_idx:end_idx + 1]
    body = ast.Block(program.fresh_id(), wrapped,
                     wrapped[0].line, wrapped[0].col)
    finish = ast.FinishStmt(program.fresh_id(), body,
                            wrapped[0].line, wrapped[0].col, synthetic=True)
    block.stmts[start_idx:end_idx + 1] = [finish]
    return finish


def statement_span(block: ast.Block, stmt_nids: List[int]) -> Tuple[int, int]:
    """Indices (start, end) of the statements with the given ids in ``block``.

    Used by static placement to map a set of anchor statements to a
    contiguous wrap range.  Raises :class:`RepairError` if any id is not a
    direct statement of the block.
    """
    positions = {stmt.nid: i for i, stmt in enumerate(block.stmts)}
    indices = []
    for nid in stmt_nids:
        if nid not in positions:
            raise RepairError(f"statement {nid} is not directly in block {block.nid}")
        indices.append(positions[nid])
    return min(indices), max(indices)


# ----------------------------------------------------------------------
# Structural equality (ignores ids, positions and the synthetic flag)
# ----------------------------------------------------------------------

def ast_equal(a: ast.Node, b: ast.Node) -> bool:
    """Structural equality of two AST fragments.

    Node ids, source positions and the ``synthetic`` marker on finish
    statements are ignored; everything else (node kinds, names, operator
    spellings, literal values, child order) must match.
    """
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Program):
        bp = b  # type: ast.Program
        if (list(a.functions) != list(bp.functions)
                or list(a.structs) != list(bp.structs)
                or len(a.globals) != len(bp.globals)):
            return False
        return all(ast_equal(x, y) for x, y in zip(a.children(), bp.children()))
    attrs = _COMPARED_ATTRS.get(type(a), ())
    for attr in attrs:
        if getattr(a, attr) != getattr(b, attr):
            return False
    a_children = list(a.children())
    b_children = list(b.children())
    if len(a_children) != len(b_children):
        return False
    return all(ast_equal(x, y) for x, y in zip(a_children, b_children))


_COMPARED_ATTRS = {
    ast.IntLit: ("value",),
    ast.FloatLit: ("value",),
    ast.StringLit: ("value",),
    ast.BoolLit: ("value",),
    ast.VarRef: ("name",),
    ast.Unary: ("op",),
    ast.Binary: ("op",),
    ast.Call: ("name",),
    ast.FieldAccess: ("field",),
    ast.NewArray: ("elem_type",),
    ast.NewStruct: ("struct_name",),
    ast.VarDecl: ("name",),
    ast.Assign: ("op",),
    ast.Param: ("name",),
    ast.FuncDecl: ("name",),
    ast.StructDecl: ("name", "fields"),
    ast.GlobalDecl: ("name",),
}


def renumber(program: ast.Program) -> ast.Program:
    """Return a clone with freshly assigned sequential node ids.

    Useful after heavy surgery to guarantee id uniqueness; the repair engine
    itself never needs this because it only allocates via ``fresh_id``.
    """
    clone = clone_program(program)
    next_id = 1
    for node in ast.walk(clone):
        node.nid = next_id
        next_id += 1
    clone._next_id = next_id
    return clone
