"""Source emitter for mini-HJ ASTs.

``pretty(program)`` produces text that re-parses to a structurally equal
program (modulo node ids and source positions) — the property tests rely on
this round trip.  Repair-inserted finish statements are annotated with a
``// repair`` comment so repaired sources are self-describing.
"""

from __future__ import annotations

from typing import List

from . import ast

_INDENT = "    "

# Precedence table mirroring the parser, used to parenthesize minimally.
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PRECEDENCE = 11


def _escape(text: str) -> str:
    out = []
    for ch in text:
        if ch == "\\":
            out.append("\\\\")
        elif ch == '"':
            out.append('\\"')
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        elif ch == "\r":
            out.append("\\r")
        else:
            out.append(ch)
    return "".join(out)


def expr_to_str(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render an expression, adding parentheses only where required."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        text = repr(expr.value)
        return text
    if isinstance(expr, ast.StringLit):
        return f'"{_escape(expr.value)}"'
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Unary):
        inner = expr_to_str(expr.operand, _UNARY_PRECEDENCE)
        text = f"{expr.op}{inner}"
        return text if parent_prec <= _UNARY_PRECEDENCE else f"({text})"
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        left = expr_to_str(expr.left, prec)
        right = expr_to_str(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return text if prec >= parent_prec else f"({text})"
    if isinstance(expr, ast.Call):
        args = ", ".join(expr_to_str(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.Index):
        return f"{expr_to_str(expr.base, _UNARY_PRECEDENCE + 1)}[{expr_to_str(expr.index)}]"
    if isinstance(expr, ast.FieldAccess):
        return f"{expr_to_str(expr.base, _UNARY_PRECEDENCE + 1)}.{expr.field}"
    if isinstance(expr, ast.NewArray):
        dims = "".join(f"[{expr_to_str(d)}]" for d in expr.dims)
        return f"new {expr.elem_type}{dims}"
    if isinstance(expr, ast.NewStruct):
        return f"new {expr.struct_name}()"
    raise TypeError(f"unknown expression node {type(expr).__name__}")


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append(f"{_INDENT * self.depth}{text}")

    def block_body(self, block: ast.Block) -> None:
        self.depth += 1
        for stmt in block.stmts:
            self.stmt(stmt)
        self.depth -= 1

    def stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.emit("{")
            self.block_body(stmt)
            self.emit("}")
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is None:
                self.emit(f"var {stmt.name};")
            else:
                self.emit(f"var {stmt.name} = {expr_to_str(stmt.init)};")
        elif isinstance(stmt, ast.Assign):
            self.emit(f"{expr_to_str(stmt.target)} {stmt.op} "
                      f"{expr_to_str(stmt.value)};")
        elif isinstance(stmt, ast.ExprStmt):
            self.emit(f"{expr_to_str(stmt.expr)};")
        elif isinstance(stmt, ast.If):
            self.emit(f"if ({expr_to_str(stmt.cond)}) {{")
            self.block_body(stmt.then_block)
            if stmt.else_block is None:
                self.emit("}")
            else:
                self.emit("} else {")
                self.block_body(stmt.else_block)
                self.emit("}")
        elif isinstance(stmt, ast.While):
            self.emit(f"while ({expr_to_str(stmt.cond)}) {{")
            self.block_body(stmt.body)
            self.emit("}")
        elif isinstance(stmt, ast.For):
            init = self._clause(stmt.init)
            cond = expr_to_str(stmt.cond) if stmt.cond is not None else ""
            update = self._clause(stmt.update)
            self.emit(f"for ({init}; {cond}; {update}) {{")
            self.block_body(stmt.body)
            self.emit("}")
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {expr_to_str(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self.emit("break;")
        elif isinstance(stmt, ast.Continue):
            self.emit("continue;")
        elif isinstance(stmt, ast.AsyncStmt):
            self.emit("async {")
            self.block_body(stmt.body)
            self.emit("}")
        elif isinstance(stmt, ast.FinishStmt):
            marker = "  // repair" if stmt.synthetic else ""
            self.emit(f"finish {{{marker}")
            self.block_body(stmt.body)
            self.emit("}")
        else:
            raise TypeError(f"unknown statement node {type(stmt).__name__}")

    def _clause(self, stmt) -> str:
        """Render a for-clause (no trailing semicolon)."""
        if stmt is None:
            return ""
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is None:
                return f"var {stmt.name}"
            return f"var {stmt.name} = {expr_to_str(stmt.init)}"
        if isinstance(stmt, ast.Assign):
            return (f"{expr_to_str(stmt.target)} {stmt.op} "
                    f"{expr_to_str(stmt.value)}")
        if isinstance(stmt, ast.ExprStmt):
            return expr_to_str(stmt.expr)
        raise TypeError(f"bad for-clause {type(stmt).__name__}")


def pretty(program: ast.Program) -> str:
    """Render a whole program back to mini-HJ source text."""
    printer = _Printer()
    for struct in program.structs.values():
        fields = ", ".join(struct.fields)
        printer.emit(f"struct {struct.name} {{ {fields} }}")
        printer.emit("")
    for gdecl in program.globals:
        if gdecl.init is None:
            printer.emit(f"var {gdecl.name};")
        else:
            printer.emit(f"var {gdecl.name} = {expr_to_str(gdecl.init)};")
    if program.globals:
        printer.emit("")
    for func in program.functions.values():
        params = ", ".join(p.name for p in func.params)
        printer.emit(f"def {func.name}({params}) {{")
        printer.block_body(func.body)
        printer.emit("}")
        printer.emit("")
    return "\n".join(printer.lines).rstrip() + "\n"


def stmt_to_str(stmt: ast.Stmt) -> str:
    """Render a single statement (used in reports and debugging)."""
    printer = _Printer()
    printer.stmt(stmt)
    return "\n".join(printer.lines)
