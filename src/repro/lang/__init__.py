"""The mini-HJ language: lexer, parser, AST, printer and transforms.

This subpackage is the *input language substrate* of the reproduction: a
small Habanero-Java-like task-parallel language with ``async`` and
``finish`` constructs, as described in Section 2.1 of the paper.
"""

from . import ast
from .elision import is_sequential, serial_elision
from .lexer import Lexer, tokenize
from .parser import Parser, parse
from .pretty import expr_to_str, pretty, stmt_to_str
from .transform import (
    ast_equal,
    clone_program,
    count_asyncs,
    count_finishes,
    insert_finish,
    strip_finishes,
    synthetic_finishes,
)
from .validate import validate

__all__ = [
    "ast",
    "tokenize",
    "Lexer",
    "parse",
    "Parser",
    "pretty",
    "stmt_to_str",
    "expr_to_str",
    "serial_elision",
    "is_sequential",
    "clone_program",
    "strip_finishes",
    "insert_finish",
    "count_finishes",
    "count_asyncs",
    "synthetic_finishes",
    "ast_equal",
    "validate",
]
