"""Command-line interface for the repair tool.

Mirrors the three-step usage of the paper's artifact (Appendix A):
instrument & execute (``detect``), analyze & repair (``repair``), and a
``measure`` command for the performance analysis, plus ``bench`` to
regenerate the paper's tables and figures.

Examples::

    repro-repair detect program.hj --arg 100
    repro-repair repair program.hj --arg 100 -o repaired.hj
    repro-repair measure repaired.hj --arg 1000 --processors 12
    repro-repair bench --quick --experiments table4 students
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from .bench import harness
from .errors import ReproError
from .graph import measure_program
from .lang import parse, serial_elision, strip_finishes, validate
from .races import detect_races
from .repair import repair_program
from .runtime import BUILTIN_NAMES, ENGINES, set_default_engine


def _parse_arg(text: str) -> Any:
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    if text in ("true", "false"):
        return text == "true"
    return text


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = parse(source, source_name=path)
    validate(program, BUILTIN_NAMES)
    return program


def _cmd_detect(options: argparse.Namespace) -> int:
    program = _load_program(options.file)
    if options.strip_finishes:
        program = strip_finishes(program)
    args = [_parse_arg(a) for a in options.arg]
    result = detect_races(program, args, algorithm=options.algorithm)
    print(f"executed {result.execution.ops} operations; "
          f"S-DPST has {result.dpst_node_count} nodes")
    print(result.report.summary())
    limit = options.limit
    for race in list(result.report)[:limit]:
        print("  " + race.describe())
    if len(result.report) > limit:
        print(f"  ... and {len(result.report) - limit} more")
    return 0 if result.report.is_race_free else 1


def _cmd_repair(options: argparse.Namespace) -> int:
    program = _load_program(options.file)
    if options.strip_finishes:
        program = strip_finishes(program)
    args = [_parse_arg(a) for a in options.arg]
    result = repair_program(program, args, algorithm=options.algorithm,
                            max_iterations=options.max_iterations,
                            reuse_trace=options.replay)
    print(result.summary(), file=sys.stderr)
    for iteration in result.iterations:
        how = "replayed" if iteration.detection.replayed else "executed"
        print(f"  iteration {iteration.index}: "
              f"{iteration.race_count} race(s), "
              f"{len(iteration.edits)} finish placement(s), "
              f"detection {iteration.detection.elapsed_s * 1000:.1f} ms "
              f"({how}), "
              f"placement {iteration.placement_time_s * 1000:.1f} ms",
              file=sys.stderr)
    source = result.repaired_source
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote repaired program to {options.output}", file=sys.stderr)
    else:
        print(source)
    return 0 if result.converged else 1


def _cmd_measure(options: argparse.Namespace) -> int:
    program = _load_program(options.file)
    args = [_parse_arg(a) for a in options.arg]
    if options.sequential:
        program = serial_elision(program)
    result = measure_program(program, args, processors=options.processors)
    print(f"T1   (work)            = {result.work}")
    print(f"Tinf (critical path)   = {result.span}")
    print(f"T{options.processors}  (greedy schedule)  = {result.makespan}")
    print(f"speedup     = {result.speedup:.2f}")
    print(f"parallelism = {result.parallelism:.2f}")
    return 0


def _cmd_coverage(options: argparse.Namespace) -> int:
    from .repair import measure_coverage

    program = _load_program(options.file)
    inputs = [[_parse_arg(a) for a in spec.split(",")] if spec else []
              for spec in (options.inputs or [""])]
    report = measure_coverage(program, inputs)
    print(report.summary())
    return 0 if report.is_adequate else 1


def _cmd_dot(options: argparse.Namespace) -> int:
    from .dpst.builder import DpstBuilder
    from .graph import ComputationGraph
    from .runtime import Interpreter
    from . import viz

    program = _load_program(options.file)
    args = [_parse_arg(a) for a in options.arg]
    if options.view == "dpst":
        result = detect_races(program, args)
        print(viz.dpst_to_dot(result.dpst, result.report,
                              max_nodes=options.max_nodes))
    else:
        builder = DpstBuilder()
        Interpreter(program, builder).run(args)
        graph = ComputationGraph.from_dpst(builder.finish())
        print(viz.computation_graph_to_dot(graph))
    return 0


def _cmd_bench(options: argparse.Namespace) -> int:
    subset = options.benchmarks or None
    full = not options.quick
    experiments = options.experiments or ["table1", "fig16", "table2",
                                          "table3", "table4", "students"]
    for experiment in experiments:
        if experiment == "table1":
            print(harness.format_rows(harness.table1(subset),
                                      "Table 1: benchmark suite"))
        elif experiment == "fig16":
            rows = harness.figure16(subset, use_perf_args=full)
            print(harness.format_rows(
                rows, "Figure 16: simulated execution times (12 workers)"))
            print()
            print(harness.render_figure16_chart(rows))
        elif experiment == "table2":
            print(harness.format_rows(
                harness.table2(subset, use_repair_args=full),
                "Table 2: time for program repair (MRW)"))
        elif experiment == "table3":
            print(harness.format_rows(
                harness.table3(subset, use_repair_args=full),
                "Table 3: SRW vs MRW repair time"))
        elif experiment == "table4":
            print(harness.format_rows(
                harness.table4(subset, use_repair_args=full),
                "Table 4: races detected, SRW vs MRW"))
        elif experiment == "students":
            result = harness.students()
            print("Section 7.4: student homework grading")
            print(f"  total={result['total']} racy={result['racy']} "
                  f"over-synchronized={result['over_synchronized']} "
                  f"matched={result['matched']}")
        else:
            print(f"unknown experiment {experiment!r}", file=sys.stderr)
            return 2
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-repair",
        description="Test-driven repair of data races in async/finish "
                    "programs (PLDI 2014 reproduction)")
    parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="execution engine for every run this command performs: "
             "'compiled' (closure-compiled, the default) or 'tree' "
             "(the reference tree-walking interpreter); both produce "
             "identical results")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p) -> None:
        p.add_argument("file", help="mini-HJ source file")
        p.add_argument("--arg", action="append", default=[],
                       help="argument passed to main() (repeatable)")
        p.add_argument("--algorithm", choices=("mrw", "srw"), default="mrw",
                       help="ESP-bags variant (default: mrw)")
        p.add_argument("--strip-finishes", action="store_true",
                       help="remove existing finish statements first")

    p_detect = sub.add_parser("detect", help="run the race detector")
    add_common(p_detect)
    p_detect.add_argument("--limit", type=int, default=20,
                          help="max races to print (default 20)")
    p_detect.set_defaults(func=_cmd_detect)

    p_repair = sub.add_parser("repair", help="repair the program")
    add_common(p_repair)
    p_repair.add_argument("-o", "--output", help="write repaired source here")
    p_repair.add_argument("--max-iterations", type=int, default=20)
    p_repair.add_argument("--replay", dest="replay", action="store_true",
                          default=None,
                          help="replay the recorded iteration-0 trace for "
                               "re-detections (the default; REPRO_REPLAY=0 "
                               "flips the process default)")
    p_repair.add_argument("--no-replay", dest="replay", action="store_false",
                          help="re-execute the program for every "
                               "re-detection instead of replaying the trace")
    p_repair.set_defaults(func=_cmd_repair)

    p_measure = sub.add_parser(
        "measure", help="simulate parallel execution (work/span/T_P)")
    p_measure.add_argument("file")
    p_measure.add_argument("--arg", action="append", default=[])
    p_measure.add_argument("--processors", type=int, default=12)
    p_measure.add_argument("--sequential", action="store_true",
                           help="measure the serial elision instead")
    p_measure.set_defaults(func=_cmd_measure)

    p_cov = sub.add_parser(
        "coverage",
        help="check whether a set of inputs exercises all parallelism")
    p_cov.add_argument("file")
    p_cov.add_argument("--inputs", nargs="*", metavar="A,B,...",
                       help='one comma-separated arg list per input, '
                            'e.g. --inputs 10 200 "5,true"')
    p_cov.set_defaults(func=_cmd_coverage)

    p_dot = sub.add_parser(
        "dot", help="emit Graphviz DOT for the S-DPST or computation DAG")
    p_dot.add_argument("file")
    p_dot.add_argument("--arg", action="append", default=[])
    p_dot.add_argument("--view", choices=("dpst", "graph"), default="dpst")
    p_dot.add_argument("--max-nodes", type=int, default=400)
    p_dot.set_defaults(func=_cmd_dot)

    p_bench = sub.add_parser("bench", help="regenerate paper experiments")
    p_bench.add_argument("--benchmarks", nargs="*",
                         help="subset of benchmark names")
    p_bench.add_argument("--experiments", nargs="*",
                         help="table1 fig16 table2 table3 table4 students")
    p_bench.add_argument("--quick", action="store_true",
                         help="use tiny test inputs instead of paper sizes")
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.engine:
        set_default_engine(options.engine)
    try:
        return options.func(options)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
