"""Command-line interface for the repair tool.

Mirrors the three-step usage of the paper's artifact (Appendix A):
instrument & execute (``detect``), analyze & repair (``repair``), and a
``measure`` command for the performance analysis, plus ``bench`` to
regenerate the paper's tables and figures.

Examples::

    repro-repair detect program.hj --arg 100
    repro-repair repair program.hj --arg 100 -o repaired.hj
    repro-repair measure repaired.hj --arg 1000 --processors 12
    repro-repair profile program.hj --arg 100 --trace-out trace.json
    repro-repair bench --quick --experiments table4 students
    repro-repair batch submissions/ --workers 4 --arg 40 --json
    repro-repair batch submissions/ --queue q.db --resume --arg 40
    repro-repair serve --workers 4 --port 8321
    repro-repair serve --queue q.db --cache-dir cache/ --cache-max-mb 256
    repro-repair queue submit submissions/ --queue q.db --arg 40
    repro-repair queue status --queue q.db

The batch service verbs (``batch``, ``serve``, ``queue``) and the
``--json`` output mode of ``detect``/``repair`` all speak the same
machine-readable schema (:class:`repro.service.jobs.JobResult`).  With
``--queue`` the work lands in a durable SQLite-WAL queue that any number
of ``serve --queue`` nodes drain cooperatively (DESIGN.md §13).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List, Optional, Sequence, Tuple

from . import telemetry
from .bench import harness
from .errors import (
    LexError,
    ParseError,
    ReproError,
    SourceError,
    ValidationError,
)
from .graph import measure_program
from .lang import parse, serial_elision, strip_finishes, validate
from .races import detect_races
from .repair import repair_program
from .runtime import BUILTIN_NAMES, ENGINES, set_default_engine


class _Diagnostic(Exception):
    """A fatal CLI condition already formatted as a one-line message."""


def _parse_arg(text: str) -> Any:
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    if text in ("true", "false"):
        return text == "true"
    return text


def _source_error_line(path: str, error: SourceError) -> str:
    """``file:line:col: kind: message`` — the compiler-style diagnostic."""
    kind = "syntax error"
    if isinstance(error, LexError):
        kind = "lex error"
    elif isinstance(error, ValidationError):
        kind = "validation error"
    elif not isinstance(error, ParseError):  # pragma: no cover - defensive
        kind = "error"
    location = path
    if error.line is not None:
        location += f":{error.line}"
        if error.column is not None:
            location += f":{error.column}"
    return f"{location}: {kind}: {error.bare_message}"


def _read_source(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as error:
        reason = error.strerror or str(error)
        raise _Diagnostic(f"{path}: error: {reason}") from error


def _load_program(path: str):
    source = _read_source(path)
    try:
        program = parse(source, source_name=path)
        validate(program, BUILTIN_NAMES)
    except SourceError as error:
        raise _Diagnostic(_source_error_line(path, error)) from error
    return program


def _job_from_options(kind: str, options: argparse.Namespace) -> "Job":
    """The service job equivalent of one detect/repair invocation."""
    from .service import Job

    return Job(
        kind, _read_source(options.file), source_name=options.file,
        args=[_parse_arg(a) for a in options.arg],
        algorithm=options.algorithm,
        strip_finishes=options.strip_finishes,
        max_iterations=getattr(options, "max_iterations", 20),
        replay=getattr(options, "replay", None),
        incremental=getattr(options, "incremental", None))


def _run_json_mode(kind: str, options: argparse.Namespace) -> int:
    """Shared ``--json`` path: run via the service's job runner so the
    CLI emits exactly the batch/HTTP result schema, errors included."""
    from .service import run_job

    result = run_job(_job_from_options(kind, options))
    print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    output = getattr(options, "output", None)
    if output and result.status == "ok" and kind == "repair":
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(result.result["repaired_source"])
    if result.status != "ok":
        return 2
    if kind == "detect":
        return 0 if result.result["race_free"] else 1
    return 0 if result.result["converged"] else 1


def _print_timings(tel: "telemetry.TelemetrySession") -> None:
    """The ``--timings`` report: span tree + counters, to stderr."""
    print(telemetry.render_text(tel), file=sys.stderr)


def _cmd_detect(options: argparse.Namespace) -> int:
    if options.json:
        return _run_json_mode("detect", options)
    if options.timings:
        with telemetry.session(f"detect:{options.file}") as tel:
            code = _detect_text(options)
        _print_timings(tel)
        return code
    return _detect_text(options)


def _detect_text(options: argparse.Namespace) -> int:
    program = _load_program(options.file)
    if options.strip_finishes:
        program = strip_finishes(program)
    args = [_parse_arg(a) for a in options.arg]
    result = detect_races(program, args, algorithm=options.algorithm)
    print(f"executed {result.execution.ops} operations; "
          f"S-DPST has {result.dpst_node_count} nodes")
    print(result.report.summary())
    limit = options.limit
    for race in list(result.report)[:limit]:
        print("  " + race.describe())
    if len(result.report) > limit:
        print(f"  ... and {len(result.report) - limit} more")
    return 0 if result.report.is_race_free else 1


def _cmd_repair(options: argparse.Namespace) -> int:
    if options.json:
        return _run_json_mode("repair", options)
    if options.timings:
        with telemetry.session(f"repair:{options.file}") as tel:
            code = _repair_text(options)
        _print_timings(tel)
        return code
    return _repair_text(options)


def _repair_text(options: argparse.Namespace) -> int:
    program = _load_program(options.file)
    if options.strip_finishes:
        program = strip_finishes(program)
    args = [_parse_arg(a) for a in options.arg]
    result = repair_program(program, args, algorithm=options.algorithm,
                            max_iterations=options.max_iterations,
                            reuse_trace=options.replay,
                            incremental=options.incremental)
    print(result.summary(), file=sys.stderr)
    if result.replay_fallbacks:
        print(f"  {len(result.replay_fallbacks)} replay fallback(s) to "
              "re-execution:", file=sys.stderr)
        for reason in result.replay_fallbacks:
            print(f"    - {reason}", file=sys.stderr)
    for iteration in result.iterations:
        how = "replayed" if iteration.detection.replayed else "executed"
        print(f"  iteration {iteration.index}: "
              f"{iteration.race_count} race(s), "
              f"{len(iteration.edits)} finish placement(s), "
              f"detection {iteration.detection.elapsed_s * 1000:.1f} ms "
              f"({how}), "
              f"placement {iteration.placement_time_s * 1000:.1f} ms",
              file=sys.stderr)
    source = result.repaired_source
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote repaired program to {options.output}", file=sys.stderr)
    else:
        print(source)
    return 0 if result.converged else 1


def _cmd_measure(options: argparse.Namespace) -> int:
    program = _load_program(options.file)
    args = [_parse_arg(a) for a in options.arg]
    if options.sequential:
        program = serial_elision(program)
    result = measure_program(program, args, processors=options.processors)
    print(f"T1   (work)            = {result.work}")
    print(f"Tinf (critical path)   = {result.span}")
    print(f"T{options.processors}  (greedy schedule)  = {result.makespan}")
    print(f"speedup     = {result.speedup:.2f}")
    print(f"parallelism = {result.parallelism:.2f}")
    return 0


def _cmd_profile(options: argparse.Namespace) -> int:
    """Run one pipeline under a telemetry session and report it: span
    tree + counters on stdout, optionally a Chrome ``trace_event`` JSON
    file (chrome://tracing / https://ui.perfetto.dev) via
    ``--trace-out``."""
    args = [_parse_arg(a) for a in options.arg]
    extra_events = None
    with telemetry.session(f"profile:{options.file}") as tel:
        program = _load_program(options.file)
        if options.strip_finishes:
            program = strip_finishes(program)
        if options.kind == "detect":
            detect_races(program, args, algorithm=options.algorithm)
        elif options.kind == "repair":
            repair_program(program, args, algorithm=options.algorithm,
                           max_iterations=options.max_iterations)
        else:  # measure: also export the simulated schedule as a
            # second trace process (one row per virtual processor).
            schedule = measure_program(program, args,
                                       processors=options.processors,
                                       keep_timeline=True)
            extra_events = telemetry.schedule_trace_events(schedule)
    print(telemetry.render_text(tel))
    if options.trace_out:
        telemetry.write_chrome_trace(tel, options.trace_out,
                                     extra_events=extra_events)
        print(f"wrote Chrome trace to {options.trace_out} "
              "(load in chrome://tracing or https://ui.perfetto.dev)",
              file=sys.stderr)
    return 0


def _cmd_coverage(options: argparse.Namespace) -> int:
    from .repair import measure_coverage

    program = _load_program(options.file)
    inputs = [[_parse_arg(a) for a in spec.split(",")] if spec else []
              for spec in (options.inputs or [""])]
    report = measure_coverage(program, inputs)
    print(report.summary())
    return 0 if report.is_adequate else 1


def _cmd_dot(options: argparse.Namespace) -> int:
    from .dpst.builder import DpstBuilder
    from .graph import ComputationGraph
    from .runtime import Interpreter
    from . import viz

    program = _load_program(options.file)
    args = [_parse_arg(a) for a in options.arg]
    if options.view == "dpst":
        result = detect_races(program, args)
        print(viz.dpst_to_dot(result.dpst, result.report,
                              max_nodes=options.max_nodes))
    else:
        builder = DpstBuilder()
        Interpreter(program, builder).run(args)
        graph = ComputationGraph.from_dpst(builder.finish())
        print(viz.computation_graph_to_dot(graph))
    return 0


def _cmd_bench(options: argparse.Namespace) -> int:
    subset = options.benchmarks or None
    full = not options.quick
    experiments = options.experiments or ["table1", "fig16", "table2",
                                          "table3", "table4", "students"]
    for experiment in experiments:
        if experiment == "table1":
            print(harness.format_rows(harness.table1(subset),
                                      "Table 1: benchmark suite"))
        elif experiment == "fig16":
            rows = harness.figure16(subset, use_perf_args=full)
            print(harness.format_rows(
                rows, "Figure 16: simulated execution times (12 workers)"))
            print()
            print(harness.render_figure16_chart(rows))
        elif experiment == "table2":
            print(harness.format_rows(
                harness.table2(subset, use_repair_args=full),
                "Table 2: time for program repair (MRW)"))
        elif experiment == "table3":
            print(harness.format_rows(
                harness.table3(subset, use_repair_args=full),
                "Table 3: SRW vs MRW repair time"))
        elif experiment == "table4":
            print(harness.format_rows(
                harness.table4(subset, use_repair_args=full),
                "Table 4: races detected, SRW vs MRW"))
        elif experiment == "students":
            result = harness.students()
            print("Section 7.4: student homework grading")
            print(f"  total={result['total']} racy={result['racy']} "
                  f"over-synchronized={result['over_synchronized']} "
                  f"matched={result['matched']}")
        else:
            print(f"unknown experiment {experiment!r}", file=sys.stderr)
            return 2
        print()
    return 0


def _collect_batch_files(paths: Sequence[str]) -> List[str]:
    """Expand directory arguments into their ``.hj`` files, sorted."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            entries = sorted(
                name for name in os.listdir(path)
                if name.endswith(".hj")
                and os.path.isfile(os.path.join(path, name)))
            if not entries:
                raise _Diagnostic(
                    f"{path}: error: directory contains no .hj files")
            files.extend(os.path.join(path, name) for name in entries)
        else:
            files.append(path)
    if not files:
        raise _Diagnostic("error: no input files")
    return files


def _batch_phase_table(results) -> Optional[str]:
    """Aggregate executed jobs' per-phase timings into one summary
    table (count / mean / p50 / p95 / max milliseconds per phase)."""
    samples = {}
    for result in results:
        for phase, seconds in (result.timings or {}).items():
            samples.setdefault(phase, []).append(seconds)
    if not samples:
        return None
    rows = [(phase, telemetry.summarize_samples(values))
            for phase, values in sorted(samples.items())]
    width = max(len("phase"), max(len(phase) for phase, _ in rows))
    lines = ["  {0}  count   mean ms    p50 ms    p95 ms    max ms"
             .format("phase".ljust(width))]
    for phase, s in rows:
        lines.append(
            f"  {phase.ljust(width)}  {s['count']:5d}  "
            f"{s['mean_ms']:8.2f}  {s['p50_ms']:8.2f}  "
            f"{s['p95_ms']:8.2f}  {s['max_ms']:8.2f}")
    return "\n".join(lines)


def _batch_jobs(options: argparse.Namespace) -> List["Job"]:
    from .service import Job

    files = _collect_batch_files(options.paths)
    args = [_parse_arg(a) for a in options.arg]
    # Every batch job gets a distributed-trace identity at submission;
    # it only produces log records when a trace log is enabled.
    return [Job(options.kind, _read_source(path), source_name=path,
                args=args, algorithm=options.algorithm,
                strip_finishes=options.strip_finishes,
                max_iterations=options.max_iterations,
                replay=options.replay, incremental=options.incremental,
                timeout_s=options.timeout,
                trace=telemetry.TraceContext.mint())
            for path in files]


def _enable_trace_log(options: argparse.Namespace,
                      node: Optional[str] = None) -> None:
    """Honour ``--trace-log`` for the service verbs that run work in
    this process (batch, queue submit)."""
    if getattr(options, "trace_log", None):
        telemetry.set_tracelog(options.trace_log, node=node)


def _emit_submit_spans(jobs, ids, ts: Optional[float] = None) -> None:
    """Root each batch job's trace with a ``submit`` span (the parent
    every downstream queue/pool/worker span hangs off).  Pass the
    pre-enqueue timestamp as ``ts`` so the span starts no later than
    the children it anchors."""
    log = telemetry.get_tracelog()
    if log is None:
        return
    import time as _time

    now = ts if ts is not None else _time.time()
    for job, job_id in zip(jobs, ids):
        trace = telemetry.TraceContext.from_dict(job.trace)
        if trace is None:  # pragma: no cover - defensive
            continue
        try:
            log.span("submit", now, now, trace.trace_id,
                     span_id=trace.span_id, job=job.source_name,
                     job_id=str(job_id))
        except Exception:  # pragma: no cover - tracing is best-effort
            pass


def _batch_report(options: argparse.Namespace, results) -> int:
    """The shared tail of both batch modes: JSON lines, status summary,
    phase table, exit code."""
    if options.json:
        # JSON Lines, one result per input file in input order.
        for result in results:
            print(json.dumps(result.to_dict(), sort_keys=True))
    by_status = {}
    for result in results:
        by_status[result.status] = by_status.get(result.status, 0) + 1
    failed = sum(1 for r in results
                 if r.status != "ok"
                 or (r.kind == "repair"
                     and not (r.result or {}).get("converged")))
    summary = ", ".join(f"{status}: {count}"
                        for status, count in sorted(by_status.items()))
    print(f"batch: {len(results)} job(s) [{summary}] with "
          f"{options.workers} worker(s)", file=sys.stderr)
    table = _batch_phase_table(results)
    if table is not None:
        print("phase latency over executed jobs:", file=sys.stderr)
        print(table, file=sys.stderr)
    return 1 if failed else 0


def _write_repaired(options: argparse.Namespace, source_name: str,
                    result) -> None:
    if (options.output_dir and result.status == "ok"
            and options.kind == "repair"):
        base = os.path.basename(source_name)
        target = os.path.join(options.output_dir, base)
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(result.result["repaired_source"])


def _cmd_batch_queue(options: argparse.Namespace) -> int:
    """``batch --queue``: checkpoint the corpus in the durable queue and
    drain it with a local node.  Interrupt at any point — including
    SIGKILL — and re-run with ``--resume``: completed jobs keep their
    results, only the remainder executes."""
    from .service import (
        JobQueue,
        JobResult,
        QueueWorker,
        ResultCache,
        batch_dedupe_key,
        derive_batch_id,
    )

    _enable_trace_log(options)
    jobs = _batch_jobs(options)
    if options.output_dir:
        os.makedirs(options.output_dir, exist_ok=True)
    queue = JobQueue(options.queue, lease_s=options.lease,
                     max_attempts=options.max_attempts)
    batch_id = options.batch_id or derive_batch_id(jobs)
    already_done = {row["source_name"]
                    for row in queue.batch_rows(batch_id)
                    if row["state"] in ("done", "failed", "cancelled")}
    if already_done and not options.resume:
        raise _Diagnostic(
            f"error: batch {batch_id} already has "
            f"{len(already_done)} finished job(s) in {options.queue}; "
            "re-run with --resume to continue it (or --batch-id for a "
            "fresh batch)")
    import time as _time

    submitted_at = _time.time()
    ids = queue.submit_many(
        ((job, batch_dedupe_key(batch_id, job)) for job in jobs),
        batch_id=batch_id)
    _emit_submit_spans(jobs, ids, ts=submitted_at)
    pending = queue.unfinished(batch_id)
    print(f"batch {batch_id}: {len(jobs)} job(s), "
          f"{len(jobs) - pending} already finished, {pending} to run",
          file=sys.stderr)
    cache = None
    if not options.no_cache:
        cache = ResultCache(options.cache_dir,
                            max_mb=options.cache_max_mb)
    worker = QueueWorker(queue, workers=options.workers, cache=cache,
                         lease_s=options.lease)
    try:
        worker.run_until_drained(batch_id)
    except KeyboardInterrupt:
        worker.stop()
        remaining = queue.unfinished(batch_id)
        print(f"interrupted: {remaining} job(s) unfinished; re-run with "
              "--resume to continue this batch", file=sys.stderr)
        return 1
    results = []
    for row in queue.batch_rows(batch_id):
        if row["result"] is None:  # pragma: no cover - defensive
            continue
        result = JobResult.from_dict(row["result"])
        results.append(result)
        if not options.json or options.verbose:
            print(result.describe(), file=sys.stderr)
        _write_repaired(options, row["source_name"], result)
    # Surface the queue-tier events that leave no row state behind —
    # the counters /metrics exposes, for the single-shot CLI path.
    qc = queue.counters_snapshot()
    print(f"queue: dedupe hits {qc['dedupe_hits']}, expired leases "
          f"re-offered {qc['expired_reclaims']}, retry budgets "
          f"exhausted {qc['expired_failures']}; heartbeats sent "
          f"{worker.heartbeats_sent}, missed {worker.heartbeats_missed}",
          file=sys.stderr)
    if cache is not None:
        print(f"cache: hits {cache.stats.hits}/{cache.stats.lookups}, "
              f"evictions {cache.stats_dict()['evictions']}",
              file=sys.stderr)
    return _batch_report(options, results)


def _cmd_batch(options: argparse.Namespace) -> int:
    from .service import ResultCache, WorkerPool

    if options.resume and not options.queue:
        raise _Diagnostic("error: --resume requires --queue (the batch "
                          "checkpoint lives in the queue database)")
    if options.queue:
        return _cmd_batch_queue(options)
    _enable_trace_log(options)
    jobs = _batch_jobs(options)
    cache = None
    if not options.no_cache:
        cache = ResultCache(options.cache_dir,
                            max_mb=options.cache_max_mb)
    if options.output_dir:
        os.makedirs(options.output_dir, exist_ok=True)

    order = {id(job): index for index, job in enumerate(jobs)}
    collected: List[Optional[Tuple[str, "Job", Any]]] = [None] * len(jobs)
    interrupted = False
    with WorkerPool(workers=options.workers, cache=cache) as pool:
        ids = [pool.submit(job) for job in jobs]
        _emit_submit_spans(jobs, ids)
        id_to_job = dict(zip(ids, jobs))
        remaining = set(ids)
        while remaining:
            try:
                item = pool.next_completed(timeout=0.2)
            except KeyboardInterrupt:
                if interrupted:
                    raise  # second ^C: abandon the drain
                interrupted = True
                cancelled = pool.cancel_pending()
                print(f"interrupted: cancelled {len(cancelled)} queued "
                      "job(s), draining in-flight jobs "
                      "(^C again to abort)", file=sys.stderr)
                continue
            if item is None:
                continue
            job_id, result = item
            if job_id not in remaining:
                continue
            remaining.discard(job_id)
            job = id_to_job[job_id]
            collected[order[id(job)]] = (job_id, job, result)
            if not options.json or options.verbose:
                print(result.describe(), file=sys.stderr)
            _write_repaired(options, job.source_name, result)

    results = [entry[2] for entry in collected if entry is not None]
    if cache is not None:
        stats = cache.stats
        print(f"cache hits {stats.hits}/{stats.lookups} "
              f"({stats.hit_rate:.0%}), evictions "
              f"{cache.stats_dict()['evictions']}", file=sys.stderr)
    code = _batch_report(options, results)
    return 1 if interrupted else code


def _cmd_serve(options: argparse.Namespace) -> int:
    from .service import serve

    auth_token = options.auth_token \
        or os.environ.get("REPRO_AUTH_TOKEN") or None
    serve(workers=options.workers, host=options.host, port=options.port,
          cache_dir=options.cache_dir, cache_max_mb=options.cache_max_mb,
          queue_path=options.queue, node_id=options.node_id,
          lease_s=options.lease, auth_token=auth_token,
          rate_limit=options.rate_limit, rate_burst=options.rate_burst,
          trace_log=options.trace_log,
          announce=lambda line: print(line, file=sys.stderr))
    return 0


def _cmd_queue_submit(options: argparse.Namespace) -> int:
    from .service import JobQueue, batch_dedupe_key, derive_batch_id

    _enable_trace_log(options)
    jobs = _batch_jobs(options)
    queue = JobQueue(options.queue, max_attempts=options.max_attempts)
    batch_id = options.batch_id or derive_batch_id(jobs)
    import time as _time

    submitted_at = _time.time()
    ids = queue.submit_many(
        ((job, batch_dedupe_key(batch_id, job)) for job in jobs),
        batch_id=batch_id, tenant=options.tenant)
    _emit_submit_spans(jobs, ids, ts=submitted_at)
    if options.json:
        print(json.dumps({"batch_id": batch_id, "ids": ids},
                         sort_keys=True))
    else:
        counts = queue.counts(batch_id)
        print(f"submitted {len(ids)} job(s) to {options.queue} as batch "
              f"{batch_id} ({counts['queued']} queued, "
              f"{counts['done']} already done)", file=sys.stderr)
    return 0


def _cmd_queue_status(options: argparse.Namespace) -> int:
    from .service import JobQueue

    queue = JobQueue(options.queue)
    if options.id is not None:
        row = queue.status(options.id)
        if row is None:
            raise _Diagnostic(
                f"error: no job {options.id} in {options.queue}")
        result = queue.result(options.id)
        payload = dict(row)
        payload["result"] = result.to_dict() if result else None
        if options.json:
            print(json.dumps(payload, sort_keys=True))
        else:
            print(f"job {row['id']}: {row['state']} "
                  f"(attempts {row['attempts']}/{row['max_attempts']})")
            if result is not None:
                print(result.describe())
        return 0
    counts = queue.counts(options.batch_id)
    if options.json:
        print(json.dumps(counts, sort_keys=True))
    else:
        scope = f"batch {options.batch_id}" if options.batch_id \
            else options.queue
        print(f"{scope}: " + ", ".join(
            f"{state}: {counts[state]}"
            for state in ("queued", "leased", "done", "failed",
                          "cancelled")))
    return 0 if counts["queued"] + counts["leased"] == 0 else 1


def _cmd_trace_merge(options: argparse.Namespace) -> int:
    """``trace merge``: join N per-node trace logs into one Chrome
    ``trace_event`` document that chrome://tracing / Perfetto load."""
    missing = [path for path in options.logs if not os.path.exists(path)]
    if missing:
        raise _Diagnostic(
            f"error: no such trace log: {', '.join(missing)}")
    document = telemetry.merge_trace_logs(options.logs)
    errors = telemetry.validate_chrome_trace(document)
    if errors:  # pragma: no cover - merge always emits valid documents
        raise _Diagnostic("error: merged trace is not a valid Chrome "
                          "trace: " + "; ".join(errors[:3]))
    with open(options.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    meta = document["otherData"]
    print(f"merged {meta['records']} record(s) from "
          f"{len(options.logs)} log(s) across "
          f"{len(meta['nodes'])} node(s) into {options.output} "
          "(load in chrome://tracing or https://ui.perfetto.dev)",
          file=sys.stderr)
    return 0


def _cmd_trace_show(options: argparse.Namespace) -> int:
    """``trace show``: one job's cross-process span tree with per-hop
    latency, reconstructed from the per-node logs."""
    records = []
    for path in options.logs:
        records.extend(telemetry.read_records(path))
    if not records:
        raise _Diagnostic("error: no trace records in "
                          + ", ".join(options.logs))
    trace_id, roots = telemetry.trace_tree(records, options.selector)
    if trace_id is None:
        raise _Diagnostic(
            f"error: {options.selector!r} does not select exactly one "
            "trace (use a trace id prefix, a queue/job id, or a source "
            "file name)")
    print(telemetry.render_trace_tree(trace_id, roots, events=records))
    return 0


def _cmd_queue_drain(options: argparse.Namespace) -> int:
    from .service import JobQueue

    queue = JobQueue(options.queue)
    cancelled = queue.drain(options.batch_id)
    print(f"drained {cancelled} queued job(s) from {options.queue}"
          + (f" (batch {options.batch_id})" if options.batch_id else ""),
          file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-repair",
        description="Test-driven repair of data races in async/finish "
                    "programs (PLDI 2014 reproduction)")
    parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="execution engine for every run this command performs: "
             "'compiled' (closure-compiled, the default) or 'tree' "
             "(the reference tree-walking interpreter); both produce "
             "identical results")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p) -> None:
        p.add_argument("file", help="mini-HJ source file")
        p.add_argument("--arg", action="append", default=[],
                       help="argument passed to main() (repeatable)")
        p.add_argument("--algorithm", choices=("mrw", "srw"), default="mrw",
                       help="ESP-bags variant (default: mrw)")
        p.add_argument("--strip-finishes", action="store_true",
                       help="remove existing finish statements first")

    p_detect = sub.add_parser("detect", help="run the race detector")
    add_common(p_detect)
    p_detect.add_argument("--limit", type=int, default=20,
                          help="max races to print (default 20)")
    p_detect.add_argument("--json", action="store_true",
                          help="emit the machine-readable JobResult JSON "
                               "(the batch/HTTP schema) instead of text")
    p_detect.add_argument("--timings", action="store_true",
                          help="print the telemetry span tree and runtime "
                               "counters to stderr afterwards")
    p_detect.set_defaults(func=_cmd_detect)

    p_repair = sub.add_parser("repair", help="repair the program")
    add_common(p_repair)
    p_repair.add_argument("-o", "--output", help="write repaired source here")
    p_repair.add_argument("--max-iterations", type=int, default=20)
    p_repair.add_argument("--json", action="store_true",
                          help="emit the machine-readable JobResult JSON "
                               "(the batch/HTTP schema) instead of text")
    p_repair.add_argument("--replay", dest="replay", action="store_true",
                          default=None,
                          help="replay the recorded iteration-0 trace for "
                               "re-detections (the default; REPRO_REPLAY=0 "
                               "flips the process default)")
    p_repair.add_argument("--no-replay", dest="replay", action="store_false",
                          help="re-execute the program for every "
                               "re-detection instead of replaying the trace")
    p_repair.add_argument("--incremental", dest="incremental",
                          action="store_true", default=None,
                          help="re-detect incrementally against the previous "
                               "iteration's detector state (the default; "
                               "REPRO_INCREMENTAL=0 flips the process "
                               "default); requires replay")
    p_repair.add_argument("--no-incremental", dest="incremental",
                          action="store_false",
                          help="re-scan the whole trace on every replayed "
                               "re-detection")
    p_repair.add_argument("--timings", action="store_true",
                          help="print the telemetry span tree and runtime "
                               "counters to stderr afterwards")
    p_repair.set_defaults(func=_cmd_repair)

    p_profile = sub.add_parser(
        "profile",
        help="run a pipeline under telemetry and export the span tree, "
             "optionally as Chrome trace_event JSON")
    add_common(p_profile)
    p_profile.add_argument("--kind",
                           choices=("detect", "repair", "measure"),
                           default="repair",
                           help="which pipeline to profile "
                                "(default: repair)")
    p_profile.add_argument("--max-iterations", type=int, default=20)
    p_profile.add_argument("--processors", type=int, default=12,
                           help="simulated workers (measure profiles only)")
    p_profile.add_argument("--trace-out", metavar="FILE",
                           help="write a Chrome trace_event JSON file "
                                "(open in chrome://tracing or Perfetto); "
                                "measure profiles add the simulated "
                                "schedule as a second trace process")
    p_profile.set_defaults(func=_cmd_profile)

    p_measure = sub.add_parser(
        "measure", help="simulate parallel execution (work/span/T_P)")
    p_measure.add_argument("file")
    p_measure.add_argument("--arg", action="append", default=[])
    p_measure.add_argument("--processors", type=int, default=12)
    p_measure.add_argument("--sequential", action="store_true",
                           help="measure the serial elision instead")
    p_measure.set_defaults(func=_cmd_measure)

    p_cov = sub.add_parser(
        "coverage",
        help="check whether a set of inputs exercises all parallelism")
    p_cov.add_argument("file")
    p_cov.add_argument("--inputs", nargs="*", metavar="A,B,...",
                       help='one comma-separated arg list per input, '
                            'e.g. --inputs 10 200 "5,true"')
    p_cov.set_defaults(func=_cmd_coverage)

    p_dot = sub.add_parser(
        "dot", help="emit Graphviz DOT for the S-DPST or computation DAG")
    p_dot.add_argument("file")
    p_dot.add_argument("--arg", action="append", default=[])
    p_dot.add_argument("--view", choices=("dpst", "graph"), default="dpst")
    p_dot.add_argument("--max-nodes", type=int, default=400)
    p_dot.set_defaults(func=_cmd_dot)

    p_bench = sub.add_parser("bench", help="regenerate paper experiments")
    p_bench.add_argument("--benchmarks", nargs="*",
                         help="subset of benchmark names")
    p_bench.add_argument("--experiments", nargs="*",
                         help="table1 fig16 table2 table3 table4 students")
    p_bench.add_argument("--quick", action="store_true",
                         help="use tiny test inputs instead of paper sizes")
    p_bench.set_defaults(func=_cmd_bench)

    def add_job_args(p) -> None:
        """The per-job knobs shared by ``batch`` and ``queue submit``."""
        p.add_argument("paths", nargs="+", metavar="dir|file",
                       help="mini-HJ files, or directories of .hj files")
        p.add_argument("--kind", choices=("detect", "repair", "measure"),
                       default="repair",
                       help="what to run per program (default: repair)")
        p.add_argument("--arg", action="append", default=[],
                       help="argument passed to every program's main() "
                            "(repeatable)")
        p.add_argument("--algorithm", choices=("mrw", "srw"),
                       default="mrw")
        p.add_argument("--strip-finishes", action="store_true")
        p.add_argument("--max-iterations", type=int, default=20)
        p.add_argument("--replay", dest="replay", action="store_true",
                       default=None)
        p.add_argument("--no-replay", dest="replay", action="store_false")
        p.add_argument("--incremental", dest="incremental",
                       action="store_true", default=None)
        p.add_argument("--no-incremental", dest="incremental",
                       action="store_false")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds")

    def add_cache_args(p) -> None:
        p.add_argument("--cache-dir",
                       help="persist the content-addressed result cache "
                            "in this directory (shared across nodes)")
        p.add_argument("--cache-max-mb", type=float, default=None,
                       help="bound the on-disk cache; least-recently-"
                            "used entries are evicted beyond this size")

    def add_trace_log_arg(p) -> None:
        p.add_argument("--trace-log", metavar="FILE", default=None,
                       help="append distributed-trace records (JSONL) "
                            "to this per-node file; merge node logs "
                            "with 'repro-repair trace merge'")

    p_batch = sub.add_parser(
        "batch",
        help="run a job over many programs on a worker pool")
    add_job_args(p_batch)
    p_batch.add_argument("--workers", type=int, default=1,
                         help="worker processes (default 1)")
    p_batch.add_argument("--json", action="store_true",
                         help="print a JSON array of JobResults (input "
                              "order) to stdout")
    p_batch.add_argument("--verbose", action="store_true",
                         help="with --json, still log per-job progress "
                              "lines to stderr")
    p_batch.add_argument("--output-dir",
                         help="write each repaired source here "
                              "(repair batches only)")
    add_cache_args(p_batch)
    p_batch.add_argument("--no-cache", action="store_true",
                         help="disable the result cache (and in-batch "
                              "deduplication) entirely")
    p_batch.add_argument("--queue", metavar="PATH",
                         help="checkpoint the batch in this durable queue "
                              "database and drain it with a local node; "
                              "an interrupted run continues with --resume")
    p_batch.add_argument("--resume", action="store_true",
                         help="continue an interrupted --queue batch: "
                              "finished jobs keep their results, only "
                              "the remainder executes")
    p_batch.add_argument("--batch-id", default=None,
                         help="explicit batch identity (default: derived "
                              "from the corpus contents + job knobs)")
    p_batch.add_argument("--lease", type=float, default=30.0,
                         help="queue lease seconds before a dead node's "
                              "jobs are re-offered (default 30)")
    p_batch.add_argument("--max-attempts", type=int, default=3,
                         help="per-job retry budget for expired leases "
                              "(default 3)")
    add_trace_log_arg(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_serve = sub.add_parser(
        "serve", help="run the batch service as an HTTP server")
    p_serve.add_argument("--workers", type=int, default=1)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321)
    add_cache_args(p_serve)
    p_serve.add_argument("--queue", metavar="PATH", default=None,
                         help="pull jobs from this durable queue database "
                              "(run several nodes against one file); "
                              "POST /jobs submissions land in the queue")
    p_serve.add_argument("--node-id", default=None,
                         help="this node's lease-owner identity "
                              "(default: node-<pid>)")
    p_serve.add_argument("--lease", type=float, default=None,
                         help="queue lease seconds (default 30)")
    p_serve.add_argument("--auth-token", default=None,
                         help="require 'Authorization: Bearer <token>' on "
                              "mutating endpoints (or set "
                              "REPRO_AUTH_TOKEN)")
    p_serve.add_argument("--rate-limit", type=float, default=None,
                         help="per-tenant submissions per second "
                              "(token bucket; default: unlimited)")
    p_serve.add_argument("--rate-burst", type=float, default=None,
                         help="per-tenant burst size (default: 2x rate)")
    add_trace_log_arg(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_queue = sub.add_parser(
        "queue", help="inspect and feed the durable job queue")
    queue_sub = p_queue.add_subparsers(dest="queue_command", required=True)

    p_qsubmit = queue_sub.add_parser(
        "submit", help="enqueue programs as a (resumable) batch")
    add_job_args(p_qsubmit)
    p_qsubmit.add_argument("--queue", required=True, metavar="PATH",
                           help="queue database path")
    p_qsubmit.add_argument("--batch-id", default=None,
                           help="explicit batch identity (default: "
                                "derived from corpus + knobs)")
    p_qsubmit.add_argument("--tenant", default=None,
                           help="tenant tag recorded on each job")
    p_qsubmit.add_argument("--max-attempts", type=int, default=3)
    p_qsubmit.add_argument("--json", action="store_true",
                           help="print {batch_id, ids} JSON")
    add_trace_log_arg(p_qsubmit)
    p_qsubmit.set_defaults(func=_cmd_queue_submit)

    p_qstatus = queue_sub.add_parser(
        "status", help="queue state counts, or one job's row")
    p_qstatus.add_argument("--queue", required=True, metavar="PATH")
    p_qstatus.add_argument("--id", type=int, default=None,
                           help="show one queue job instead of counts")
    p_qstatus.add_argument("--batch-id", default=None,
                           help="restrict counts to one batch")
    p_qstatus.add_argument("--json", action="store_true")
    p_qstatus.set_defaults(func=_cmd_queue_status)

    p_qdrain = queue_sub.add_parser(
        "drain", help="cancel every queued job (leased jobs finish)")
    p_qdrain.add_argument("--queue", required=True, metavar="PATH")
    p_qdrain.add_argument("--batch-id", default=None,
                          help="restrict the drain to one batch")
    p_qdrain.set_defaults(func=_cmd_queue_drain)

    p_trace = sub.add_parser(
        "trace", help="merge and inspect distributed trace logs")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_tmerge = trace_sub.add_parser(
        "merge", help="join per-node trace logs into one Chrome trace")
    p_tmerge.add_argument("logs", nargs="+", metavar="LOG",
                          help="per-node JSONL trace log files")
    p_tmerge.add_argument("-o", "--output", required=True, metavar="FILE",
                          help="write the Chrome trace_event JSON here")
    p_tmerge.set_defaults(func=_cmd_trace_merge)

    p_tshow = trace_sub.add_parser(
        "show", help="print one job's cross-process span tree")
    p_tshow.add_argument("selector",
                         help="a trace id (or prefix), queue/job id, or "
                              "source file name")
    p_tshow.add_argument("--log", dest="logs", action="append",
                         required=True, metavar="FILE",
                         help="trace log to read (repeatable)")
    p_tshow.set_defaults(func=_cmd_trace_show)
    return parser


def main(argv: Sequence[str] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.engine:
        set_default_engine(options.engine)
    try:
        return options.func(options)
    except _Diagnostic as diagnostic:
        print(diagnostic, file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed early (e.g. `repro profile ... | head`).
        # Redirect stdout to devnull so Python's interpreter-shutdown
        # flush doesn't raise a second time, and exit like a killed
        # pipe writer would.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":
    sys.exit(main())
