"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at the tool boundary.  Errors that carry a
source location expose it through the ``line`` and ``column`` attributes.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SourceError(ReproError):
    """An error attached to a position in mini-HJ source code."""

    def __init__(self, message: str, line: Optional[int] = None,
                 column: Optional[int] = None) -> None:
        self.bare_message = message
        self.line = line
        self.column = column
        if line is not None:
            message = f"{line}:{column if column is not None else '?'}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Raised by the lexer on malformed input characters or literals."""


class ParseError(SourceError):
    """Raised by the parser on a syntax error."""


class ValidationError(SourceError):
    """Raised when a parsed program violates static well-formedness rules."""


class RuntimeFault(SourceError):
    """Raised when the interpreter encounters a dynamic error.

    Examples: reading an undefined variable, out-of-bounds array index,
    calling a non-function, or arithmetic on incompatible values.
    """


class StepLimitExceeded(RuntimeFault):
    """Raised when execution exceeds the configured step budget."""


class ReplayError(ReproError):
    """Raised when a recorded trace cannot be replayed for a program.

    Callers treat this as a soft failure: the repair engine falls back to
    plain re-execution, which is always available.
    """


class RepairError(ReproError):
    """Raised when the repair engine cannot make progress.

    This covers both internal invariant violations (e.g. a dependence-graph
    edge whose source is not an async node) and genuinely unrepairable
    inputs (no valid finish placement exists for a race).
    """
