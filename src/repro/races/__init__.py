"""Dynamic data-race detection: ESP-bags (SRW and MRW) and the MHP oracle."""

from .arraycore import (
    ArrayMrwDetector,
    ArraySrwDetector,
    run_arraycore,
)
from .bags import BagManager, P_BAG, S_BAG
from .detect import CORES, DetectionResult, default_core, detect_races
from .esp import (
    EspBagsDetector,
    MrwEspBagsDetector,
    SrwEspBagsDetector,
    make_detector,
)
from .oracle import OracleDetector
from .replay import replay_detection
from .vectorclock import VectorClockDetector
from .report import DataRace, RaceReport, addr_to_str, merge_reports

__all__ = [
    "BagManager",
    "S_BAG",
    "P_BAG",
    "DataRace",
    "RaceReport",
    "addr_to_str",
    "merge_reports",
    "EspBagsDetector",
    "SrwEspBagsDetector",
    "MrwEspBagsDetector",
    "make_detector",
    "OracleDetector",
    "VectorClockDetector",
    "ArrayMrwDetector",
    "ArraySrwDetector",
    "run_arraycore",
    "CORES",
    "default_core",
    "DetectionResult",
    "detect_races",
    "replay_detection",
]
