"""Dynamic data-race detection: ESP-bags (SRW and MRW) and the MHP oracle."""

from .bags import BagManager, P_BAG, S_BAG
from .detect import DetectionResult, detect_races
from .esp import (
    EspBagsDetector,
    MrwEspBagsDetector,
    SrwEspBagsDetector,
    make_detector,
)
from .oracle import OracleDetector
from .replay import replay_detection
from .vectorclock import VectorClockDetector
from .report import DataRace, RaceReport, addr_to_str, merge_reports

__all__ = [
    "BagManager",
    "S_BAG",
    "P_BAG",
    "DataRace",
    "RaceReport",
    "addr_to_str",
    "merge_reports",
    "EspBagsDetector",
    "SrwEspBagsDetector",
    "MrwEspBagsDetector",
    "make_detector",
    "OracleDetector",
    "VectorClockDetector",
    "DetectionResult",
    "detect_races",
    "replay_detection",
]
