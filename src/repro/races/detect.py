"""High-level entry point: execute a program and detect its data races.

This is the "Data Race Detection" box of Figure 6: run the program
sequentially on the test input, build the S-DPST, and collect the race
set with the selected ESP-bags variant.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Optional, Sequence

from .. import telemetry
from ..dpst.builder import DetectorBase, DpstBuilder
from ..dpst.tree import Dpst
from ..lang import ast
from ..runtime.interpreter import ExecutionResult, Interpreter
from .esp import EspBagsDetector, make_detector
from .report import RaceReport


def _harvest_counters(execution: ExecutionResult, builder: DpstBuilder,
                      detector, report: RaceReport) -> None:
    """Copy the run's always-on aggregates into the active telemetry
    session, once per detection.  The per-access observer path makes no
    telemetry calls — these totals are maintained by the runtime anyway.
    """
    telemetry.counter("runtime.ops", execution.ops)
    telemetry.counter("runtime.output_lines", len(execution.output))
    telemetry.counter("dpst.nodes", builder._counter + 1)
    telemetry.counter("detector.races", len(report))
    accesses = getattr(detector, "monitored_accesses", None)
    if accesses is not None:
        telemetry.counter("detector.monitored_accesses", accesses)
    bags = getattr(detector, "bags", None)
    if bags is not None:
        telemetry.counter("detector.bag_unions", bags.unions)


class DetectionResult:
    """Everything one instrumented execution produced."""

    def __init__(self, execution: ExecutionResult, dpst: Dpst,
                 report: RaceReport, detector: DetectorBase,
                 elapsed_s: float, trace=None, replayed: bool = False) -> None:
        self.execution = execution
        self.dpst = dpst
        self.report = report
        self.detector = detector
        #: wall-clock seconds for instrumented execution + detection +
        #: S-DPST construction (the Table 2 "Data Race Detection Time").
        self.elapsed_s = elapsed_s
        #: the :class:`~repro.runtime.recorder.ExecutionTrace` recorded
        #: during the run (``record_trace=True`` only).
        self.trace = trace
        #: True when this result came from trace replay, not execution.
        self.replayed = replayed

    @property
    def race_count(self) -> int:
        return len(self.report)

    @property
    def dpst_node_count(self) -> int:
        return self.dpst.node_count()

    def to_payload(self) -> dict:
        """A plain-data view of the detection: JSON-serializable and
        picklable, for the batch service and the CLI ``--json`` mode.

        The ``races`` rows are the trace-file rows of
        :meth:`~repro.races.report.RaceReport.to_trace_json`, so every
        consumer of race reports — CLI, HTTP API, trace files — shares
        one schema.
        """
        import json as _json

        return {
            "race_free": self.report.is_race_free,
            "race_count": len(self.report),
            "distinct_step_pairs": len(self.report.distinct_step_pairs()),
            "counts_by_kind": self.report.counts_by_kind(),
            "summary": self.report.summary(),
            "races": _json.loads(self.report.to_trace_json())["races"],
            "dpst_node_count": self.dpst_node_count,
            "ops": self.execution.ops,
            "elapsed_s": self.elapsed_s,
            "replayed": bool(self.replayed),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DetectionResult(races={self.race_count}, "
                f"nodes={self.dpst_node_count})")


def detect_races(program: ast.Program, args: Sequence[Any] = (),
                 algorithm: str = "mrw",
                 detector: Optional[EspBagsDetector] = None,
                 seed: int = 20140609,
                 max_ops: int = 200_000_000,
                 engine: Optional[str] = None,
                 record_trace: bool = False) -> DetectionResult:
    """Run ``main(*args)`` sequentially and report all data races.

    ``algorithm`` selects ``"mrw"`` (default, complete in one run) or
    ``"srw"`` (the original single reader-writer ESP-bags).  A caller may
    instead pass a pre-built ``detector`` (e.g. the MHP oracle).
    ``engine`` picks the execution engine (``"tree"``/``"compiled"``);
    ``None`` uses the process default — both engines produce identical
    race reports.  With ``record_trace=True`` the run additionally
    records an execution trace (``result.trace``) that
    :func:`~repro.races.replay.replay_detection` can re-detect from after
    finish insertions, without re-executing the program.
    """
    if detector is None:
        detector = make_detector(algorithm)
    start = time.perf_counter()
    with telemetry.span("detect_races", algorithm=algorithm,
                        record_trace=record_trace):
        builder = DpstBuilder(detector)
        recorder = None
        observer = builder
        if record_trace:
            from ..runtime.recorder import TraceRecorder

            recorder = TraceRecorder(builder)
            observer = recorder
        interp = Interpreter(program, observer, seed=seed, max_ops=max_ops,
                             engine=engine)
        # The run allocates large, long-lived graphs (S-DPST nodes, shadow
        # entries) at a steady rate; with the cyclic collector enabled every
        # generation-2 pass re-traverses the whole growing structure and can
        # account for >20% of detection time.  Nothing here needs cycle
        # collection mid-run, so pause it and let the caller's next natural
        # collection reclaim any garbage afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            # The "execute" span covers the instrumented run; S-DPST
            # construction and ESP-bags detection happen *inline* through
            # the observer hooks, so their per-access cost is part of this
            # span by design (separating them would require per-access
            # timing, which the overhead policy forbids).  The "dpst" and
            # "detect" spans cover the explicit finalization work.
            with telemetry.span("execute", engine=interp.engine):
                execution = interp.run(args)
            with telemetry.span("dpst"):
                dpst = builder.finish()
        finally:
            if gc_was_enabled:
                gc.enable()
        with telemetry.span("detect"):
            if hasattr(detector, "report"):
                report = detector.report()
            elif hasattr(detector, "compute_report"):
                report = detector.compute_report()
            else:  # pragma: no cover - defensive
                report = RaceReport([])
        trace = None
        if recorder is not None:
            trace = recorder.trace()
            trace.output = list(execution.output)
            trace.ops = execution.ops
            trace.value = execution.value
        _harvest_counters(execution, builder, detector, report)
    elapsed = time.perf_counter() - start
    return DetectionResult(execution, dpst, report, detector, elapsed,
                           trace=trace)
