"""High-level entry point: execute a program and detect its data races.

This is the "Data Race Detection" box of Figure 6: run the program
sequentially on the test input, build the S-DPST, and collect the race
set with the selected ESP-bags variant.

Two detection cores implement that box:

* the **array core** (default) — the run's observer stream is buffered
  into the packed trace encoding as it executes, then S-DPST maintenance
  and bag transitions run over the flat arrays in batch
  (:mod:`repro.races.arraycore`);
* the **object core** — the classic inline path
  (:class:`~repro.dpst.builder.DpstBuilder` +
  :class:`~repro.races.esp.EspBagsDetector`), kept for custom detectors
  (e.g. the MHP oracle), non-ESP algorithms, and as the differential
  baseline the array core is checked against.

Both produce bit-identical :class:`~repro.races.report.RaceReport`s and
S-DPSTs.  ``core="object"``/``core="array"`` selects per call; the
``REPRO_ARRAYCORE`` environment variable (``0``/``off``/``object`` vs
``1``/``on``/``array``) sets the process default.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Any, Optional, Sequence

from .. import telemetry
from ..dpst.builder import DetectorBase, DpstBuilder
from ..dpst.tree import Dpst
from ..lang import ast
from ..runtime.interpreter import ExecutionResult, Interpreter
from .esp import EspBagsDetector, make_detector
from .report import RaceReport

#: the detection cores ``detect_races`` can run.
CORES = ("array", "object")


def default_core() -> str:
    """The process-default detection core, honoring ``REPRO_ARRAYCORE``."""
    env = os.environ.get("REPRO_ARRAYCORE", "").strip().lower()
    if env in ("0", "off", "false", "no", "object"):
        return "object"
    return "array"


def _harvest_counters(execution: ExecutionResult, node_count: int,
                      detector, report: RaceReport) -> None:
    """Copy the run's always-on aggregates into the active telemetry
    session, once per detection.  The per-access observer path makes no
    telemetry calls — these totals are maintained by the runtime anyway.
    """
    telemetry.counter("runtime.ops", execution.ops)
    telemetry.counter("runtime.output_lines", len(execution.output))
    telemetry.counter("dpst.nodes", node_count)
    telemetry.counter("detector.races", len(report))
    accesses = getattr(detector, "monitored_accesses", None)
    if accesses is not None:
        telemetry.counter("detector.monitored_accesses", accesses)
    bags = getattr(detector, "bags", None)
    if bags is not None:
        telemetry.counter("detector.bag_unions", bags.unions)


class DetectionResult:
    """Everything one instrumented execution produced."""

    def __init__(self, execution: ExecutionResult, dpst,
                 report: RaceReport, detector: DetectorBase,
                 elapsed_s: float, trace=None, replayed: bool = False,
                 node_count: Optional[int] = None) -> None:
        self.execution = execution
        #: a :class:`~repro.dpst.tree.Dpst`, or a zero-arg factory for
        #: one — the array core defers tree materialization until a
        #: consumer actually asks (``.dpst``), so race-free confirming
        #: runs never build node objects at all.
        self._dpst = dpst
        self.report = report
        self.detector = detector
        #: wall-clock seconds for instrumented execution + detection +
        #: S-DPST construction (the Table 2 "Data Race Detection Time").
        self.elapsed_s = elapsed_s
        #: the :class:`~repro.runtime.recorder.ExecutionTrace` recorded
        #: during the run (``record_trace=True`` only).
        self.trace = trace
        #: True when this result came from trace replay, not execution.
        self.replayed = replayed
        self._node_count = node_count
        #: an :class:`~repro.races.incremental.IncrementalState` when the
        #: detection collected one (incremental repair loops thread it
        #: into the next iteration's replay); ``None`` otherwise.
        self.inc_state = None

    @property
    def dpst(self) -> Dpst:
        dpst = self._dpst
        if not isinstance(dpst, Dpst):
            dpst = self._dpst = dpst()
        return dpst

    @dpst.setter
    def dpst(self, value) -> None:
        self._dpst = value

    @property
    def race_count(self) -> int:
        return len(self.report)

    @property
    def dpst_node_count(self) -> int:
        if self._node_count is not None:
            return self._node_count
        return self.dpst.node_count()

    def to_payload(self) -> dict:
        """A plain-data view of the detection: JSON-serializable and
        picklable, for the batch service and the CLI ``--json`` mode.

        The ``races`` rows are
        :meth:`~repro.races.report.RaceReport.to_rows` — the same rows
        ``to_trace_json`` serializes, so every consumer of race reports
        (CLI, HTTP API, trace files) shares one schema.
        """
        return {
            "race_free": self.report.is_race_free,
            "race_count": len(self.report),
            "distinct_step_pairs": len(self.report.distinct_step_pairs()),
            "counts_by_kind": self.report.counts_by_kind(),
            "summary": self.report.summary(),
            "races": self.report.to_rows(),
            "dpst_node_count": self.dpst_node_count,
            "ops": self.execution.ops,
            "elapsed_s": self.elapsed_s,
            "replayed": bool(self.replayed),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DetectionResult(races={self.race_count}, "
                f"nodes={self.dpst_node_count})")


def detect_races(program: ast.Program, args: Sequence[Any] = (),
                 algorithm: str = "mrw",
                 detector: Optional[EspBagsDetector] = None,
                 seed: int = 20140609,
                 max_ops: int = 200_000_000,
                 engine: Optional[str] = None,
                 record_trace: bool = False,
                 core: Optional[str] = None,
                 incremental: bool = False) -> DetectionResult:
    """Run ``main(*args)`` sequentially and report all data races.

    ``algorithm`` selects ``"mrw"`` (default, complete in one run) or
    ``"srw"`` (the original single reader-writer ESP-bags).  A caller may
    instead pass a pre-built ``detector`` (e.g. the MHP oracle).
    ``engine`` picks the execution engine (``"tree"``/``"compiled"``);
    ``None`` uses the process default — both engines produce identical
    race reports.  ``core`` picks the detection core (``"array"``/
    ``"object"``, see the module docstring); ``None`` uses the process
    default, and a custom ``detector`` or a non-ESP ``algorithm`` always
    runs on the object core.  With ``record_trace=True`` the run
    additionally records an execution trace (``result.trace``) that
    :func:`~repro.races.replay.replay_detection` can re-detect from after
    finish insertions, without re-executing the program.  With
    ``incremental=True`` (array core + ``record_trace`` only) the result
    additionally carries the ``inc_state`` baseline that incremental
    replay re-detects against.
    """
    if core is not None and core not in CORES:
        raise ValueError(f"unknown detection core {core!r}; "
                         f"expected one of {CORES}")
    if detector is None and algorithm in ("mrw", "srw"):
        chosen = core or default_core()
    else:
        chosen = "object"
    if chosen == "array":
        return _detect_races_array(program, args, algorithm, seed,
                                   max_ops, engine, record_trace,
                                   incremental)
    if detector is None:
        detector = make_detector(algorithm)
    start = time.perf_counter()
    with telemetry.span("detect_races", algorithm=algorithm,
                        record_trace=record_trace, core="object"):
        builder = DpstBuilder(detector)
        recorder = None
        observer = builder
        if record_trace:
            from ..runtime.recorder import TraceRecorder

            recorder = TraceRecorder(builder)
            observer = recorder
        interp = Interpreter(program, observer, seed=seed, max_ops=max_ops,
                             engine=engine)
        # The run allocates large, long-lived graphs (S-DPST nodes, shadow
        # entries) at a steady rate; with the cyclic collector enabled every
        # generation-2 pass re-traverses the whole growing structure and can
        # account for >20% of detection time.  Nothing here needs cycle
        # collection mid-run, so pause it and let the caller's next natural
        # collection reclaim any garbage afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            # The "execute" span covers the instrumented run; S-DPST
            # construction and ESP-bags detection happen *inline* through
            # the observer hooks, so their per-access cost is part of this
            # span by design (separating them would require per-access
            # timing, which the overhead policy forbids).  The "dpst" and
            # "detect" spans cover the explicit finalization work.
            with telemetry.span("execute", engine=interp.engine):
                execution = interp.run(args)
            with telemetry.span("dpst"):
                dpst = builder.finish()
        finally:
            if gc_was_enabled:
                gc.enable()
        with telemetry.span("detect"):
            if hasattr(detector, "report"):
                report = detector.report()
            elif hasattr(detector, "compute_report"):
                report = detector.compute_report()
            else:  # pragma: no cover - defensive
                report = RaceReport([])
        trace = None
        if recorder is not None:
            trace = recorder.trace()
            trace.output = list(execution.output)
            trace.ops = execution.ops
            trace.value = execution.value
        _harvest_counters(execution, builder.node_count(), detector, report)
    elapsed = time.perf_counter() - start
    return DetectionResult(execution, dpst, report, detector, elapsed,
                           trace=trace)


def _detect_races_array(program: ast.Program, args: Sequence[Any],
                        algorithm: str, seed: int, max_ops: int,
                        engine: Optional[str], record_trace: bool,
                        incremental: bool = False) -> DetectionResult:
    """The array-core detection path: buffer the observer stream into
    the packed encoding during the run, then detect over it in batch."""
    from ..runtime.recorder import TraceBuffer
    from .arraycore import run_arraycore, warm_numpy

    # Import numpy (if enabled) before the clock starts: the one-time
    # import cost is process setup, not detection work.
    warm_numpy()
    start = time.perf_counter()
    with telemetry.span("detect_races", algorithm=algorithm,
                        record_trace=record_trace, core="array"):
        buffer = TraceBuffer()
        interp = Interpreter(program, buffer, seed=seed, max_ops=max_ops,
                             engine=engine)
        # Same GC rationale as the object path; the buffer only appends
        # to flat lists, but the batch pass allocates the long-lived
        # shadow summaries.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            with telemetry.span("execute", engine=interp.engine):
                execution = interp.run(args)
            trace = buffer.trace()
            collect = None
            if incremental and record_trace:
                from .incremental import IncrementalState

                collect = IncrementalState(trace, algorithm)
            with telemetry.span("detect"):
                run = run_arraycore(trace, algorithm, collect=collect)
            with telemetry.span("dpst"):
                # Materializes only the step nodes the races touch (the
                # report needs their identities); the full tree stays a
                # deferred factory on the result either way, reusing
                # those nodes when a consumer asks for it.
                report = run.report()
                dpst = run.dpst_handle()
        finally:
            if gc_was_enabled:
                gc.enable()
        kept = None
        if record_trace:
            trace.output = list(execution.output)
            trace.ops = execution.ops
            trace.value = execution.value
            kept = trace
        _harvest_counters(execution, run.node_count, run.detector, report)
    elapsed = time.perf_counter() - start
    result = DetectionResult(execution, dpst, report, run.detector, elapsed,
                             trace=kept, node_count=run.node_count)
    if collect is not None:
        from .incremental import finalize_state

        result.inc_state = finalize_state(collect, run, None)
        telemetry.counter("incremental.checkpoints",
                          len(collect.checkpoints))
    return result
