"""S-bags and P-bags over a union-find forest (Section 4.1).

The ESP-bags algorithm for async/finish programs keeps, during a
sequential depth-first execution:

* an **S-bag** per task, holding tasks whose completion is *serialized*
  before the current execution point from that task's perspective;
* a **P-bag** per finish, holding completed tasks that could still run in
  *parallel* with the current point (they have terminated, but nothing has
  joined them yet).

Transitions:

* async ``A`` begins  → S-bag(A) = { A };
* async ``A`` ends    → move S-bag(A) into P-bag(IEF(A)) where IEF is the
  immediately-enclosing finish (an implicit whole-program finish if none);
* finish ``F`` ends   → move P-bag(F) into S-bag(T), where T is the task
  executing F.

A previous accessor ``W`` races with the current access iff the bag
containing ``W`` is currently a P-bag.

Task keys are **small non-negative integers** — the detectors use S-DPST
node indices — so the union-find forest lives in flat lists indexed by
task key rather than hash tables: ``is_parallel``, the detectors' hottest
call, is two list walks with no hashing.  Finish keys remain arbitrary
hashable values (finish events are orders of magnitude rarer than
accesses) and live in a dict.

``clock`` counts S/P transitions: it is bumped exactly when some set's
tag changes (a task ending flips its set to P; a non-empty finish
draining flips its P-bag to S).  Between two operations with equal
``clock`` values, ``is_parallel`` verdicts for already-registered tasks
cannot have changed — the MRW detector uses this to skip whole-shadow
scans that provably repeat a previous clean scan.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

S_BAG = "S"
P_BAG = "P"


class BagManager:
    """Union-find over int task keys with an S/P tag per set root."""

    __slots__ = ("_parent", "_rank", "_ptag", "_pbag_rep", "clock",
                 "unions")

    def __init__(self) -> None:
        #: parent[i] == i for roots; lists grow on make_s_bag.
        self._parent: List[int] = []
        self._rank: List[int] = []
        #: True = the set whose root this is, is currently a P-bag.
        self._ptag: List[bool] = []
        # Representative element of each finish's P-bag (None while empty).
        self._pbag_rep: Dict[Hashable, Optional[int]] = {}
        #: S/P transition counter (see module docstring).
        self.clock = 0
        #: lifetime count of set merges — the telemetry layer harvests
        #: this once per detection phase as ``detector.bag_unions``.
        self.unions = 0

    # ------------------------------------------------------------------
    # Union-find core
    # ------------------------------------------------------------------

    def _find(self, item: int) -> int:
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def _union(self, a: int, b: int, parallel: bool) -> int:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            self._ptag[ra] = parallel
            return ra
        self.unions += 1
        rank = self._rank
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if rank[ra] == rank[rb]:
            rank[ra] += 1
        self._ptag[ra] = parallel
        return ra

    # ------------------------------------------------------------------
    # ESP-bags operations
    # ------------------------------------------------------------------

    def make_s_bag(self, task: int) -> None:
        """Task begins: S-bag(task) = { task }."""
        parent = self._parent
        size = len(parent)
        if task >= size:
            # Grow through ``task``; the gap entries become inert
            # singletons (S-tagged, self-parented) until registered.
            count = task + 1 - size
            parent.extend(range(size, task + 1))
            self._rank.extend([0] * count)
            self._ptag.extend([False] * count)
        else:
            parent[task] = task
            self._rank[task] = 0
            self._ptag[task] = False

    def register_finish(self, finish: Hashable) -> None:
        """Finish begins: an empty P-bag."""
        self._pbag_rep[finish] = None

    def task_ends(self, task: int, enclosing_finish: Hashable) -> None:
        """Move the (whole set containing) ``task`` into the P-bag of its
        immediately enclosing finish."""
        rep = self._pbag_rep.get(enclosing_finish)
        root = self._find(task)
        if rep is None:
            self._ptag[root] = True
            self._pbag_rep[enclosing_finish] = root
        else:
            self._pbag_rep[enclosing_finish] = self._union(rep, root, True)
        self.clock += 1

    def finish_ends(self, finish: Hashable, owner_task: int) -> None:
        """Drain the finish's P-bag into the owner task's S-bag."""
        rep = self._pbag_rep.pop(finish, None)
        if rep is not None:
            self._union(rep, owner_task, False)
            self.clock += 1

    def is_parallel(self, task: int) -> bool:
        """True iff ``task`` currently sits in a P-bag — i.e. an access it
        made can run in parallel with the current execution point."""
        parent = self._parent
        root = task
        while parent[root] != root:
            root = parent[root]
        while parent[task] != root:  # path compression
            parent[task], task = root, parent[task]
        return self._ptag[root]

    def tag_of(self, task: int) -> str:
        """The S/P tag of the set containing ``task``."""
        return P_BAG if self._ptag[self._find(task)] else S_BAG
