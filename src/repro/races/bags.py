"""S-bags and P-bags over a union-find forest (Section 4.1).

The ESP-bags algorithm for async/finish programs keeps, during a
sequential depth-first execution:

* an **S-bag** per task, holding tasks whose completion is *serialized*
  before the current execution point from that task's perspective;
* a **P-bag** per finish, holding completed tasks that could still run in
  *parallel* with the current point (they have terminated, but nothing has
  joined them yet).

Transitions:

* async ``A`` begins  → S-bag(A) = { A };
* async ``A`` ends    → move S-bag(A) into P-bag(IEF(A)) where IEF is the
  immediately-enclosing finish (an implicit whole-program finish if none);
* finish ``F`` ends   → move P-bag(F) into S-bag(T), where T is the task
  executing F.

A previous accessor ``W`` races with the current access iff the bag
containing ``W`` is currently a P-bag.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

S_BAG = "S"
P_BAG = "P"


class BagManager:
    """Union-find over task ids with an S/P tag per set root.

    Elements are arbitrary hashable task keys (the detectors use S-DPST
    node indices).  Finish keys live in a separate namespace supplied by
    the caller.
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._tag: Dict[Hashable, str] = {}
        # Representative element of each finish's P-bag (None while empty).
        self._pbag_rep: Dict[Hashable, Optional[Hashable]] = {}

    # ------------------------------------------------------------------
    # Union-find core
    # ------------------------------------------------------------------

    def _find(self, item: Hashable) -> Hashable:
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def _union(self, a: Hashable, b: Hashable, tag: str) -> Hashable:
        ra, rb = self._find(a), self._find(b)
        if ra is rb or ra == rb:
            self._tag[ra] = tag
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._tag[ra] = tag
        return ra

    # ------------------------------------------------------------------
    # ESP-bags operations
    # ------------------------------------------------------------------

    def make_s_bag(self, task: Hashable) -> None:
        """Task begins: S-bag(task) = { task }."""
        self._parent[task] = task
        self._rank[task] = 0
        self._tag[task] = S_BAG

    def register_finish(self, finish: Hashable) -> None:
        """Finish begins: an empty P-bag."""
        self._pbag_rep[finish] = None

    def task_ends(self, task: Hashable, enclosing_finish: Hashable) -> None:
        """Move the (whole set containing) ``task`` into the P-bag of its
        immediately enclosing finish."""
        rep = self._pbag_rep.get(enclosing_finish)
        root = self._find(task)
        if rep is None:
            self._tag[root] = P_BAG
            self._pbag_rep[enclosing_finish] = root
        else:
            self._pbag_rep[enclosing_finish] = self._union(rep, root, P_BAG)

    def finish_ends(self, finish: Hashable, owner_task: Hashable) -> None:
        """Drain the finish's P-bag into the owner task's S-bag."""
        rep = self._pbag_rep.pop(finish, None)
        if rep is not None:
            self._union(rep, owner_task, S_BAG)

    def is_parallel(self, task: Hashable) -> bool:
        """True iff ``task`` currently sits in a P-bag — i.e. an access it
        made can run in parallel with the current execution point."""
        return self._tag[self._find(task)] == P_BAG

    def tag_of(self, task: Hashable) -> str:
        """The S/P tag of the set containing ``task``."""
        return self._tag[self._find(task)]
