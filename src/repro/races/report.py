"""Data-race records and reports.

A :class:`DataRace` links two S-DPST step nodes: the *source* (earlier in
the depth-first order) and the *sink* (later).  The repair algorithms only
need the step pair; the remaining fields (address, access kinds, AST
nodes) make reports actionable and feed the JSON trace files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..dpst.nodes import DpstNode
from ..lang import ast


class DataRace:
    """One detected data race between two steps of an execution."""

    __slots__ = ("source", "sink", "addr", "kind", "source_ast", "sink_ast",
                 "source_task", "sink_task")

    def __init__(self, source: DpstNode, sink: DpstNode, addr,
                 kind: str, source_ast: Optional[ast.Node] = None,
                 sink_ast: Optional[ast.Node] = None,
                 source_task: Optional[int] = None,
                 sink_task: Optional[int] = None) -> None:
        self.source = source
        self.sink = sink
        self.addr = addr
        #: "W->R", "W->W" or "R->W": access kind of source then sink.
        self.kind = kind
        self.source_ast = source_ast
        self.sink_ast = sink_ast
        #: DPST indices of the tasks that made the accesses (if known).
        self.source_task = source_task
        self.sink_task = sink_task

    def step_pair(self) -> Tuple[int, int]:
        return (self.source.index, self.sink.index)

    def task_sink_pair(self) -> Tuple[Optional[int], int]:
        """(source task, sink step) — the granularity at which SRW's
        single-slot summary is guaranteed to be a subset of MRW's."""
        return (self.source_task, self.sink.index)

    def describe(self) -> str:
        loc_src = _ast_loc(self.source_ast)
        loc_sink = _ast_loc(self.sink_ast)
        return (f"{self.kind} race on {addr_to_str(self.addr)}: "
                f"{self.source.describe()}{loc_src} -> "
                f"{self.sink.describe()}{loc_sink}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataRace({self.describe()})"


def _ast_loc(node: Optional[ast.Node]) -> str:
    if node is None or not node.line:
        return ""
    return f" (line {node.line})"


def addr_to_str(addr) -> str:
    """Stable textual form of a memory address."""
    kind = addr[0]
    if kind == "cell":
        return f"var#{addr[1]}"
    if kind == "elem":
        return f"array#{addr[1]}[{addr[2]}]"
    if kind == "field":
        return f"struct#{addr[1]}.{addr[2]}"
    return str(addr)


class RaceReport:
    """All races found in one instrumented execution."""

    def __init__(self, races: List[DataRace]) -> None:
        self.races = races

    def __len__(self) -> int:
        return len(self.races)

    def __iter__(self):
        return iter(self.races)

    @property
    def is_race_free(self) -> bool:
        return not self.races

    def distinct_step_pairs(self) -> List[Tuple[DpstNode, DpstNode]]:
        """Unique (source, sink) step pairs, in detection order.

        The finish-placement algorithms work at step-pair granularity: two
        races between the same steps on different addresses need the same
        repair.
        """
        seen = set()
        pairs: List[Tuple[DpstNode, DpstNode]] = []
        for race in self.races:
            key = race.step_pair()
            if key not in seen:
                seen.add(key)
                pairs.append((race.source, race.sink))
        return pairs

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for race in self.races:
            counts[race.kind] = counts.get(race.kind, 0) + 1
        return counts

    def summary(self) -> str:
        if self.is_race_free:
            return "no data races detected"
        kinds = ", ".join(f"{k}: {v}" for k, v in
                          sorted(self.counts_by_kind().items()))
        return (f"{len(self.races)} data race(s) over "
                f"{len(self.distinct_step_pairs())} step pair(s) [{kinds}]")

    # ------------------------------------------------------------------
    # Trace-file round trip (the artifact's detector writes trace files
    # that the analyzer reads; we keep that interface for parity).
    # ------------------------------------------------------------------

    def to_rows(self) -> List[Dict[str, Any]]:
        """The race set as plain-data rows — the single row schema shared
        by the JSON trace files (:meth:`to_trace_json`), the CLI, and
        :meth:`~repro.races.detect.DetectionResult.to_payload`."""
        return [{
            "source_step": race.source.index,
            "sink_step": race.sink.index,
            "addr": list(race.addr),
            "kind": race.kind,
            "source_line": getattr(race.source_ast, "line", 0) or 0,
            "sink_line": getattr(race.sink_ast, "line", 0) or 0,
        } for race in self.races]

    def to_trace_json(self) -> str:
        """Serialize the race set to the JSON trace-file format."""
        return json.dumps({"version": 1, "races": self.to_rows()})

    @staticmethod
    def trace_rows(trace_json: str) -> List[Dict[str, Any]]:
        """Parse a trace file back into plain rows (step indices)."""
        payload = json.loads(trace_json)
        if payload.get("version") != 1:
            raise ValueError("unsupported trace version")
        return payload["races"]


def merge_reports(reports: Iterable[RaceReport]) -> RaceReport:
    """Concatenate several reports, deduplicating identical races."""
    seen = set()
    merged: List[DataRace] = []
    for report in reports:
        for race in report:
            key = (race.step_pair(), race.addr, race.kind)
            if key not in seen:
                seen.add(key)
                merged.append(race)
    return RaceReport(merged)
