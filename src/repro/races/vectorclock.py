"""A vector-clock race detector, as a baseline for ESP-bags.

The paper's related-work section notes that for *unstructured*
parallelism, vector-clock algorithms (Banerjee et al.; FlanaganFreund's
FastTrack) are the standard, while structured fork-join admits the
constant-space bags algorithms.  This module implements the vector-clock
approach over the same sequential depth-first replay, both as an
independent detector (a third implementation to cross-check ESP-bags
against) and as a baseline whose per-access cost grows with the number of
tasks — the comparison the bags algorithms exist to win.

Happens-before for async/finish:

* spawning a task copies the parent's clock into the child (everything
  the parent has seen happened before the child's first event);
* a finish joins: the clock of every task that terminated inside it is
  merged into the executing task when the finish ends;
* a task's clock entry for itself is incremented at spawn, so two tasks
  are concurrent unless one's knowledge covers the other's epoch.

Shadow state per location: the epoch of each writing task and each
reading task (one entry per task, exactly the MRW convention).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..dpst.builder import DetectorBase
from ..dpst.nodes import DpstNode
from ..lang import ast
from .report import DataRace, RaceReport

VClock = Dict[int, int]


class _Epoch:
    """One recorded access: (task, clock) plus reporting metadata."""

    __slots__ = ("task_key", "clock", "step", "node")

    def __init__(self, task_key: int, clock: int, step: DpstNode,
                 node: Optional[ast.Node]) -> None:
        self.task_key = task_key
        self.clock = clock
        self.step = step
        self.node = node


class VectorClockDetector(DetectorBase):
    """Vector-clock happens-before detection over the depth-first replay."""

    name = "vector-clock"

    def __init__(self) -> None:
        # Clocks per live task (keyed by DPST index).
        self._clocks: Dict[int, VClock] = {}
        self._task_stack: List[DpstNode] = []
        # Each active finish accumulates the clocks of tasks that ended
        # directly inside it (the implicit root finish is entry None).
        self._finish_stack: List[Optional[DpstNode]] = [None]
        self._joined: Dict[Optional[int], VClock] = {None: {}}
        # addr -> (write epochs by task, read epochs by task)
        self.shadow: Dict[Any, Tuple[Dict[int, _Epoch],
                                     Dict[int, _Epoch]]] = {}
        self.races: List[DataRace] = []
        self._race_keys = set()
        self.monitored_accesses = 0
        #: total vector-clock entries touched (the cost metric bags avoid)
        self.clock_work = 0

    # ------------------------------------------------------------------
    # Structure events
    # ------------------------------------------------------------------

    def task_begin(self, task: DpstNode) -> None:
        if self._task_stack:
            parent = self._task_stack[-1]
            clock = dict(self._clocks[parent.index])
            self.clock_work += len(clock)
        else:
            clock = {}
        clock[task.index] = clock.get(task.index, 0) + 1
        self._clocks[task.index] = clock
        self._task_stack.append(task)

    def task_end(self, task: DpstNode) -> None:
        self._task_stack.pop()
        finish = self._finish_stack[-1]
        key = finish.index if finish is not None else None
        acc = self._joined[key]
        for t, c in self._clocks[task.index].items():
            if acc.get(t, -1) < c:
                acc[t] = c
        self.clock_work += len(self._clocks[task.index])

    def finish_begin(self, finish: DpstNode) -> None:
        self._finish_stack.append(finish)
        self._joined[finish.index] = {}

    def finish_end(self, finish: DpstNode) -> None:
        self._finish_stack.pop()
        joined = self._joined.pop(finish.index)
        owner = self._task_stack[-1]
        clock = self._clocks[owner.index]
        for t, c in joined.items():
            if clock.get(t, -1) < c:
                clock[t] = c
        self.clock_work += len(joined)

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------

    def _happened_before(self, epoch: _Epoch, current: VClock) -> bool:
        self.clock_work += 1
        return current.get(epoch.task_key, 0) >= epoch.clock

    def _record(self, prior: _Epoch, addr, kind: str, step: DpstNode,
                node: Optional[ast.Node], sink_task: int) -> None:
        key = (prior.step.index, step.index, addr, kind)
        if key in self._race_keys:
            return
        self._race_keys.add(key)
        self.races.append(DataRace(prior.step, step, addr, kind,
                                   prior.node, node,
                                   source_task=prior.task_key,
                                   sink_task=sink_task))

    def _entry(self, addr):
        entry = self.shadow.get(addr)
        if entry is None:
            entry = ({}, {})
            self.shadow[addr] = entry
        return entry

    def on_read(self, addr, task: DpstNode, step: DpstNode,
                node: ast.Node) -> None:
        self.monitored_accesses += 1
        clock = self._clocks[task.index]
        writes, reads = self._entry(addr)
        for epoch in writes.values():
            if not self._happened_before(epoch, clock):
                self._record(epoch, addr, "W->R", step, node, task.index)
        if task.index not in reads:
            reads[task.index] = _Epoch(task.index, clock[task.index],
                                       step, node)

    def on_write(self, addr, task: DpstNode, step: DpstNode,
                 node: ast.Node) -> None:
        self.monitored_accesses += 1
        clock = self._clocks[task.index]
        writes, reads = self._entry(addr)
        for epoch in writes.values():
            if not self._happened_before(epoch, clock):
                self._record(epoch, addr, "W->W", step, node, task.index)
        for epoch in reads.values():
            if not self._happened_before(epoch, clock):
                self._record(epoch, addr, "R->W", step, node, task.index)
        if task.index not in writes:
            writes[task.index] = _Epoch(task.index, clock[task.index],
                                        step, node)

    # ------------------------------------------------------------------

    def report(self) -> RaceReport:
        return RaceReport(list(self.races))
