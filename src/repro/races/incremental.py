"""Incremental re-detection: re-scan only what a finish insertion changed.

The repair loop re-detects after every edit, and replay already made that
a batch scan over recorded int streams — but each iteration still
consumes the *entire* trace even though inserting a ``finish`` only
changes happens-before relations inside the enclosing subtree.  This
module makes re-detection cost track the edit, not the trace, in two
algorithm-specific ways (DESIGN.md §12 carries the soundness argument):

**MRW — row transform over a structure-only scan.**  The MRW core keeps
*every* accessor summary unconditionally (first access per (task,
address) wins), so the set of checked access pairs is independent of the
finish structure; an edit can only flip verdicts, and only from racy to
serialized.  The fast path therefore replays the event stream once with
the splices applied but **no access scanning at all** (the structure-only
mode of :func:`~repro.races.arraycore.run_arraycore` — bit-identical
S-DPST arrays at a fraction of the cost), then *transforms* the previous
iteration's race rows onto the new structure: every row's step/task
coordinates are recomputed from the new per-event step map, the pair is
re-checked with Theorem 1 on the flat arrays, rows whose sink step was
split by a new splice are re-expanded per fragment, and the survivors are
sorted into the scan's canonical emission order.  The result is
bit-identical to a full replay.

**SRW — checkpoint resume.**  SRW's single-occupant slots are overwritten
conditionally on bag state, so old rows cannot be transformed — but the
scan *prefix* before the first changed splice point is identical to the
previous iteration's.  Full detection scans therefore snapshot the
complete detector state (ESP-bag union-find arrays, step/finish stacks,
per-address summaries, clean-scan fingerprints, dedup stamps, race rows
cursor) at finish-exit boundaries, at a bounded stride so checkpoint cost
stays ``O(trace / stride)``.  The incremental path computes the dirty
window from the injection-chain delta, restores the nearest checkpoint
before it, and resumes the full scan from there.

Any structural precondition failure raises :class:`IncrementalMiss` and
the caller falls back to a full replay — the same fallback shape
``ReplayError`` established for replay vs re-execution.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from ..dpst.nodes import ASYNC, SCOPE
from ..runtime.recorder import ExecutionTrace, K_AT
from .arraycore import (
    _EMPTY,
    _W_R,
    ArrayDetection,
    _DpstArrays,
    _dup_mask_for,
    make_array_detector,
    run_arraycore,
)
from .bags import BagManager

__all__ = [
    "IncrementalMiss",
    "IncrementalState",
    "checkpoint_stride",
    "incremental_replay",
    "finalize_state",
]

#: hard cap on checkpoints kept per state — a runaway-stride backstop;
#: with the default stride (n_events // 8) at most ~9 are ever taken.
_CKPT_CAP = 32


class IncrementalMiss(Exception):
    """A structural precondition for incremental re-detection failed.

    Internal control flow only: :func:`~repro.races.replay.replay_detection`
    catches it and falls back to a full replay, exactly as ``ReplayError``
    falls back to re-execution one layer up.
    """


def checkpoint_stride(n_events: int) -> Optional[int]:
    """Events between checkpoints: ``REPRO_CKPT_STRIDE`` (int, ``0``/
    ``off`` disables capture), default ``n_events // 8`` so a full scan
    takes a bounded number of snapshots regardless of trace length."""
    env = os.environ.get("REPRO_CKPT_STRIDE", "").strip().lower()
    if env:
        if env in ("0", "off", "none", "no", "false"):
            return None
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, n_events // 8)


class _Checkpoint:
    """Complete detector+builder state at the end of one trace event.

    Captured only at ``K_EXIT_FINISH`` boundaries (every injected or
    recorded finish is closed there, so the open-chain bookkeeping is at
    a natural rest point).  The S-DPST arrays are *not* copied: they are
    append-only except for the currently-open step, so the checkpoint
    records their lengths plus that step's mutable fields and restore
    slices the source arrays lazily.  Bag arrays *are* copied at capture
    — union-find path compression rewrites old entries in place.
    """

    __slots__ = ("event", "count", "stack", "anchor_stack", "cur_anchor",
                 "cur_step", "open_fix", "arrays_src",
                 "bag_parent", "bag_rank", "bag_ptag", "bag_pbag",
                 "clock", "unions",
                 "tasks", "finish_keys", "frames", "cur", "debt",
                 "det_snap")

    def __init__(self, **kw: Any) -> None:
        for name, value in kw.items():
            setattr(self, name, value)


class _Resume:
    """Restored loop state handed to ``run_arraycore(..., resume=...)``."""

    __slots__ = ("detector", "arrays", "bags", "tasks", "finish_keys",
                 "frames", "cur", "debt", "start_event")


class IncrementalState:
    """What one detection pass leaves behind for the next iteration.

    Produced by every collect-enabled scan (live first run, full replay,
    incremental replay) and threaded through the repair loop by the
    engine.  Holds the scan's per-event step map, its race rows and
    S-DPST arrays (by reference — both are append-only after the scan),
    the injection-chain snapshot it ran under (as nid tuples, so chain
    deltas are computed without holding AST aliases), and the checkpoint
    ladder.
    """

    __slots__ = ("trace", "algorithm", "chain_nids", "rows",
                 "step_of_event", "checkpoints", "arrays", "n_events",
                 "stride", "next_checkpoint_at")

    def __init__(self, trace: ExecutionTrace, algorithm: str) -> None:
        self.trace = trace
        self.algorithm = algorithm
        self.chain_nids: Dict[int, Tuple[int, ...]] = {}
        self.rows: Optional[list] = None
        self.step_of_event: List[int] = []
        self.checkpoints: List[_Checkpoint] = []
        self.arrays: Optional[_DpstArrays] = None
        self.n_events = len(trace.kinds)
        self.stride = checkpoint_stride(self.n_events)
        self.next_checkpoint_at = (
            self.stride if self.stride is not None else self.n_events + 1)

    # Called from the run_arraycore loop at K_EXIT_FINISH boundaries once
    # the event (and its trailing segment) is fully processed; returns
    # the next event threshold so the loop keeps a plain int comparison
    # on its hot path.
    def checkpoint(self, event: int, arrays: _DpstArrays, bags: BagManager,
                   detector, tasks, finish_keys, frames, cur, debt) -> int:
        if self.stride is None or len(self.checkpoints) >= _CKPT_CAP:
            self.next_checkpoint_at = self.n_events + 1
            return self.next_checkpoint_at
        cur_step = arrays.cur_step
        open_fix = None
        if cur_step != -1:
            open_fix = (arrays.cost[cur_step], arrays.anchor[cur_step],
                        list(arrays.anchors[cur_step] or ()))
        self.checkpoints.append(_Checkpoint(
            event=event,
            count=arrays.count,
            stack=list(arrays.stack),
            anchor_stack=list(arrays.anchor_stack),
            cur_anchor=arrays.cur_anchor,
            cur_step=cur_step,
            open_fix=open_fix,
            arrays_src=arrays,
            bag_parent=list(bags._parent),
            bag_rank=list(bags._rank),
            bag_ptag=list(bags._ptag),
            bag_pbag=dict(bags._pbag_rep),
            clock=bags.clock,
            unions=bags.unions,
            tasks=list(tasks),
            finish_keys=list(finish_keys),
            frames=tuple(tuple(f.nid for f in ch) for ch in frames),
            cur=tuple(f.nid for f in cur),
            debt=debt,
            det_snap=detector.snapshot() if detector is not None else None,
        ))
        self.next_checkpoint_at = event + self.stride
        return self.next_checkpoint_at


def finalize_state(collect: IncrementalState, run: ArrayDetection,
                   chains) -> IncrementalState:
    """Seal a collect-enabled *full* scan's state for the next iteration."""
    collect.arrays = run._arrays
    collect.rows = run.detector._race_rows if run.detector is not None else []
    collect.chain_nids = _chain_nids(chains)
    return collect


def _chain_nids(chains) -> Dict[int, Tuple[int, ...]]:
    if not chains:
        return {}
    return {nid: tuple(f.nid for f in ch) for nid, ch in chains.items()}


def first_at_map(trace: ExecutionTrace) -> Dict[int, int]:
    """Statement nid -> first ``K_AT`` event index, cached per trace."""
    cache = trace.replay_cache()
    m = cache.get("first_at")
    if m is None:
        m = {}
        payloads = trace.payloads
        for j, k in enumerate(trace.kinds):
            if k == K_AT:
                nid = payloads[j]
                if nid not in m:
                    m[nid] = j
        cache["first_at"] = m
    return m


def _is_subsequence(old: Tuple[int, ...], new: Tuple[int, ...]) -> bool:
    it = iter(new)
    return all(any(x == y for y in it) for x in old)


def _task_of(kind_l: list, parent_l: list, step: int) -> int:
    """The task id executing ``step``: its nearest ``ASYNC`` ancestor's
    node index, or 0 (the root main task) — exactly what the scan loop's
    ``tasks[-1]`` held when the step's segment ran.  Task ids are node
    indices, so they shift with every inserted finish and must be
    recomputed on the new arrays like the step coordinates."""
    n = parent_l[step]
    while n > 0 and kind_l[n] is not ASYNC:
        n = parent_l[n]
    return n if n > 0 else 0


def _steps_parallel(kind_l: list, parent_l: list, s1: int, s2: int) -> bool:
    """Theorem 1 on the flat S-DPST arrays — the exact rule of
    :meth:`~repro.dpst.tree.Dpst.may_happen_in_parallel`, without
    materializing nodes.  ``s1``/``s2`` are step node indices (creation
    order, so numeric order is the tree's left-to-right step order)."""
    if s1 == s2:
        return False
    if s1 > s2:
        s1, s2 = s2, s1
    path = []
    n = s1
    while n != -1:
        path.append(n)
        n = parent_l[n]
    anc = set(path)
    n = s2
    while n not in anc:
        n = parent_l[n]
    # climb to the non-scope LCA (Definition 4); still on s1's path.
    while kind_l[n] is SCOPE:
        n = parent_l[n]
    i = path.index(n)
    # walk top-down from just below the NS-LCA toward s1: the first
    # non-scope node is the Definition-3 child (steps are leaves, so the
    # ancestor degenerate case cannot arise for a step pair).
    for k in range(i - 1, -1, -1):
        kk = kind_l[path[k]]
        if kk is not SCOPE:
            return kk is ASYNC
    return False


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def incremental_replay(trace: ExecutionTrace, algorithm: str, chains,
                       baseline: Optional[IncrementalState]
                       ) -> Tuple[ArrayDetection, IncrementalState, dict]:
    """Re-detect incrementally against ``baseline``; raise
    :class:`IncrementalMiss` when any structural precondition fails.

    Returns ``(detection, new_state, stats)`` where ``stats`` feeds the
    ``incremental.*`` telemetry counters.
    """
    if baseline is None:
        raise IncrementalMiss("no baseline state from a previous detection")
    if baseline.trace is not trace:
        raise IncrementalMiss("baseline state belongs to a different trace")
    if baseline.algorithm != algorithm:
        raise IncrementalMiss(
            f"baseline state is for {baseline.algorithm!r}, not {algorithm!r}")
    if baseline.rows is None or baseline.arrays is None \
            or len(baseline.step_of_event) != baseline.n_events:
        raise IncrementalMiss("baseline state is incomplete")

    new_nids = _chain_nids(chains)
    old_nids = baseline.chain_nids
    first_at = first_at_map(trace)
    # The dirty window's left edge: the first event whose splice behavior
    # differs from the baseline scan's.  Chains must only *grow* (repair
    # never removes a finish); a shrunk or reordered chain would let two
    # baseline steps merge, breaking the row transform's injectivity.
    w0 = baseline.n_events
    for nid in set(old_nids) | set(new_nids):
        o = old_nids.get(nid, ())
        n = new_nids.get(nid, ())
        if o == n:
            continue
        e = first_at.get(nid)
        if e is None:
            continue  # statement never executed: the delta is inert
        if not _is_subsequence(o, n):
            raise IncrementalMiss(
                f"injection chain for statement {nid} shrank or reordered")
        if e < w0:
            w0 = e

    if algorithm == "mrw":
        # Cost guard: the row transform is O(rows × tree depth) while a
        # full replay's detection scan is O(accesses) with clean-scan
        # filtering, so on race-dense traces (MRW keeps *every*
        # reader/writer pair, and a racy reduction can report a row per
        # access) transforming the rows costs more than re-scanning.
        # Measured break-even is rows ≈ accesses/4 on the bench suite.
        if len(baseline.rows) * 4 >= len(trace.acodes) > 0:
            raise IncrementalMiss(
                f"race-row set too large for the row transform "
                f"({len(baseline.rows)} rows, "
                f"{len(trace.acodes)} accesses)")
        return _fast_mrw(trace, chains, baseline, new_nids, w0)
    return _resume_scan(trace, algorithm, chains, baseline, new_nids, w0)


# ----------------------------------------------------------------------
# MRW fast path: structure-only scan + row transform
# ----------------------------------------------------------------------

def _fast_mrw(trace: ExecutionTrace, chains, baseline: IncrementalState,
              new_nids: Dict[int, Tuple[int, ...]], w0: int
              ) -> Tuple[ArrayDetection, IncrementalState, dict]:
    collect = IncrementalState(trace, "mrw")
    det = run_arraycore(trace, "mrw", chains=chains, detect=False,
                        collect=collect)
    arrays = det._arrays
    kind_l = arrays.kind
    parent_l = arrays.parent
    soe_new = collect.step_of_event
    soe_old = baseline.step_of_event
    starts = trace.starts
    acodes = trace.acodes
    n_events = baseline.n_events
    n_acc = len(acodes)
    base_rows = baseline.rows

    # Baseline sink steps' event spans (first/last access-bearing event),
    # for split detection — only the steps the rows actually touch.
    spans: Dict[int, list] = {}
    if base_rows:
        sink_steps = {row[4] for row in base_rows}
        for e, s in enumerate(soe_old):
            if s in sink_steps:
                span = spans.get(s)
                if span is None:
                    spans[s] = [e, e]
                else:
                    span[1] = e

    rows_new: list = []
    keys = set()
    synthesized = 0
    ev_cache: Dict[int, int] = {}
    task_cache: Dict[int, int] = {}

    def task_of(step: int) -> int:
        t = task_cache.get(step)
        if t is None:
            t = task_cache[step] = _task_of(kind_l, parent_l, step)
        return t

    for row in base_rows:
        po, ps, pt, so, ss, st, aid, kc = row
        ep = ev_cache.get(po)
        if ep is None:
            ep = ev_cache[po] = bisect_right(starts, po) - 1
        es = ev_cache.get(so)
        if es is None:
            es = ev_cache[so] = bisect_right(starts, so) - 1
        nps = soe_new[ep]
        nss = soe_new[es]
        if nps < 0 or nss < 0:  # pragma: no cover - defensive
            raise IncrementalMiss("race access maps to an empty segment")
        # A finish insertion only removes parallelism, so re-checking the
        # recorded pairs on the new tree covers every possible verdict.
        if _steps_parallel(kind_l, parent_l, nps, nss):
            key = (nps, nss, aid, kc)
            if key not in keys:
                keys.add(key)
                rows_new.append((po, nps, task_of(nps),
                                 so, nss, task_of(nss), aid, kc))
        # If a new splice landed inside the sink step's run, the full
        # scan would re-report the pair once per later fragment (the
        # dedup key changes with the sink step).  The sink ordinal of a
        # fragment row is its first access with the row's (address,
        # parity) — first-wins summaries make that deterministic.
        span = spans.get(ss)
        if span is None or span[1] <= es or soe_new[span[1]] == nss:
            continue
        code = (aid << 1) | (0 if kc == _W_R else 1)
        cur_f = nss
        last_e = span[1]
        for e in range(es + 1, last_e + 1):
            f = soe_new[e]
            if f == -1 or f == cur_f:
                continue
            cur_f = f
            if not _steps_parallel(kind_l, parent_l, nps, f):
                continue
            key = (nps, f, aid, kc)
            if key in keys:
                continue
            hit = -1
            for e2 in range(e, last_e + 1):
                fs = soe_new[e2]
                if fs == -1:
                    continue
                if fs != f:
                    break
                lo = starts[e2]
                hi = starts[e2 + 1] if e2 + 1 < n_events else n_acc
                for i in range(lo, hi):
                    if acodes[i] == code:
                        hit = i
                        break
                if hit >= 0:
                    break
            if hit < 0:
                continue
            keys.add(key)
            rows_new.append((po, nps, task_of(nps),
                             hit, f, task_of(f), aid, kc))
            synthesized += 1
    # Canonical emission order of a full scan: races surface at their
    # sink access, write-sink scans report W->W before R->W, and summary
    # dicts iterate in first-access order — i.e. (sink ordinal, kind
    # code, prior ordinal).
    rows_new.sort(key=lambda r: (r[3], r[7], r[0]))

    detector = make_array_detector("mrw", trace)
    detector.bags = det.bags  # the structure scan's bags: real union count
    detector._race_rows = rows_new
    detector._race_keys = keys
    detector.monitored_accesses = n_acc
    result = ArrayDetection(detector, arrays)

    collect.arrays = arrays
    collect.rows = rows_new
    collect.chain_nids = new_nids
    # Checkpoints before the dirty window describe the new scan's prefix
    # too (same splices, same events) — carry them forward for a later
    # SRW-style resume or stride test; this scan itself captures none.
    collect.checkpoints = [c for c in baseline.checkpoints if c.event < w0]
    stats = {
        "mode": "fast",
        "window_events": 0,
        "events_total": n_events,
        "rows_rechecked": len(base_rows),
        "rows_synthesized": synthesized,
        "checkpoints": 0,
    }
    return result, collect, stats


# ----------------------------------------------------------------------
# Checkpoint resume (SRW, and any detector whose summaries depend on
# bag state)
# ----------------------------------------------------------------------

def _restore(ckpt: _Checkpoint, trace: ExecutionTrace, algorithm: str,
             chains) -> _Resume:
    src = ckpt.arrays_src
    n = ckpt.count + 1
    arrays = _DpstArrays.__new__(_DpstArrays)
    arrays.nodes = None
    arrays.kind = src.kind[:n]
    arrays.parent = src.parent[:n]
    arrays.anchor = src.anchor[:n]
    arrays.block = src.block[:n]
    arrays.construct = src.construct[:n]
    arrays.scope = src.scope[:n]
    arrays.cost = src.cost[:n]
    arrays.anchors = src.anchors[:n]
    arrays.count = ckpt.count
    arrays.stack = list(ckpt.stack)
    arrays.anchor_stack = list(ckpt.anchor_stack)
    arrays.cur_anchor = ckpt.cur_anchor
    arrays.cur_step = ckpt.cur_step
    if ckpt.open_fix is not None:
        cost0, anchor0, anchors0 = ckpt.open_fix
        arrays.cost[ckpt.cur_step] = cost0
        arrays.anchor[ckpt.cur_step] = anchor0
        arrays.anchors[ckpt.cur_step] = list(anchors0)

    bags = BagManager.__new__(BagManager)
    bags._parent = list(ckpt.bag_parent)
    bags._rank = list(ckpt.bag_rank)
    bags._ptag = list(ckpt.bag_ptag)
    bags._pbag_rep = dict(ckpt.bag_pbag)
    bags.clock = ckpt.clock
    bags.unions = ckpt.unions

    detector = None
    if ckpt.det_snap is not None:
        detector = make_array_detector(algorithm, trace)
        detector.bags = bags
        detector.restore_snapshot(ckpt.det_snap)
        detector._dup = _dup_mask_for(trace)

    # Re-intern the open injection chains against the *new* chain map:
    # the replay loop compares chains by identity, so the restored
    # tuples must be the very objects the new map hands out.
    rev: Dict[Tuple[int, ...], Tuple] = {}
    if chains:
        for ch in chains.values():
            rev[tuple(f.nid for f in ch)] = ch

    def intern(nids: Tuple[int, ...]):
        if not nids:
            return _EMPTY
        ch = rev.get(nids)
        if ch is None:
            raise IncrementalMiss(
                "checkpointed open finish chain is absent from the new "
                "injection map")
        return ch

    resume = _Resume()
    resume.detector = detector
    resume.arrays = arrays
    resume.bags = bags
    resume.tasks = list(ckpt.tasks)
    resume.finish_keys = list(ckpt.finish_keys)
    resume.frames = [intern(f) for f in ckpt.frames]
    resume.cur = intern(ckpt.cur)
    resume.debt = ckpt.debt
    resume.start_event = ckpt.event + 1
    return resume


def _resume_scan(trace: ExecutionTrace, algorithm: str, chains,
                 baseline: IncrementalState,
                 new_nids: Dict[int, Tuple[int, ...]], w0: int
                 ) -> Tuple[ArrayDetection, IncrementalState, dict]:
    best = None
    for c in baseline.checkpoints:
        if c.event < w0 and c.det_snap is not None and \
                (best is None or c.event > best.event):
            best = c
    if best is None:
        raise IncrementalMiss(
            "no detector checkpoint precedes the dirty window")
    resume = _restore(best, trace, algorithm, chains)
    collect = IncrementalState(trace, algorithm)
    if collect.stride is not None:
        collect.next_checkpoint_at = best.event + collect.stride
    # Checkpoints valid for the new scan's prefix carry over; they count
    # against the cap so the ladder stays bounded across iterations.
    collect.checkpoints = [c for c in baseline.checkpoints
                           if c.event < w0]
    det = run_arraycore(trace, algorithm, chains=chains,
                        collect=collect, resume=resume)
    taken = len(collect.checkpoints) - sum(
        1 for c in collect.checkpoints if c.event <= best.event)
    # Compose the full per-event step map: the prefix is bit-identical
    # to the baseline scan's by construction.
    collect.step_of_event = (
        baseline.step_of_event[:resume.start_event] + collect.step_of_event)
    finalize_state(collect, det, chains)
    collect.chain_nids = new_nids
    n_events = baseline.n_events
    stats = {
        "mode": "resume",
        "window_events": n_events - resume.start_event,
        "events_total": n_events,
        "rows_rechecked": 0,
        "rows_synthesized": 0,
        "checkpoints": taken,
    }
    return det, collect, stats
