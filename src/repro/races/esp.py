"""SRW and MRW ESP-bags race detectors (Section 4.1).

Both detectors run over the same sequential depth-first execution, driven
by the :class:`~repro.dpst.builder.DpstBuilder`.  They differ only in the
per-location access summary:

* **SRW** (the original ESP-bags): one writer and one reader per location.
  O(1) shadow space, but reports only a subset of the races for an input
  (Figure 7 of the paper), so the repair tool needs a confirming second
  run after repairing with it.
* **MRW** (the paper's modification): *all* writers and readers per
  location, so one run reports every race for the input — at the cost of
  larger summaries and trace files (Tables 3 and 4 quantify this).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..dpst.builder import DetectorBase
from ..dpst.nodes import DpstNode
from ..lang import ast
from .bags import BagManager
from .report import DataRace, RaceReport

_IMPLICIT_FINISH = "implicit-root-finish"


class _Access:
    """One recorded access: who (task/step) and where in the source."""

    __slots__ = ("task_key", "step", "node")

    def __init__(self, task_key: int, step: DpstNode,
                 node: Optional[ast.Node]) -> None:
        self.task_key = task_key
        self.step = step
        self.node = node


class EspBagsDetector(DetectorBase):
    """Common machinery: bag transitions, race recording, the IEF stacks."""

    name = "esp-bags"

    def __init__(self) -> None:
        self.bags = BagManager()
        self.bags.register_finish(_IMPLICIT_FINISH)
        # Task and finish keys mirroring execution, as *separate* stacks:
        # begin/end events nest properly, so when a task ends its
        # immediately-enclosing finish is simply the top of the finish
        # stack (and vice versa) — O(1) instead of the O(depth) reversed
        # scan of a mixed stack on every task/finish end.
        self._task_keys: List[int] = []
        self._finish_keys: List = [_IMPLICIT_FINISH]
        self.races: List[DataRace] = []
        self._race_keys = set()
        #: number of accesses monitored (a proxy for detector overhead)
        self.monitored_accesses = 0

    # ------------------------------------------------------------------
    # Structure events
    # ------------------------------------------------------------------

    def task_begin(self, task: DpstNode) -> None:
        self.bags.make_s_bag(task.index)
        self._task_keys.append(task.index)

    def task_end(self, task: DpstNode) -> None:
        popped = self._task_keys.pop()
        assert popped == task.index, "unbalanced task events"
        self.bags.task_ends(task.index, self._finish_keys[-1])

    def finish_begin(self, finish: DpstNode) -> None:
        self.bags.register_finish(finish.index)
        self._finish_keys.append(finish.index)

    def finish_end(self, finish: DpstNode) -> None:
        popped = self._finish_keys.pop()
        assert popped == finish.index, "unbalanced finish events"
        owner = self._enclosing_task_key()
        self.bags.finish_ends(finish.index, owner)

    def _enclosing_finish_key(self):
        return self._finish_keys[-1]

    def _enclosing_task_key(self) -> int:
        if not self._task_keys:
            raise AssertionError("no enclosing task on detector stack")
        return self._task_keys[-1]

    # ------------------------------------------------------------------
    # Race recording
    # ------------------------------------------------------------------

    def _record(self, prior: _Access, addr, kind: str, step: DpstNode,
                node: Optional[ast.Node],
                sink_task: Optional[int] = None) -> None:
        key = (prior.step.index, step.index, addr, kind)
        if key in self._race_keys:
            return
        self._race_keys.add(key)
        self.races.append(DataRace(prior.step, step, addr, kind,
                                   prior.node, node,
                                   source_task=prior.task_key,
                                   sink_task=sink_task))

    def report(self) -> RaceReport:
        """The races detected so far."""
        return RaceReport(list(self.races))


class SrwEspBagsDetector(EspBagsDetector):
    """Single Reader-Writer ESP-bags: the original O(1)-space algorithm."""

    name = "srw-esp-bags"

    def __init__(self) -> None:
        super().__init__()
        # addr -> [writer access or None, reader access or None,
        #          writer-serial clock, reader-serial clock].
        # The clock slots record the bag clock at which the occupant was
        # last verified *not* parallel (-1 if never): the clock is
        # monotonic and only advances on S/P transitions, so an equal
        # clock proves the verdict is unchanged and the union-find walk
        # can be skipped.  A slot also gets the current clock when its
        # occupant is replaced by the *currently executing* task, whose
        # own set is by construction an S-bag until it ends.
        self.shadow: Dict[Any, list] = {}

    def on_read(self, addr, task: DpstNode, step: DpstNode,
                node: ast.Node) -> None:
        self.monitored_accesses += 1
        entry = self.shadow.get(addr)
        if entry is None:
            entry = [None, None, -1, -1]
            self.shadow[addr] = entry
        bags = self.bags
        clock = bags.clock
        writer = entry[0]
        if writer is not None and entry[2] != clock:
            if bags.is_parallel(writer.task_key):
                self._record(writer, addr, "W->R", step, node, task.index)
            else:
                entry[2] = clock
        # Keep a reader that is still (potentially) parallel; replace a
        # serialized one with the current access.
        reader = entry[1]
        if reader is None or entry[3] == clock \
                or not bags.is_parallel(reader.task_key):
            entry[1] = _Access(task.index, step, node)
            entry[3] = clock

    def on_write(self, addr, task: DpstNode, step: DpstNode,
                 node: ast.Node) -> None:
        self.monitored_accesses += 1
        entry = self.shadow.get(addr)
        if entry is None:
            entry = [None, None, -1, -1]
            self.shadow[addr] = entry
        bags = self.bags
        clock = bags.clock
        writer = entry[0]
        if writer is not None and entry[2] != clock:
            if bags.is_parallel(writer.task_key):
                self._record(writer, addr, "W->W", step, node, task.index)
        reader = entry[1]
        if reader is not None and entry[3] != clock:
            if bags.is_parallel(reader.task_key):
                self._record(reader, addr, "R->W", step, node, task.index)
            else:
                entry[3] = clock
        entry[0] = _Access(task.index, step, node)
        entry[2] = clock


class MrwEspBagsDetector(EspBagsDetector):
    """Multiple Reader-Writer ESP-bags: all accessors kept per location.

    Guarantees that every data race for the given input is reported in a
    single run (Section 4.1), which is what lets the repair tool fix all
    races without re-running the detector between placements.

    Accessor lists are keyed by *task*: two accesses by the same task sit
    in the same bag forever, so they have identical race verdicts against
    any later access, and any finish joining the task orders all of its
    steps at once — one representative access per (task, location) is
    complete.  This keeps a sequential accumulator (thousands of writes
    by one task to one cell) at O(1) summary size instead of O(steps),
    which would otherwise make detection quadratic.

    **Scan caches.**  The per-location accessor scan is still the hot
    loop, and most scans repeat the previous one exactly: a task reading
    the same location in consecutive steps (a FastTrack-style "same
    epoch" situation) re-walks writers whose bags have not changed.  The
    naive FastTrack shortcut — "this task already owns the
    representative access, skip" — is *unsound* here, because bag tags
    flip S→P→S over time and a later scan may find races an earlier one
    could not.  Instead each location caches a fingerprint
    ``(bags.clock, accessor counts)`` of its last scan **that found zero
    parallel accessors**: ``clock`` only advances on S/P transitions, so
    an identical fingerprint proves every verdict is unchanged and the
    scan can be skipped without altering the race report bit-for-bit.
    Scans that *did* find parallel accessors are never cached, because
    each new step must re-record its own race pairs.
    """

    name = "mrw-esp-bags"

    def __init__(self) -> None:
        super().__init__()
        # addr -> [writers by task key, readers by task key,
        #          read-scan clock, read-scan writer count,
        #          write-scan clock, write-scan writer count,
        #          write-scan reader count]
        # Slots 2-6 are the clean-scan fingerprints (-1 = invalid),
        # stored as flat ints so the hot path compares without
        # allocating a tuple per access.  The accessor dicts start as
        # ``None`` (= empty) — most locations only ever see one side, so
        # eagerly allocating both dicts per address would roughly double
        # the shadow-memory allocation rate.
        self.shadow: Dict[Any, list] = {}

    def _entry(self, addr):
        entry = self.shadow.get(addr)
        if entry is None:
            entry = [None, None, -1, -1, -1, -1, -1]
            self.shadow[addr] = entry
        return entry

    def on_read(self, addr, task: DpstNode, step: DpstNode,
                node: ast.Node) -> None:
        self.monitored_accesses += 1
        entry = self.shadow.get(addr)
        if entry is None:
            entry = [None, None, -1, -1, -1, -1, -1]
            self.shadow[addr] = entry
        writers = entry[0]
        bags = self.bags
        if writers is not None:
            clock = bags.clock
            if entry[2] != clock or entry[3] != len(writers):
                clean = True
                is_parallel = bags.is_parallel
                for writer in writers.values():
                    if is_parallel(writer.task_key):
                        self._record(writer, addr, "W->R", step, node,
                                     task.index)
                        clean = False
                if clean:
                    entry[2] = clock
                    entry[3] = len(writers)
                else:
                    entry[2] = -1
        readers = entry[1]
        key = task.index
        if readers is None:
            entry[1] = {key: _Access(key, step, node)}
        elif key not in readers:
            readers[key] = _Access(key, step, node)

    def on_write(self, addr, task: DpstNode, step: DpstNode,
                 node: ast.Node) -> None:
        self.monitored_accesses += 1
        entry = self.shadow.get(addr)
        if entry is None:
            entry = [None, None, -1, -1, -1, -1, -1]
            self.shadow[addr] = entry
        writers = entry[0]
        readers = entry[1]
        bags = self.bags
        key = task.index
        if writers is not None or readers is not None:
            clock = bags.clock
            num_writers = 0 if writers is None else len(writers)
            num_readers = 0 if readers is None else len(readers)
            if (entry[4] != clock or entry[5] != num_writers
                    or entry[6] != num_readers):
                clean = True
                is_parallel = bags.is_parallel
                if writers is not None:
                    for writer in writers.values():
                        if is_parallel(writer.task_key):
                            self._record(writer, addr, "W->W", step, node,
                                         key)
                            clean = False
                if readers is not None:
                    for reader in readers.values():
                        if is_parallel(reader.task_key):
                            self._record(reader, addr, "R->W", step, node,
                                         key)
                            clean = False
                if clean:
                    entry[4] = clock
                    entry[5] = num_writers
                    entry[6] = num_readers
                else:
                    entry[4] = -1
        if writers is None:
            entry[0] = {key: _Access(key, step, node)}
        elif key not in writers:
            writers[key] = _Access(key, step, node)


def make_detector(algorithm: str):
    """Factory: ``"srw"``, ``"mrw"`` (the tool's default, per the paper) or
    ``"vc"`` (the vector-clock baseline)."""
    if algorithm == "srw":
        return SrwEspBagsDetector()
    if algorithm == "mrw":
        return MrwEspBagsDetector()
    if algorithm == "vc":
        from .vectorclock import VectorClockDetector
        return VectorClockDetector()
    raise ValueError(f"unknown detector algorithm {algorithm!r}")
