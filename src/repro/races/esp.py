"""SRW and MRW ESP-bags race detectors (Section 4.1).

Both detectors run over the same sequential depth-first execution, driven
by the :class:`~repro.dpst.builder.DpstBuilder`.  They differ only in the
per-location access summary:

* **SRW** (the original ESP-bags): one writer and one reader per location.
  O(1) shadow space, but reports only a subset of the races for an input
  (Figure 7 of the paper), so the repair tool needs a confirming second
  run after repairing with it.
* **MRW** (the paper's modification): *all* writers and readers per
  location, so one run reports every race for the input — at the cost of
  larger summaries and trace files (Tables 3 and 4 quantify this).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..dpst.builder import DetectorBase
from ..dpst.nodes import DpstNode
from ..lang import ast
from .bags import BagManager
from .report import DataRace, RaceReport

_IMPLICIT_FINISH = "implicit-root-finish"


class _Access:
    """One recorded access: who (task/step) and where in the source."""

    __slots__ = ("task_key", "step", "node")

    def __init__(self, task_key: int, step: DpstNode,
                 node: Optional[ast.Node]) -> None:
        self.task_key = task_key
        self.step = step
        self.node = node


class EspBagsDetector(DetectorBase):
    """Common machinery: bag transitions, race recording, the IEF stack."""

    name = "esp-bags"

    def __init__(self) -> None:
        self.bags = BagManager()
        self.bags.register_finish(_IMPLICIT_FINISH)
        # Mixed stack of ("task"|"finish", DpstNode) mirroring execution.
        self._stack: List[Tuple[str, DpstNode]] = []
        self.races: List[DataRace] = []
        self._race_keys = set()
        #: number of accesses monitored (a proxy for detector overhead)
        self.monitored_accesses = 0

    # ------------------------------------------------------------------
    # Structure events
    # ------------------------------------------------------------------

    def task_begin(self, task: DpstNode) -> None:
        self.bags.make_s_bag(task.index)
        self._stack.append(("task", task))

    def task_end(self, task: DpstNode) -> None:
        kind, node = self._stack.pop()
        assert kind == "task" and node is task, "unbalanced task events"
        self.bags.task_ends(task.index, self._enclosing_finish_key())

    def finish_begin(self, finish: DpstNode) -> None:
        self.bags.register_finish(finish.index)
        self._stack.append(("finish", finish))

    def finish_end(self, finish: DpstNode) -> None:
        kind, node = self._stack.pop()
        assert kind == "finish" and node is finish, "unbalanced finish events"
        owner = self._enclosing_task_key()
        self.bags.finish_ends(finish.index, owner)

    def _enclosing_finish_key(self):
        for kind, node in reversed(self._stack):
            if kind == "finish":
                return node.index
        return _IMPLICIT_FINISH

    def _enclosing_task_key(self) -> int:
        for kind, node in reversed(self._stack):
            if kind == "task":
                return node.index
        raise AssertionError("no enclosing task on detector stack")

    # ------------------------------------------------------------------
    # Race recording
    # ------------------------------------------------------------------

    def _record(self, prior: _Access, addr, kind: str, step: DpstNode,
                node: Optional[ast.Node],
                sink_task: Optional[int] = None) -> None:
        key = (prior.step.index, step.index, addr, kind)
        if key in self._race_keys:
            return
        self._race_keys.add(key)
        self.races.append(DataRace(prior.step, step, addr, kind,
                                   prior.node, node,
                                   source_task=prior.task_key,
                                   sink_task=sink_task))

    def report(self) -> RaceReport:
        """The races detected so far."""
        return RaceReport(list(self.races))


class SrwEspBagsDetector(EspBagsDetector):
    """Single Reader-Writer ESP-bags: the original O(1)-space algorithm."""

    name = "srw-esp-bags"

    def __init__(self) -> None:
        super().__init__()
        # addr -> [writer access or None, reader access or None]
        self.shadow: Dict[Any, List[Optional[_Access]]] = {}

    def on_read(self, addr, task: DpstNode, step: DpstNode,
                node: ast.Node) -> None:
        self.monitored_accesses += 1
        entry = self.shadow.get(addr)
        if entry is None:
            entry = [None, None]
            self.shadow[addr] = entry
        writer = entry[0]
        if writer is not None and self.bags.is_parallel(writer.task_key):
            self._record(writer, addr, "W->R", step, node, task.index)
        reader = entry[1]
        # Keep a reader that is still (potentially) parallel; replace a
        # serialized one with the current access.
        if reader is None or not self.bags.is_parallel(reader.task_key):
            entry[1] = _Access(task.index, step, node)

    def on_write(self, addr, task: DpstNode, step: DpstNode,
                 node: ast.Node) -> None:
        self.monitored_accesses += 1
        entry = self.shadow.get(addr)
        if entry is None:
            entry = [None, None]
            self.shadow[addr] = entry
        writer = entry[0]
        if writer is not None and self.bags.is_parallel(writer.task_key):
            self._record(writer, addr, "W->W", step, node, task.index)
        reader = entry[1]
        if reader is not None and self.bags.is_parallel(reader.task_key):
            self._record(reader, addr, "R->W", step, node, task.index)
        entry[0] = _Access(task.index, step, node)


class MrwEspBagsDetector(EspBagsDetector):
    """Multiple Reader-Writer ESP-bags: all accessors kept per location.

    Guarantees that every data race for the given input is reported in a
    single run (Section 4.1), which is what lets the repair tool fix all
    races without re-running the detector between placements.

    Accessor lists are keyed by *task*: two accesses by the same task sit
    in the same bag forever, so they have identical race verdicts against
    any later access, and any finish joining the task orders all of its
    steps at once — one representative access per (task, location) is
    complete.  This keeps a sequential accumulator (thousands of writes
    by one task to one cell) at O(1) summary size instead of O(steps),
    which would otherwise make detection quadratic.
    """

    name = "mrw-esp-bags"

    def __init__(self) -> None:
        super().__init__()
        # addr -> (writers by task key, readers by task key)
        self.shadow: Dict[Any, Tuple[Dict[int, _Access],
                                     Dict[int, _Access]]] = {}

    def _entry(self, addr):
        entry = self.shadow.get(addr)
        if entry is None:
            entry = ({}, {})
            self.shadow[addr] = entry
        return entry

    def on_read(self, addr, task: DpstNode, step: DpstNode,
                node: ast.Node) -> None:
        self.monitored_accesses += 1
        writers, readers = self._entry(addr)
        is_parallel = self.bags.is_parallel
        for writer in writers.values():
            if is_parallel(writer.task_key):
                self._record(writer, addr, "W->R", step, node, task.index)
        readers.setdefault(task.index, _Access(task.index, step, node))

    def on_write(self, addr, task: DpstNode, step: DpstNode,
                 node: ast.Node) -> None:
        self.monitored_accesses += 1
        writers, readers = self._entry(addr)
        is_parallel = self.bags.is_parallel
        for writer in writers.values():
            if is_parallel(writer.task_key):
                self._record(writer, addr, "W->W", step, node, task.index)
        for reader in readers.values():
            if is_parallel(reader.task_key):
                self._record(reader, addr, "R->W", step, node, task.index)
        writers.setdefault(task.index, _Access(task.index, step, node))


def make_detector(algorithm: str):
    """Factory: ``"srw"``, ``"mrw"`` (the tool's default, per the paper) or
    ``"vc"`` (the vector-clock baseline)."""
    if algorithm == "srw":
        return SrwEspBagsDetector()
    if algorithm == "mrw":
        return MrwEspBagsDetector()
    if algorithm == "vc":
        from .vectorclock import VectorClockDetector
        return VectorClockDetector()
    raise ValueError(f"unknown detector algorithm {algorithm!r}")
