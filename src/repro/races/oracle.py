"""A slow reference detector based directly on Theorem 1.

For every pair of accesses to the same address where at least one is a
write, it asks the S-DPST whether the two steps may happen in parallel.
This is quadratic in the number of accesses per location and exists purely
as a *test oracle* for the ESP-bags detectors: on any program and input,
MRW ESP-bags must report exactly the race set this detector reports (at
step-pair granularity).

Convention (matching the MRW detector): the *source* of a reported race
is the first access a task made to the location with that kind — later
same-task accesses are in the same bag forever, so they carry no new
information and any repair ordering the first orders them all.  Sinks are
reported at full step granularity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..dpst.builder import DetectorBase
from ..dpst.nodes import DpstNode
from ..dpst.tree import Dpst
from ..lang import ast
from .report import DataRace, RaceReport


class _Entry:
    __slots__ = ("is_write", "step", "node", "task_key", "first_of_task")

    def __init__(self, is_write: bool, step: DpstNode,
                 node: Optional[ast.Node], task_key: int,
                 first_of_task: bool) -> None:
        self.is_write = is_write
        self.step = step
        self.node = node
        self.task_key = task_key
        self.first_of_task = first_of_task


class OracleDetector(DetectorBase):
    """Records all accesses; races are computed via DPST-MHP checks."""

    name = "dpst-mhp-oracle"

    def __init__(self) -> None:
        self.accesses: Dict[Any, List[_Entry]] = {}
        # (addr, task, kind) seen so far — to mark first-per-task entries.
        self._seen_task_kind = set()

    def on_read(self, addr, task: DpstNode, step: DpstNode,
                node: ast.Node) -> None:
        self._remember(addr, False, task, step, node)

    def on_write(self, addr, task: DpstNode, step: DpstNode,
                 node: ast.Node) -> None:
        self._remember(addr, True, task, step, node)

    def _remember(self, addr, is_write: bool, task: DpstNode,
                  step: DpstNode, node: Optional[ast.Node]) -> None:
        bucket = self.accesses.setdefault(addr, [])
        # One entry per (step, kind) suffices for race existence.
        for prev in bucket:
            if prev.step is step and prev.is_write == is_write:
                return
        key = (addr, task.index, is_write)
        first = key not in self._seen_task_kind
        self._seen_task_kind.add(key)
        bucket.append(_Entry(is_write, step, node, task.index, first))

    def compute_report(self) -> RaceReport:
        """Pairwise MHP check over all recorded accesses."""
        races: List[DataRace] = []
        seen = set()
        for addr, bucket in self.accesses.items():
            ordered = sorted(bucket, key=lambda e: e.step.index)
            for i in range(len(ordered)):
                source = ordered[i]
                if not source.first_of_task:
                    continue
                for j in range(len(ordered)):
                    sink = ordered[j]
                    if sink.step is source.step:
                        continue
                    if sink.step.index < source.step.index:
                        continue
                    if not (source.is_write or sink.is_write):
                        continue
                    if not Dpst.may_happen_in_parallel(source.step,
                                                       sink.step):
                        continue
                    kind = (f"{'W' if source.is_write else 'R'}->"
                            f"{'W' if sink.is_write else 'R'}")
                    key = (source.step.index, sink.step.index, addr, kind)
                    if key in seen:
                        continue
                    seen.add(key)
                    races.append(DataRace(source.step, sink.step, addr,
                                          kind, source.node, sink.node,
                                          source_task=source.task_key,
                                          sink_task=sink.task_key))
        races.sort(key=lambda r: (r.source.index, r.sink.index))
        return RaceReport(races)
