"""Array-compiled detection core: S-DPST + ESP-bags over flat int streams.

The object engine (``DpstBuilder`` + ``EspBagsDetector``) interleaves
per-access Python-object work with execution: every monitored access
crosses engine -> builder (tree nodes, anchor bookkeeping) -> detector
(tuple-hashed shadow dicts, ``_Access`` allocations).  This module is the
batch alternative: it consumes the packed encoding of a run (an
:class:`~repro.runtime.recorder.ExecutionTrace` — ``addr_id << 1 |
is_write`` access codes grouped into per-segment runs) and performs all
of that work *afterwards*, over the flat arrays:

* **S-DPST maintenance in arrays** — node kind/parent/anchor/cost live in
  parallel lists keyed by node index; ``DpstNode`` objects are
  materialized lazily.  Reporting materializes only the racy steps and
  their ancestor chains; the full tree is built on first ``.dpst``
  access (reusing those nodes), and a race-free confirming run never
  builds any.
* **Batch bag transitions** — within one segment (the accesses between
  two control events) the S/P ``clock`` cannot change and the executing
  task is serialized with itself, so a repeated ``(addr, kind)`` access
  can be deduplicated *before* any bag query: it provably records
  nothing the first occurrence did not.  The MRW core skips duplicates
  entirely; the SRW core degrades them to a summary-slot store (its
  single-reader slot keeps the *last* access).
* **Int-indexed summaries** — shadow memory is flat lists indexed by the
  interned address id, accessor summaries store ``(ordinal, step
  index)`` ints instead of ``_Access`` objects, and clean-scan
  fingerprints live in contiguous int arrays.

Two producers feed the same core: the live first run (``detect_races``
buffers the engine's observer stream with a
:class:`~repro.runtime.recorder.TraceBuffer`) and trace replay
(:mod:`repro.races.replay` feeds a recorded trace plus the injection
chains of later-inserted ``finish`` statements).

**Equivalence contract.**  For any trace the core's
:class:`~repro.races.report.RaceReport` (race order, step indices, AST
nodes, task ids, addresses) and materialized S-DPST are bit-identical to
the object engine's, for both the MRW and SRW variants.  The dedup and
fingerprint filters only ever skip work whose outcome is provable from
the clock invariant; ``tests/test_arraycore.py`` enforces this
differentially over the bench and student corpora.

**Numpy.**  When numpy is importable, the per-segment duplicate filter
is computed in one whole-trace batch pass (``REPRO_NUMPY=1`` forces it,
``REPRO_NUMPY=0`` disables it, unset auto-detects and engages it above a
size threshold).  The numpy and stdlib filters are semantically
identical — reports cannot differ — and the stdlib path has no import
requirement at all.
"""

from __future__ import annotations

import gc
import os
from typing import Any, Dict, List, Optional, Tuple

from ..dpst.nodes import ASYNC, FINISH, SCOPE, STEP, DpstNode
from ..dpst.tree import Dpst
from ..runtime.recorder import (
    ExecutionTrace,
    K_AT,
    K_ENTER_ASYNC,
    K_ENTER_FINISH,
    K_ENTER_SCOPE,
    K_EXIT_ASYNC,
    K_EXIT_FINISH,
    K_EXIT_SCOPE,
)
from .bags import BagManager
from .report import DataRace, RaceReport

#: must match the object detectors' implicit whole-program finish key.
_IMPLICIT_FINISH = "implicit-root-finish"

#: race-kind codes, index = code used in race rows.
_KIND_NAMES = ("W->R", "W->W", "R->W")
_W_R, _W_W, _R_W = 0, 1, 2

_EMPTY: Tuple = ()

#: below this many accesses the stdlib duplicate filter wins on constant
#: factors; ``REPRO_NUMPY=1`` overrides (used by the differential tests).
_NUMPY_AUTO_THRESHOLD = 4096


def numpy_mode() -> str:
    """The configured numpy policy: ``"on"``, ``"off"`` or ``"auto"``."""
    env = os.environ.get("REPRO_NUMPY", "").strip().lower()
    if env in ("0", "off", "false", "no"):
        return "off"
    if env in ("1", "on", "true", "yes"):
        return "on"
    return "auto"


#: cached numpy module: ``False`` = import not yet attempted.
_np_module: Any = False


def _numpy_module():
    global _np_module
    if _np_module is False:
        try:
            import numpy
            _np_module = numpy
        except ImportError:  # pragma: no cover - depends on environment
            _np_module = None
    return _np_module


def warm_numpy() -> None:
    """Trigger (and cache) the numpy import, unless disabled.

    ``detect_races`` calls this before it opens the timed detection
    spans so a cold process does not charge the import to the first
    measured detection."""
    if numpy_mode() != "off":
        _numpy_module()


def _numpy_for(n_accesses: int):
    """The numpy module to use for a trace of ``n_accesses``, or ``None``
    for the stdlib path.  Forcing via ``REPRO_NUMPY=1`` still degrades
    gracefully to stdlib when numpy is not importable."""
    mode = numpy_mode()
    if mode == "off":
        return None
    if mode == "auto" and n_accesses < _NUMPY_AUTO_THRESHOLD:
        return None
    return _numpy_module()


def _dup_mask_for(trace: "ExecutionTrace") -> Optional[bytes]:
    """The numpy duplicate mask for ``trace`` (or ``None`` for the stdlib
    stamp-dict path), cached on the trace: the mask depends only on the
    recorded segments, not on injected finishes, so every replay
    iteration over one trace shares a single computation."""
    np = _numpy_for(len(trace.acodes))
    if np is None:
        return None
    cache = trace.replay_cache()
    mask = cache.get("dup_mask")
    if mask is None:
        mask = cache["dup_mask"] = _dup_mask_numpy(
            np, trace.starts, len(trace.kinds), trace.acodes)
    return mask


def _dup_mask_numpy(np, starts: List[int], n_events: int,
                    acodes: List[int]) -> bytes:
    """Batch duplicate filter: ``mask[i] == 1`` iff access ``i`` repeats
    an earlier ``(segment, code)`` pair.  One vectorized pass replaces
    the per-access stamp-dict of the stdlib path.  (Unpacking aid /
    is-write streams here too was tried and lost: materializing two
    million-element Python lists costs more than the two int ops per
    access they replace.)"""
    n = len(acodes)
    if n == 0:
        return b""
    codes = np.array(acodes, dtype=np.int64)
    bounds = np.empty(n_events + 1, dtype=np.int64)
    bounds[:n_events] = starts
    bounds[n_events] = n
    seg = np.repeat(np.arange(n_events, dtype=np.int64),
                    np.diff(bounds))
    key = seg * (int(codes.max()) + 1) + codes
    first = np.unique(key, return_index=True)[1]
    mask = np.ones(n, dtype=np.uint8)
    mask[first] = 0
    return mask.tobytes()


# ----------------------------------------------------------------------
# S-DPST in flat arrays
# ----------------------------------------------------------------------

class _DpstArrays:
    """The S-DPST as parallel lists indexed by node index, built by the
    same rules as :class:`~repro.dpst.builder.DpstBuilder` (lazy steps,
    anchor runs, creation-order indices) so materialization yields a
    bit-identical tree."""

    __slots__ = ("kind", "parent", "anchor", "block", "construct", "scope",
                 "cost", "anchors", "count", "stack", "anchor_stack",
                 "cur_anchor", "cur_step", "nodes")

    def __init__(self) -> None:
        #: lazily-created node memo (index -> DpstNode or None); shared
        #: by partial materialization (``node_at``) and the full pass.
        self.nodes: Optional[List[Optional[DpstNode]]] = None
        # Index 0 is the root main task, mirroring DpstBuilder.__init__.
        self.kind: List[str] = [ASYNC]
        self.parent: List[int] = [-1]
        self.anchor: List[Optional[int]] = [None]
        self.block: List[Optional[int]] = [None]
        self.construct: List[Optional[int]] = [None]
        self.scope: List[Optional[str]] = [None]
        self.cost: List[int] = [0]
        self.anchors: List[Optional[List[int]]] = [None]
        self.count = 0
        self.stack: List[int] = [0]
        self.anchor_stack: List[Optional[int]] = []
        self.cur_anchor: Optional[int] = None
        self.cur_step = -1

    # -- construction --------------------------------------------------

    def _new(self, kind: str, anchor, block, construct,
             scope_kind=None) -> int:
        self.count += 1
        self.kind.append(kind)
        self.parent.append(self.stack[-1])
        self.anchor.append(anchor)
        self.block.append(block)
        self.construct.append(construct)
        self.scope.append(scope_kind)
        self.cost.append(0)
        self.anchors.append(None)
        return self.count

    def _push(self, idx: int) -> None:
        self.cur_step = -1
        self.stack.append(idx)
        self.anchor_stack.append(self.cur_anchor)
        self.cur_anchor = None

    def pop(self) -> None:
        self.cur_step = -1
        self.stack.pop()
        self.cur_anchor = self.anchor_stack.pop()

    def enter_async(self, stmt) -> int:
        idx = self._new(ASYNC, stmt.nid, stmt.body.nid, stmt.nid)
        self._push(idx)
        return idx

    def enter_finish(self, stmt) -> int:
        idx = self._new(FINISH, stmt.nid, stmt.body.nid, stmt.nid)
        self._push(idx)
        return idx

    def enter_scope(self, scope_kind: str, construct_nid: int,
                    block_nid: int) -> int:
        idx = self._new(SCOPE, self.cur_anchor, block_nid, construct_nid,
                        scope_kind)
        self._push(idx)
        return idx

    def seg_step(self) -> int:
        """The current step's index, created lazily — ``ensure_step`` of
        the object builder, amortized to one call per *segment* because
        step and anchor cannot change between two control events."""
        step = self.cur_step
        a = self.cur_anchor
        if step == -1:
            step = self._new(STEP, a, None, None)
            self.anchors[step] = [a] if a is not None else []
            self.cur_step = step
        elif a is not None:
            lst = self.anchors[step]
            if not lst or lst[-1] != a:
                lst.append(a)
                if self.anchor[step] is None:
                    self.anchor[step] = a
        return step

    # -- materialization ----------------------------------------------

    def _ensure_nodes(self) -> List[Optional[DpstNode]]:
        nodes = self.nodes
        if nodes is None:
            root = DpstNode(ASYNC, 0, None)
            root.label = "main-task"
            nodes = [None] * (self.count + 1)
            nodes[0] = root
            self.nodes = nodes
        return nodes

    def _make(self, i: int, parent: DpstNode) -> DpstNode:
        kind = self.kind[i]
        node = DpstNode(kind, i, parent, self.anchor[i], self.block[i],
                        self.construct[i], self.scope[i])
        if kind is STEP:
            lst = self.anchors[i]
            if lst:
                node.anchors = lst
            node.cost = self.cost[i]
        return node

    def node_at(self, i: int) -> DpstNode:
        """Materialize node ``i`` and its ancestor chain only — parents
        wired (LCA walks work), ``children`` deferred to the full pass.
        This is what reporting needs: a race report holds step nodes and
        the placement passes climb parent pointers; nothing touches
        ``children`` before asking for the whole tree."""
        nodes = self._ensure_nodes()
        node = nodes[i]
        if node is not None:
            return node
        parents = self.parent
        chain = []
        while nodes[i] is None:
            chain.append(i)
            i = parents[i]
        node = nodes[i]
        for j in reversed(chain):
            node = nodes[j] = self._make(j, node)
        return node

    def materialize(self) -> Tuple[Dpst, List[DpstNode]]:
        """Build the full object tree, in one pass over the arrays.

        Reuses any nodes ``node_at`` already created (so report steps
        stay identity-shared with the tree) and wires every ``children``
        list in index order — which is sibling order, because indices
        are creation order and the build is depth-first.  Must run at
        most once per arrays instance (:class:`ArrayDetection` caches).
        """
        nodes = self._ensure_nodes()
        kinds = self.kind
        parents = self.parent
        anchor = self.anchor
        block = self.block
        construct = self.construct
        scope = self.scope
        costs = self.cost
        anchors = self.anchors
        new = DpstNode
        for i in range(1, self.count + 1):
            node = nodes[i]
            parent = nodes[parents[i]]
            if node is None:
                kind = kinds[i]
                node = new(kind, i, parent, anchor[i], block[i],
                           construct[i], scope[i])
                if kind is STEP:
                    lst = anchors[i]
                    if lst:
                        node.anchors = lst
                    node.cost = costs[i]
                nodes[i] = node
            parent.children.append(node)
        return Dpst(nodes[0]), nodes


# ----------------------------------------------------------------------
# Detectors over int streams
# ----------------------------------------------------------------------

class _ArrayDetectorBase:
    """Shared state: bags, race rows over ordinals, dedup filter."""

    def __init__(self, acodes: List[int], anodes: List[Any],
                 addr_table: List[Any]) -> None:
        self.bags = BagManager()
        self.bags.register_finish(_IMPLICIT_FINISH)
        self._acodes = acodes
        self._anodes = anodes
        self._addr_table = addr_table
        #: race rows: (prior_ord, prior_step, prior_task,
        #:             sink_ord, sink_step, sink_task, aid, kind_code)
        self._race_rows: List[Tuple[int, int, int, int, int, int, int,
                                    int]] = []
        self._race_keys = set()
        #: per-access stamp dict for the stdlib duplicate filter.
        self._seen: Dict[int, int] = {}
        #: numpy-computed duplicate mask (bytes), or None for stdlib.
        self._dup: Optional[bytes] = None
        self.monitored_accesses = 0

    def build_report(self, arrays: "_DpstArrays") -> RaceReport:
        """The race rows as a :class:`RaceReport`, materializing only
        the step nodes the races touch (plus their ancestor chains) —
        not the whole tree."""
        table = self._addr_table
        anodes = self._anodes
        names = _KIND_NAMES
        nodes = arrays._ensure_nodes()
        node_at = arrays.node_at
        races = []
        append = races.append
        for (po, ps, pt, so, ss, st, aid, kc) in self._race_rows:
            src = nodes[ps]
            if src is None:
                src = node_at(ps)
            snk = nodes[ss]
            if snk is None:
                snk = node_at(ss)
            append(DataRace(src, snk, table[aid], names[kc],
                            anodes[po], anodes[so], pt, st))
        return RaceReport(races)

    @property
    def race_row_count(self) -> int:
        return len(self._race_rows)

    def _base_snapshot(self) -> tuple:
        # Rows are append-only during a scan, so the snapshot keeps a
        # reference plus a cursor instead of copying them; the dedup
        # structures are mutated in place and must be copied.
        return (dict(self._seen), set(self._race_keys),
                self._race_rows, len(self._race_rows))

    def _restore_base(self, snap: tuple) -> None:
        seen, keys, rows_src, rows_len = snap
        self._seen = dict(seen)
        self._race_keys = set(keys)
        self._race_rows = list(rows_src[:rows_len])


class ArrayMrwDetector(_ArrayDetectorBase):
    """MRW ESP-bags over int streams: all accessors kept per location,
    one ``(ordinal, step)`` representative per (task, address)."""

    name = "mrw-esp-bags-array"
    algorithm = "mrw"

    def __init__(self, acodes, anodes, addr_table) -> None:
        super().__init__(acodes, anodes, addr_table)
        n = len(addr_table)
        #: per-aid accessor dicts: task key -> (ordinal, step index).
        self._writers: List[Optional[Dict[int, Tuple[int, int]]]] = \
            [None] * n
        self._readers: List[Optional[Dict[int, Tuple[int, int]]]] = \
            [None] * n
        # Clean-scan fingerprints in contiguous int arrays (-1 invalid):
        # read-scan (clock, writer count) and write-scan (clock, writer
        # count, reader count) — same semantics as the object MRW slots.
        self._r_clock = [-1] * n
        self._r_wcount = [0] * n
        self._w_clock = [-1] * n
        self._w_wcount = [0] * n
        self._w_rcount = [0] * n

    @property
    def shadow(self) -> Dict[Any, list]:
        """Object-engine-shaped view of the shadow memory (7-slot
        entries keyed by address), for introspection and tests."""
        out: Dict[Any, list] = {}
        for aid, addr in enumerate(self._addr_table):
            w = self._writers[aid]
            r = self._readers[aid]
            if w is None and r is None:
                continue
            out[addr] = [w, r, self._r_clock[aid], self._r_wcount[aid],
                         self._w_clock[aid], self._w_wcount[aid],
                         self._w_rcount[aid]]
        return out

    def snapshot(self) -> tuple:
        """Copy the complete detector state for a resumable checkpoint
        (summary dicts, clean-scan fingerprints, dedup state, race-row
        cursor).  ``restore_snapshot`` on a fresh detector reproduces
        the exact mid-scan state, bit for bit."""
        return ("mrw",
                [None if d is None else dict(d) for d in self._writers],
                [None if d is None else dict(d) for d in self._readers],
                self._r_clock[:], self._r_wcount[:],
                self._w_clock[:], self._w_wcount[:], self._w_rcount[:],
                self._base_snapshot())

    def restore_snapshot(self, snap: tuple) -> None:
        tag, writers, readers, rc, rwc, wc, wwc, wrc, base = snap
        if tag != "mrw":  # pragma: no cover - defensive
            raise ValueError(f"snapshot is {tag!r}, detector is mrw")
        self._writers = [None if d is None else dict(d) for d in writers]
        self._readers = [None if d is None else dict(d) for d in readers]
        self._r_clock = list(rc)
        self._r_wcount = list(rwc)
        self._w_clock = list(wc)
        self._w_wcount = list(wwc)
        self._w_rcount = list(wrc)
        self._restore_base(base)

    def make_segment(self):
        """Build the per-segment transition function, with all detector
        state bound once in the closure — segments are numerous and
        often tiny, so per-call rebinding would dominate.

        The returned ``segment(lo, hi, step, task)`` processes accesses
        ``[lo, hi)`` — all in ``step`` of ``task``.  The clock cannot
        change within a segment and the executing task is serialized
        with itself, so a repeated ``(addr, kind)`` code provably
        records nothing new: the duplicate filter skips it before any
        bag query.
        """
        writers_l = self._writers
        readers_l = self._readers
        rc = self._r_clock
        rwc = self._r_wcount
        wc = self._w_clock
        wwc = self._w_wcount
        wrc = self._w_rcount
        bags = self.bags
        is_parallel = bags.is_parallel
        keys = self._race_keys
        rows = self._race_rows
        dup = self._dup
        # Two copies of the transition loop: the numpy variant reads the
        # precomputed duplicate mask; the stdlib variant stamps a dict.
        # The race recording is inlined at each scan site (it is the
        # innermost hot code on racy programs).
        if dup is None:
            acodes = self._acodes
            seen = self._seen
            def segment(lo, hi, step, task):
                clock = bags.clock
                for i in range(lo, hi):
                    code = acodes[i]
                    if seen.get(code) == lo:
                        continue
                    seen[code] = lo
                    aid = code >> 1
                    if code & 1:  # ---- write ----
                        writers = writers_l[aid]
                        readers = readers_l[aid]
                        if writers is not None or readers is not None:
                            nw = 0 if writers is None else len(writers)
                            nr = 0 if readers is None else len(readers)
                            if wc[aid] != clock or wwc[aid] != nw \
                                    or wrc[aid] != nr:
                                clean = True
                                if writers is not None:
                                    for wt, rep in writers.items():
                                        if is_parallel(wt):
                                            ps = rep[1]
                                            key = (ps, step, aid, _W_W)
                                            if key not in keys:
                                                keys.add(key)
                                                rows.append(
                                                    (rep[0], ps, wt, i, step,
                                                     task, aid, _W_W))
                                            clean = False
                                if readers is not None:
                                    for rt, rep in readers.items():
                                        if is_parallel(rt):
                                            ps = rep[1]
                                            key = (ps, step, aid, _R_W)
                                            if key not in keys:
                                                keys.add(key)
                                                rows.append(
                                                    (rep[0], ps, rt, i, step,
                                                     task, aid, _R_W))
                                            clean = False
                                if clean:
                                    wc[aid] = clock
                                    wwc[aid] = nw
                                    wrc[aid] = nr
                                else:
                                    wc[aid] = -1
                        if writers is None:
                            writers_l[aid] = {task: (i, step)}
                        elif task not in writers:
                            writers[task] = (i, step)
                    else:  # ---- read ----
                        writers = writers_l[aid]
                        if writers is not None:
                            if rc[aid] != clock or rwc[aid] != len(writers):
                                clean = True
                                for wt, rep in writers.items():
                                    if is_parallel(wt):
                                        ps = rep[1]
                                        key = (ps, step, aid, _W_R)
                                        if key not in keys:
                                            keys.add(key)
                                            rows.append(
                                                (rep[0], ps, wt, i, step,
                                                 task, aid, _W_R))
                                        clean = False
                                if clean:
                                    rc[aid] = clock
                                    rwc[aid] = len(writers)
                                else:
                                    rc[aid] = -1
                        readers = readers_l[aid]
                        if readers is None:
                            readers_l[aid] = {task: (i, step)}
                        elif task not in readers:
                            readers[task] = (i, step)
            return segment
        acodes = self._acodes
        def segment(lo, hi, step, task):
            clock = bags.clock
            for i in range(lo, hi):
                if dup[i]:
                    continue
                code = acodes[i]
                aid = code >> 1
                if code & 1:  # ---- write ----
                    writers = writers_l[aid]
                    readers = readers_l[aid]
                    if writers is not None or readers is not None:
                        nw = 0 if writers is None else len(writers)
                        nr = 0 if readers is None else len(readers)
                        if wc[aid] != clock or wwc[aid] != nw \
                                or wrc[aid] != nr:
                            clean = True
                            if writers is not None:
                                for wt, rep in writers.items():
                                    if is_parallel(wt):
                                        ps = rep[1]
                                        key = (ps, step, aid, _W_W)
                                        if key not in keys:
                                            keys.add(key)
                                            rows.append(
                                                (rep[0], ps, wt, i, step,
                                                 task, aid, _W_W))
                                        clean = False
                            if readers is not None:
                                for rt, rep in readers.items():
                                    if is_parallel(rt):
                                        ps = rep[1]
                                        key = (ps, step, aid, _R_W)
                                        if key not in keys:
                                            keys.add(key)
                                            rows.append(
                                                (rep[0], ps, rt, i, step,
                                                 task, aid, _R_W))
                                        clean = False
                            if clean:
                                wc[aid] = clock
                                wwc[aid] = nw
                                wrc[aid] = nr
                            else:
                                wc[aid] = -1
                    if writers is None:
                        writers_l[aid] = {task: (i, step)}
                    elif task not in writers:
                        writers[task] = (i, step)
                else:  # ---- read ----
                    writers = writers_l[aid]
                    if writers is not None:
                        if rc[aid] != clock or rwc[aid] != len(writers):
                            clean = True
                            for wt, rep in writers.items():
                                if is_parallel(wt):
                                    ps = rep[1]
                                    key = (ps, step, aid, _W_R)
                                    if key not in keys:
                                        keys.add(key)
                                        rows.append(
                                            (rep[0], ps, wt, i, step,
                                             task, aid, _W_R))
                                    clean = False
                            if clean:
                                rc[aid] = clock
                                rwc[aid] = len(writers)
                            else:
                                rc[aid] = -1
                    readers = readers_l[aid]
                    if readers is None:
                        readers_l[aid] = {task: (i, step)}
                    elif task not in readers:
                        readers[task] = (i, step)


        return segment
class ArraySrwDetector(_ArrayDetectorBase):
    """SRW ESP-bags over int streams: one writer / one reader slot per
    location, stored across parallel flat arrays.

    SRW's reader slot keeps the *last* qualifying access, so a duplicate
    code cannot be fully skipped — it degrades to a slot store (the
    replacement provably still applies, and every bag query it would
    have made is provably redundant).
    """

    name = "srw-esp-bags-array"
    algorithm = "srw"

    def __init__(self, acodes, anodes, addr_table) -> None:
        super().__init__(acodes, anodes, addr_table)
        n = len(addr_table)
        self._w_task = [-1] * n
        self._w_ord = [0] * n
        self._w_step = [0] * n
        self._w_clock = [-1] * n
        self._r_task = [-1] * n
        self._r_ord = [0] * n
        self._r_step = [0] * n
        self._r_clock = [-1] * n

    @property
    def shadow(self) -> Dict[Any, list]:
        """Object-engine-shaped view: 4-slot entries per location —
        writer occupant, reader occupant, and the two verified-serial
        clock slots (constant space per location, as in Section 4)."""
        out: Dict[Any, list] = {}
        for aid, addr in enumerate(self._addr_table):
            wt = self._w_task[aid]
            rt = self._r_task[aid]
            if wt < 0 and rt < 0:
                continue
            writer = None if wt < 0 else (wt, self._w_ord[aid],
                                          self._w_step[aid])
            reader = None if rt < 0 else (rt, self._r_ord[aid],
                                          self._r_step[aid])
            out[addr] = [writer, reader, self._w_clock[aid],
                         self._r_clock[aid]]
        return out

    def snapshot(self) -> tuple:
        """See :meth:`ArrayMrwDetector.snapshot`; SRW state is the eight
        flat occupant/fingerprint arrays plus the shared base state."""
        return ("srw",
                self._w_task[:], self._w_ord[:], self._w_step[:],
                self._w_clock[:],
                self._r_task[:], self._r_ord[:], self._r_step[:],
                self._r_clock[:],
                self._base_snapshot())

    def restore_snapshot(self, snap: tuple) -> None:
        (tag, wt, wo, ws, wc, rt, ro, rs, rc, base) = snap
        if tag != "srw":  # pragma: no cover - defensive
            raise ValueError(f"snapshot is {tag!r}, detector is srw")
        self._w_task = list(wt)
        self._w_ord = list(wo)
        self._w_step = list(ws)
        self._w_clock = list(wc)
        self._r_task = list(rt)
        self._r_ord = list(ro)
        self._r_step = list(rs)
        self._r_clock = list(rc)
        self._restore_base(base)

    def make_segment(self):
        """Build the per-segment transition function — see
        :meth:`ArrayMrwDetector.make_segment` for the closure rationale;
        the SRW duplicate handling degrades to a slot store instead of a
        skip (class docstring)."""
        w_task = self._w_task
        w_ord = self._w_ord
        w_step = self._w_step
        w_clock = self._w_clock
        r_task = self._r_task
        r_ord = self._r_ord
        r_step = self._r_step
        r_clock = self._r_clock
        bags = self.bags
        is_parallel = bags.is_parallel
        keys = self._race_keys
        rows = self._race_rows
        dup = self._dup
        # As in the MRW core: one loop per filter source (stamp dict vs
        # precomputed numpy streams), race recording inlined.
        if dup is None:
            acodes = self._acodes
            seen = self._seen
            def segment(lo, hi, step, task):
                clock = bags.clock
                for i in range(lo, hi):
                    code = acodes[i]
                    aid = code >> 1
                    if seen.get(code) == lo:
                        # Duplicate: only the occupant replacement survives.
                        if code & 1:
                            w_task[aid] = task
                            w_ord[aid] = i
                            w_step[aid] = step
                        elif r_clock[aid] == clock:
                            r_task[aid] = task
                            r_ord[aid] = i
                            r_step[aid] = step
                        continue
                    seen[code] = lo
                    if code & 1:  # ---- write ----
                        wt = w_task[aid]
                        if wt >= 0 and w_clock[aid] != clock \
                                and is_parallel(wt):
                            ps = w_step[aid]
                            key = (ps, step, aid, _W_W)
                            if key not in keys:
                                keys.add(key)
                                rows.append((w_ord[aid], ps, wt, i, step,
                                             task, aid, _W_W))
                        rt = r_task[aid]
                        if rt >= 0 and r_clock[aid] != clock:
                            if is_parallel(rt):
                                ps = r_step[aid]
                                key = (ps, step, aid, _R_W)
                                if key not in keys:
                                    keys.add(key)
                                    rows.append((r_ord[aid], ps, rt, i, step,
                                                 task, aid, _R_W))
                            else:
                                r_clock[aid] = clock
                        w_task[aid] = task
                        w_ord[aid] = i
                        w_step[aid] = step
                        w_clock[aid] = clock
                    else:  # ---- read ----
                        wt = w_task[aid]
                        if wt >= 0 and w_clock[aid] != clock:
                            if is_parallel(wt):
                                ps = w_step[aid]
                                key = (ps, step, aid, _W_R)
                                if key not in keys:
                                    keys.add(key)
                                    rows.append((w_ord[aid], ps, wt, i, step,
                                                 task, aid, _W_R))
                            else:
                                w_clock[aid] = clock
                        rt = r_task[aid]
                        if rt < 0 or r_clock[aid] == clock \
                                or not is_parallel(rt):
                            r_task[aid] = task
                            r_ord[aid] = i
                            r_step[aid] = step
                            r_clock[aid] = clock
            return segment
        acodes = self._acodes
        def segment(lo, hi, step, task):
            clock = bags.clock
            for i in range(lo, hi):
                code = acodes[i]
                aid = code >> 1
                if dup[i]:
                    if code & 1:
                        w_task[aid] = task
                        w_ord[aid] = i
                        w_step[aid] = step
                    elif r_clock[aid] == clock:
                        r_task[aid] = task
                        r_ord[aid] = i
                        r_step[aid] = step
                    continue
                if code & 1:  # ---- write ----
                    wt = w_task[aid]
                    if wt >= 0 and w_clock[aid] != clock \
                            and is_parallel(wt):
                        ps = w_step[aid]
                        key = (ps, step, aid, _W_W)
                        if key not in keys:
                            keys.add(key)
                            rows.append((w_ord[aid], ps, wt, i, step,
                                         task, aid, _W_W))
                    rt = r_task[aid]
                    if rt >= 0 and r_clock[aid] != clock:
                        if is_parallel(rt):
                            ps = r_step[aid]
                            key = (ps, step, aid, _R_W)
                            if key not in keys:
                                keys.add(key)
                                rows.append((r_ord[aid], ps, rt, i, step,
                                             task, aid, _R_W))
                        else:
                            r_clock[aid] = clock
                    w_task[aid] = task
                    w_ord[aid] = i
                    w_step[aid] = step
                    w_clock[aid] = clock
                else:  # ---- read ----
                    wt = w_task[aid]
                    if wt >= 0 and w_clock[aid] != clock:
                        if is_parallel(wt):
                            ps = w_step[aid]
                            key = (ps, step, aid, _W_R)
                            if key not in keys:
                                keys.add(key)
                                rows.append((w_ord[aid], ps, wt, i, step,
                                             task, aid, _W_R))
                        else:
                            w_clock[aid] = clock
                    rt = r_task[aid]
                    if rt < 0 or r_clock[aid] == clock \
                            or not is_parallel(rt):
                        r_task[aid] = task
                        r_ord[aid] = i
                        r_step[aid] = step
                        r_clock[aid] = clock
        return segment


def make_array_detector(algorithm: str, trace: ExecutionTrace):
    """The array-core detector for ``algorithm`` (``"mrw"``/``"srw"``)."""
    if algorithm == "mrw":
        return ArrayMrwDetector(trace.acodes, trace.anodes,
                                trace.addr_table)
    if algorithm == "srw":
        return ArraySrwDetector(trace.acodes, trace.anodes,
                                trace.addr_table)
    raise ValueError(
        f"the array core supports the 'srw' and 'mrw' detectors, "
        f"not {algorithm!r}")


# ----------------------------------------------------------------------
# The core run
# ----------------------------------------------------------------------

class ArrayDetection:
    """One completed array-core pass: race rows, array S-DPST, and the
    lazy materialization the consumers share."""

    def __init__(self, detector, arrays: _DpstArrays,
                 bags: Optional[BagManager] = None) -> None:
        self.detector = detector
        self._arrays = arrays
        #: the run's bag manager — ``detector.bags`` normally, but a
        #: structure-only pass (``detect=False``) has no detector and
        #: still runs the full bag-transition sequence.
        self.bags = bags if bags is not None else (
            detector.bags if detector is not None else None)
        #: total S-DPST nodes, known without materializing the tree.
        self.node_count = arrays.count + 1
        self._dpst: Optional[Dpst] = None
        self._nodes: Optional[List[DpstNode]] = None
        self._report: Optional[RaceReport] = None

    def materialize(self) -> Dpst:
        """The object S-DPST (built on first call, then cached)."""
        if self._dpst is None:
            self._dpst, self._nodes = self._arrays.materialize()
        return self._dpst

    def report(self) -> RaceReport:
        """The race report.  Materializes only the step nodes the races
        touch (plus ancestors) — the full tree stays deferred; when a
        consumer later asks for it, the report's nodes are reused, so
        report steps and tree nodes stay identity-shared."""
        if self._report is None:
            if self.detector.race_row_count:
                self._report = self.detector.build_report(self._arrays)
            else:
                self._report = RaceReport([])
        return self._report

    def dpst_handle(self):
        """The tree if already materialized, else a zero-arg factory —
        what :class:`~repro.races.detect.DetectionResult` stores so
        race-free detections defer materialization entirely."""
        return self._dpst if self._dpst is not None else self.materialize


def run_arraycore(trace: ExecutionTrace, algorithm: str,
                  chains: Optional[Dict[int, Tuple]] = None, *,
                  detect: bool = True, collect=None, resume=None
                  ) -> ArrayDetection:
    """Run batch S-DPST maintenance + ESP-bags detection over a trace.

    ``chains`` (statement nid -> tuple of new synthetic ``FinishStmt``
    nodes wrapping it) is the replay producer's splice map; ``None`` or
    empty means the trace is consumed as recorded (the first-run path).
    The loop mirrors the object builder's event handling exactly; per
    access-bearing segment it makes one structural bookkeeping call and
    one detector batch call.

    Three incremental-re-detection hooks (:mod:`repro.races.incremental`):

    * ``detect=False`` runs a *structure-only* pass — every builder and
      bag transition, no access scanning.  The S-DPST arrays come out
      bit-identical to a detecting pass at a fraction of the cost (the
      MRW fast path re-derives race rows from them).
    * ``collect`` (an ``IncrementalState``) records the step index of
      every access-bearing event and captures detector checkpoints at
      ``K_EXIT_FINISH`` boundaries at the state's stride.
    * ``resume`` (a restored checkpoint) starts the loop mid-trace with
      the arrays, bags, detector, and open-chain bookkeeping it carries.
    """
    kinds = trace.kinds
    payloads = trace.payloads
    pends = trace.pends
    starts = trace.starts
    segcosts = trace.segcosts
    n_events = len(kinds)
    n_accesses = len(trace.acodes)

    if resume is not None:
        detector = resume.detector
        arrays = resume.arrays
        bags = resume.bags
        tasks = resume.tasks
        finish_keys = resume.finish_keys
        frames = resume.frames
        cur = resume.cur
        debt = resume.debt
        start_event = resume.start_event
    else:
        detector = make_array_detector(algorithm, trace) if detect else None
        arrays = _DpstArrays()
        if detector is not None:
            bags = detector.bags
        else:
            bags = BagManager()
            bags.register_finish(_IMPLICIT_FINISH)
        bags.make_s_bag(0)  # task_begin(root), as in DpstBuilder.__init__
        tasks = [0]
        finish_keys = [_IMPLICIT_FINISH]
        frames = []
        cur = _EMPTY
        debt = 0
        start_event = 0

    if detector is not None and detector._dup is None:
        detector._dup = _dup_mask_for(trace)

    costs = arrays.cost
    seg_step = arrays.seg_step
    enter_async = arrays.enter_async
    enter_finish = arrays.enter_finish
    enter_scope = arrays.enter_scope
    pop = arrays.pop
    segment = detector.make_segment() if detector is not None else None
    make_s_bag = bags.make_s_bag
    task_ends = bags.task_ends
    register_finish = bags.register_finish
    finish_ends = bags.finish_ends

    if collect is not None:
        soe_append = collect.step_of_event.append
        ckpt_at = (collect.next_checkpoint_at if detector is not None
                   else n_events + 1)
    else:
        soe_append = None
        ckpt_at = n_events + 1

    has_chains = bool(chains)
    chains_get = chains.get if chains else None

    # Same rationale as the object path: the batch allocates long-lived
    # tree rows and shadow summaries at a steady rate; generational GC
    # re-traversals would dominate, and nothing here needs cycle
    # collection mid-run.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        for j in range(start_event, n_events):
            kind = kinds[j]
            if kind == K_AT:
                nid = payloads[j]
                if has_chains:
                    target = chains_get(nid, _EMPTY)
                    if target is not cur:
                        pend = pends[j]
                        common = 0
                        len_cur = len(cur)
                        len_target = len(target)
                        while (common < len_cur and common < len_target
                               and cur[common] is target[common]):
                            common += 1
                        if common < len_cur:
                            # Close the divergent suffix, flushing cost
                            # accrued since the last flush *inside* the
                            # innermost finish first — exactly where the
                            # engine's exit-time flush would put it.
                            flush = pend - debt
                            if flush > 0:
                                costs[seg_step()] += flush
                                debt = pend
                            for _ in range(len_cur - common):
                                pop()
                                finish_ends(finish_keys.pop(), tasks[-1])
                        for fi in range(common, len_target):
                            fstmt = target[fi]
                            arrays.cur_anchor = fstmt.nid
                            flush = pend - debt
                            if flush > 0:
                                costs[seg_step()] += flush
                                debt = pend
                            idx = enter_finish(fstmt)
                            register_finish(idx)
                            finish_keys.append(idx)
                        cur = target
                arrays.cur_anchor = nid
            elif kind == K_ENTER_ASYNC:
                idx = enter_async(payloads[j])
                tasks.append(idx)
                make_s_bag(idx)
                frames.append(cur)
                cur = _EMPTY
            elif kind == K_EXIT_ASYNC:
                for _ in range(len(cur)):
                    pop()
                    finish_ends(finish_keys.pop(), tasks[-1])
                cur = frames.pop()
                pop()
                task_ends(tasks.pop(), finish_keys[-1])
            elif kind == K_ENTER_SCOPE:
                scope_kind, construct_nid, block_nid = payloads[j]
                enter_scope(scope_kind, construct_nid, block_nid)
                frames.append(cur)
                cur = _EMPTY
            elif kind == K_EXIT_SCOPE:
                for _ in range(len(cur)):
                    pop()
                    finish_ends(finish_keys.pop(), tasks[-1])
                cur = frames.pop()
                pop()
            elif kind == K_ENTER_FINISH:
                idx = enter_finish(payloads[j])
                register_finish(idx)
                finish_keys.append(idx)
                frames.append(cur)
                cur = _EMPTY
            elif kind == K_EXIT_FINISH:
                for _ in range(len(cur)):
                    pop()
                    finish_ends(finish_keys.pop(), tasks[-1])
                cur = frames.pop()
                pop()
                finish_ends(finish_keys.pop(), tasks[-1])
            # else: K_START — the virtual opening event, no bookkeeping.

            # The segment: accesses and cost between this control event
            # and the next.  Step and anchor are loop-invariant here, so
            # one seg_step() does the builder bookkeeping and the
            # detector consumes the contiguous code range in batch.
            lo = starts[j]
            hi = starts[j + 1] if j + 1 < n_events else n_accesses
            cost = segcosts[j]
            if debt and cost:
                take = cost if debt > cost else debt
                cost -= take
                debt -= take
            if hi > lo:
                step = seg_step()
                if cost:
                    costs[step] += cost
                if segment is not None:
                    segment(lo, hi, step, tasks[-1])
                if soe_append is not None:
                    soe_append(step)
            else:
                if cost:
                    costs[seg_step()] += cost
                if soe_append is not None:
                    soe_append(-1)
            if kind == K_EXIT_FINISH and j >= ckpt_at:
                ckpt_at = collect.checkpoint(j, arrays, bags, detector,
                                             tasks, finish_keys, frames,
                                             cur, debt)
        # Defensive: a well-formed trace closes every scope, so no
        # injected finish can still be open here.
        for _ in range(len(cur)):  # pragma: no cover - unreachable
            pop()
            finish_ends(finish_keys.pop(), tasks[-1])
        # DpstBuilder.finish(): close the main task.
        arrays.cur_step = -1
        task_ends(tasks.pop(), finish_keys[-1])
    finally:
        if gc_was_enabled:
            gc.enable()

    if detector is not None:
        detector.monitored_accesses = n_accesses
    return ArrayDetection(detector, arrays, bags=bags)
