"""Trace-driven re-detection: rebuild the S-DPST and re-run ESP-bags from
a recorded execution trace, without re-executing the program.

Soundness rests on serial-elision invariance (see DESIGN.md,
"Replay-based re-detection"): the repair engine only ever inserts
``finish`` statements, and a ``finish`` carries no cost tick and does not
alter the depth-first execution.  The edited program's observer event
stream is therefore the recorded stream with three kinds of splice at
statically-known points:

* an ``at_statement(F.nid)`` + ``enter_finish(F)`` bracket *before* the
  first recorded statement inside each new finish ``F``;
* a matching ``exit_finish`` after its last recorded statement (or at the
  enclosing scope/async/finish exit when control leaves the block there);
* cost re-attribution: the engines flush accrued cost lazily, and a new
  finish boundary is a flush point the recorded run did not have.  The
  recorder stores the pending cost at every statement boundary, and
  replay keeps a *debt* counter — cost flushed early at an injected
  bracket is subtracted from the next recorded flushes so every step's
  total cost lands exactly where a real re-execution would put it.

The replay loop drives the real :class:`~repro.dpst.builder.DpstBuilder`
for all structural bookkeeping (bit-identical trees by construction) but
bypasses the per-access builder fast path: within one segment (the
accesses between two control events) the step and anchor cannot change,
so a single ``add_cost`` call does the bookkeeping once and the inner
loop is nothing but detector calls over the int-coded access arrays.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Dict, Optional, Tuple

from .. import telemetry
from ..dpst.builder import DpstBuilder
from ..errors import ReplayError
from ..lang import ast
from ..runtime.interpreter import ExecutionResult
from ..runtime.recorder import (
    ExecutionTrace,
    K_AT,
    K_ENTER_ASYNC,
    K_ENTER_FINISH,
    K_ENTER_SCOPE,
    K_EXIT_ASYNC,
    K_EXIT_FINISH,
    K_EXIT_SCOPE,
)
from .detect import DetectionResult
from .esp import MrwEspBagsDetector, SrwEspBagsDetector
from .report import RaceReport

_EMPTY: Tuple[ast.FinishStmt, ...] = ()


class _ReplaySrwDetector(SrwEspBagsDetector):
    """SRW ESP-bags over int-coded addresses.

    The shadow dicts key on the trace's dense address ids (cheaper to
    hash than the runtime's addr tuples); only when a race is *recorded*
    is the id translated back, so reports are bit-identical to a
    re-execution run.
    """

    def __init__(self, addr_table) -> None:
        super().__init__()
        self._addr_table = addr_table

    def _record(self, prior, addr, kind, step, node, sink_task=None) -> None:
        super()._record(prior, self._addr_table[addr], kind, step, node,
                        sink_task)


class _ReplayMrwDetector(MrwEspBagsDetector):
    """MRW ESP-bags over int-coded addresses (see _ReplaySrwDetector)."""

    def __init__(self, addr_table) -> None:
        super().__init__()
        self._addr_table = addr_table

    def _record(self, prior, addr, kind, step, node, sink_task=None) -> None:
        super()._record(prior, self._addr_table[addr], kind, step, node,
                        sink_task)


def _make_replay_detector(algorithm: str, addr_table):
    if algorithm == "srw":
        return _ReplaySrwDetector(addr_table)
    if algorithm == "mrw":
        return _ReplayMrwDetector(addr_table)
    raise ReplayError(
        f"replay supports the 'srw' and 'mrw' detectors, not {algorithm!r}")


def _injection_chains(program: ast.Program, recorded_finish_nids
                      ) -> Dict[int, Tuple[ast.FinishStmt, ...]]:
    """Map statement nid -> chain of *new* synthetic finishes wrapping it.

    Only finishes absent from the recorded trace are injection targets;
    a synthetic finish from an earlier repair round already has recorded
    enter/exit events.  Chains are interned tuples (one per finish body),
    so the replay loop compares them by identity.  Statements under no
    new finish are simply absent (lookup default: the empty chain).
    """
    chains: Dict[int, Tuple[ast.FinishStmt, ...]] = {}

    def walk_stmts(stmts, chain: Tuple[ast.FinishStmt, ...]) -> None:
        for stmt in stmts:
            if (isinstance(stmt, ast.FinishStmt) and stmt.synthetic
                    and stmt.nid not in recorded_finish_nids):
                walk_stmts(stmt.body.stmts, chain + (stmt,))
                continue
            if chain:
                chains[stmt.nid] = chain
            # Nested blocks open their own scope frames: chains restart.
            stack = list(stmt.children())
            while stack:
                child = stack.pop()
                if isinstance(child, ast.Block):
                    walk_stmts(child.stmts, _EMPTY)
                else:
                    stack.extend(child.children())

    for func in program.functions.values():
        walk_stmts(func.body.stmts, _EMPTY)
    return chains


def replay_detection(trace: ExecutionTrace, program: ast.Program,
                     algorithm: str = "mrw") -> DetectionResult:
    """Re-detect races for ``program`` from a trace of a previous run.

    ``program`` must be the recorded program with zero or more synthetic
    ``finish`` statements inserted (the repair engine's only edit); any
    other divergence raises :class:`~repro.errors.ReplayError`.
    """
    with telemetry.span("replay", algorithm=algorithm):
        return _replay_detection(trace, program, algorithm)


def _replay_detection(trace: ExecutionTrace, program: ast.Program,
                      algorithm: str) -> DetectionResult:
    start = time.perf_counter()
    detector = _make_replay_detector(algorithm, trace.addr_table)
    missing = trace.stmt_nids - {n.nid for n in ast.walk(program)}
    if missing:
        raise ReplayError(
            f"trace references {len(missing)} statement id(s) not present "
            "in the program; the trace was recorded from a different "
            "program or the edit was not a pure finish insertion")
    chains = _injection_chains(program, trace.finish_nids)
    builder = DpstBuilder(detector)

    kinds = trace.kinds
    payloads = trace.payloads
    pends = trace.pends
    starts = trace.starts
    segcosts = trace.segcosts
    acodes = trace.acodes
    anodes = trace.anodes
    n_events = len(kinds)
    n_accesses = len(acodes)

    chains_get = chains.get
    b_at = builder.at_statement
    b_add = builder.add_cost
    b_enter_async = builder.enter_async
    b_exit_async = builder.exit_async
    b_enter_finish = builder.enter_finish
    b_exit_finish = builder.exit_finish
    b_enter_scope = builder.enter_scope
    b_exit_scope = builder.exit_scope
    on_read = detector.on_read
    on_write = detector.on_write
    task_stack = builder._task_stack

    frames = []
    cur = _EMPTY
    debt = 0

    # Same rationale as detect_races: the loop allocates long-lived tree
    # and shadow structures at a steady rate; generational re-traversals
    # would dominate, and nothing here needs cycle collection mid-run.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        for j in range(n_events):
            kind = kinds[j]
            if kind == K_AT:
                nid = payloads[j]
                target = chains_get(nid, _EMPTY)
                if target is not cur:
                    pend = pends[j]
                    common = 0
                    len_cur = len(cur)
                    len_target = len(target)
                    while (common < len_cur and common < len_target
                           and cur[common] is target[common]):
                        common += 1
                    if common < len_cur:
                        # Close the divergent suffix, flushing any cost
                        # accrued since the last flush *inside* the
                        # innermost finish first — exactly where the
                        # engine's exit-time flush would put it.
                        flush = pend - debt
                        if flush > 0:
                            b_add(flush)
                            debt = pend
                        for _ in range(len_cur - common):
                            b_exit_finish()
                    for fi in range(common, len_target):
                        fstmt = target[fi]
                        b_at(fstmt.nid)
                        flush = pend - debt
                        if flush > 0:
                            b_add(flush)
                            debt = pend
                        b_enter_finish(fstmt)
                    cur = target
                b_at(nid)
            elif kind == K_ENTER_ASYNC:
                b_enter_async(payloads[j])
                frames.append(cur)
                cur = _EMPTY
            elif kind == K_EXIT_ASYNC:
                for _ in range(len(cur)):
                    b_exit_finish()
                cur = frames.pop()
                b_exit_async()
            elif kind == K_ENTER_SCOPE:
                scope_kind, construct_nid, block_nid = payloads[j]
                b_enter_scope(scope_kind, construct_nid, block_nid)
                frames.append(cur)
                cur = _EMPTY
            elif kind == K_EXIT_SCOPE:
                for _ in range(len(cur)):
                    b_exit_finish()
                cur = frames.pop()
                b_exit_scope()
            elif kind == K_ENTER_FINISH:
                b_enter_finish(payloads[j])
                frames.append(cur)
                cur = _EMPTY
            elif kind == K_EXIT_FINISH:
                for _ in range(len(cur)):
                    b_exit_finish()
                cur = frames.pop()
                b_exit_finish()
            # else: K_START — the virtual opening event, no bookkeeping.

            # The segment: accesses and cost between this control event
            # and the next.  Step and anchor are loop-invariant here, so
            # one add_cost does the builder bookkeeping (step creation,
            # anchor append, cost) and the inner loop is detector-only.
            lo = starts[j]
            hi = starts[j + 1] if j + 1 < n_events else n_accesses
            cost = segcosts[j]
            if debt and cost:
                take = cost if debt > cost else debt
                cost -= take
                debt -= take
            if hi > lo:
                b_add(cost)
                step = builder.current_step
                task = task_stack[-1]
                for i in range(lo, hi):
                    code = acodes[i]
                    if code & 1:
                        on_write(code >> 1, task, step, anodes[i])
                    else:
                        on_read(code >> 1, task, step, anodes[i])
            elif cost:
                b_add(cost)
        # Defensive: a well-formed trace closes every scope, so no
        # injected finish can still be open here.
        for _ in range(len(cur)):  # pragma: no cover - unreachable
            b_exit_finish()
        dpst = builder.finish()
    finally:
        if gc_was_enabled:
            gc.enable()

    report = detector.report() if hasattr(detector, "report") \
        else RaceReport([])
    execution = ExecutionResult(list(trace.output), trace.ops, trace.value)
    telemetry.counter("replay.events", n_events)
    telemetry.counter("replay.accesses", n_accesses)
    telemetry.counter("dpst.nodes", builder._counter + 1)
    telemetry.counter("detector.races", len(report))
    telemetry.counter("detector.monitored_accesses",
                      detector.monitored_accesses)
    telemetry.counter("detector.bag_unions", detector.bags.unions)
    elapsed = time.perf_counter() - start
    return DetectionResult(execution, dpst, report, detector, elapsed,
                           replayed=True)
