"""Trace-driven re-detection: rebuild the S-DPST and re-run ESP-bags from
a recorded execution trace, without re-executing the program.

Soundness rests on serial-elision invariance (see DESIGN.md,
"Replay-based re-detection"): the repair engine only ever inserts
``finish`` statements, and a ``finish`` carries no cost tick and does not
alter the depth-first execution.  The edited program's observer event
stream is therefore the recorded stream with three kinds of splice at
statically-known points:

* an ``at_statement(F.nid)`` + ``enter_finish(F)`` bracket *before* the
  first recorded statement inside each new finish ``F``;
* a matching ``exit_finish`` after its last recorded statement (or at the
  enclosing scope/async/finish exit when control leaves the block there);
* cost re-attribution: the engines flush accrued cost lazily, and a new
  finish boundary is a flush point the recorded run did not have.  The
  recorder stores the pending cost at every statement boundary, and
  replay keeps a *debt* counter — cost flushed early at an injected
  bracket is subtracted from the next recorded flushes so every step's
  total cost lands exactly where a real re-execution would put it.

This module computes the splice map (:func:`_injection_chains`) and
validates the edit; the batch consumption of the spliced stream is the
shared array core (:func:`~repro.races.arraycore.run_arraycore`) — replay
is simply its second producer, next to the live first run of
``detect_races``.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from typing import Optional

from .. import telemetry
from ..errors import ReplayError
from ..lang import ast
from ..runtime.interpreter import ExecutionResult
from ..runtime.recorder import ExecutionTrace
from .arraycore import run_arraycore
from .detect import DetectionResult
from .incremental import (
    IncrementalMiss,
    IncrementalState,
    finalize_state,
    incremental_replay,
)

_EMPTY: Tuple[ast.FinishStmt, ...] = ()


def _injection_chains(program: ast.Program, recorded_finish_nids
                      ) -> Dict[int, Tuple[ast.FinishStmt, ...]]:
    """Map statement nid -> chain of *new* synthetic finishes wrapping it.

    Only finishes absent from the recorded trace are injection targets;
    a synthetic finish from an earlier repair round already has recorded
    enter/exit events.  Chains are interned tuples (one per finish body),
    so the replay loop compares them by identity.  Statements under no
    new finish are simply absent (lookup default: the empty chain).
    """
    chains: Dict[int, Tuple[ast.FinishStmt, ...]] = {}

    def walk_stmts(stmts, chain: Tuple[ast.FinishStmt, ...]) -> None:
        for stmt in stmts:
            if (isinstance(stmt, ast.FinishStmt) and stmt.synthetic
                    and stmt.nid not in recorded_finish_nids):
                walk_stmts(stmt.body.stmts, chain + (stmt,))
                continue
            if chain:
                chains[stmt.nid] = chain
            # Nested blocks open their own scope frames: chains restart.
            stack = list(stmt.children())
            while stack:
                child = stack.pop()
                if isinstance(child, ast.Block):
                    walk_stmts(child.stmts, _EMPTY)
                else:
                    stack.extend(child.children())

    for func in program.functions.values():
        walk_stmts(func.body.stmts, _EMPTY)
    return chains


def _validate_stmt_nids(trace: ExecutionTrace, program: ast.Program) -> None:
    """Every trace statement nid must exist in ``program`` — else the
    edit was not a pure finish insertion.  The AST walk is cached per
    (trace, program) identity: the repair loop replays the *same*
    program object many times, and finish insertion only ever adds nids,
    so a pass can never be invalidated.  The cache value keeps a strong
    reference to the program so an id() can't be recycled while cached.
    """
    cache = trace.replay_cache()
    validated = cache.get("validated_programs")
    if validated is None:
        validated = cache["validated_programs"] = {}
    hit = validated.get(id(program))
    if hit is not None and hit is program:
        return
    missing = trace.stmt_nids - {n.nid for n in ast.walk(program)}
    if missing:
        raise ReplayError(
            f"trace references {len(missing)} statement id(s) not present "
            "in the program; the trace was recorded from a different "
            "program or the edit was not a pure finish insertion")
    validated[id(program)] = program


def replay_detection(trace: ExecutionTrace, program: ast.Program,
                     algorithm: str = "mrw", *,
                     incremental: bool = False,
                     baseline: Optional[IncrementalState] = None
                     ) -> DetectionResult:
    """Re-detect races for ``program`` from a trace of a previous run.

    ``program`` must be the recorded program with zero or more synthetic
    ``finish`` statements inserted (the repair engine's only edit); any
    other divergence raises :class:`~repro.errors.ReplayError`.

    With ``incremental=True`` the result additionally carries an
    ``inc_state`` for the next iteration, and when ``baseline`` (the
    previous iteration's state) is usable the re-detection only touches
    what the newest finish insertions changed — falling back to a full
    replay on any :class:`~repro.races.incremental.IncrementalMiss`.
    The report, S-DPST, and execution view are bit-identical either way.
    """
    with telemetry.span("replay", algorithm=algorithm,
                        incremental=incremental):
        return _replay_detection(trace, program, algorithm, incremental,
                                 baseline)


def _replay_detection(trace: ExecutionTrace, program: ast.Program,
                      algorithm: str, incremental: bool = False,
                      baseline: Optional[IncrementalState] = None
                      ) -> DetectionResult:
    start = time.perf_counter()
    if algorithm not in ("srw", "mrw"):
        raise ReplayError(
            f"replay supports the 'srw' and 'mrw' detectors, "
            f"not {algorithm!r}")
    _validate_stmt_nids(trace, program)
    chains = _injection_chains(program, trace.finish_nids)

    run = None
    inc_state = None
    if incremental:
        try:
            run, inc_state, stats = incremental_replay(
                trace, algorithm, chains, baseline)
        except IncrementalMiss as exc:
            telemetry.counter("incremental.fallbacks")
            with telemetry.span("incremental_fallback", error=str(exc),
                                algorithm=algorithm):
                pass
        else:
            if stats["mode"] == "fast":
                telemetry.counter("incremental.hits")
            else:
                telemetry.counter("incremental.resumes")
            telemetry.counter("incremental.window_events",
                              stats["window_events"])
            telemetry.counter("incremental.events_total",
                              stats["events_total"])
            telemetry.counter("incremental.rows_rechecked",
                              stats["rows_rechecked"])
            telemetry.counter("incremental.rows_synthesized",
                              stats["rows_synthesized"])
            telemetry.counter("incremental.checkpoints",
                              stats["checkpoints"])
    if run is None:
        collect = IncrementalState(trace, algorithm) if incremental else None
        run = run_arraycore(trace, algorithm, chains=chains, collect=collect)
        if collect is not None:
            inc_state = finalize_state(collect, run, chains)
            telemetry.counter("incremental.checkpoints",
                              len(collect.checkpoints))
    report = run.report()
    dpst = run.dpst_handle()

    # The execution view shares the trace's stored output list — replay
    # consumers only read it, and copying it per iteration measurably
    # taxed the repair loop.
    execution = ExecutionResult(trace.output, trace.ops, trace.value)
    telemetry.counter("replay.events", len(trace.kinds))
    telemetry.counter("replay.accesses", len(trace.acodes))
    telemetry.counter("dpst.nodes", run.node_count)
    telemetry.counter("detector.races", len(report))
    telemetry.counter("detector.monitored_accesses",
                      run.detector.monitored_accesses)
    telemetry.counter("detector.bag_unions", run.bags.unions)
    elapsed = time.perf_counter() - start
    result = DetectionResult(execution, dpst, report, run.detector, elapsed,
                             replayed=True, node_count=run.node_count)
    result.inc_state = inc_state
    return result
