"""Trace-driven re-detection: rebuild the S-DPST and re-run ESP-bags from
a recorded execution trace, without re-executing the program.

Soundness rests on serial-elision invariance (see DESIGN.md,
"Replay-based re-detection"): the repair engine only ever inserts
``finish`` statements, and a ``finish`` carries no cost tick and does not
alter the depth-first execution.  The edited program's observer event
stream is therefore the recorded stream with three kinds of splice at
statically-known points:

* an ``at_statement(F.nid)`` + ``enter_finish(F)`` bracket *before* the
  first recorded statement inside each new finish ``F``;
* a matching ``exit_finish`` after its last recorded statement (or at the
  enclosing scope/async/finish exit when control leaves the block there);
* cost re-attribution: the engines flush accrued cost lazily, and a new
  finish boundary is a flush point the recorded run did not have.  The
  recorder stores the pending cost at every statement boundary, and
  replay keeps a *debt* counter — cost flushed early at an injected
  bracket is subtracted from the next recorded flushes so every step's
  total cost lands exactly where a real re-execution would put it.

This module computes the splice map (:func:`_injection_chains`) and
validates the edit; the batch consumption of the spliced stream is the
shared array core (:func:`~repro.races.arraycore.run_arraycore`) — replay
is simply its second producer, next to the live first run of
``detect_races``.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from .. import telemetry
from ..errors import ReplayError
from ..lang import ast
from ..runtime.interpreter import ExecutionResult
from ..runtime.recorder import ExecutionTrace
from .arraycore import run_arraycore
from .detect import DetectionResult

_EMPTY: Tuple[ast.FinishStmt, ...] = ()


def _injection_chains(program: ast.Program, recorded_finish_nids
                      ) -> Dict[int, Tuple[ast.FinishStmt, ...]]:
    """Map statement nid -> chain of *new* synthetic finishes wrapping it.

    Only finishes absent from the recorded trace are injection targets;
    a synthetic finish from an earlier repair round already has recorded
    enter/exit events.  Chains are interned tuples (one per finish body),
    so the replay loop compares them by identity.  Statements under no
    new finish are simply absent (lookup default: the empty chain).
    """
    chains: Dict[int, Tuple[ast.FinishStmt, ...]] = {}

    def walk_stmts(stmts, chain: Tuple[ast.FinishStmt, ...]) -> None:
        for stmt in stmts:
            if (isinstance(stmt, ast.FinishStmt) and stmt.synthetic
                    and stmt.nid not in recorded_finish_nids):
                walk_stmts(stmt.body.stmts, chain + (stmt,))
                continue
            if chain:
                chains[stmt.nid] = chain
            # Nested blocks open their own scope frames: chains restart.
            stack = list(stmt.children())
            while stack:
                child = stack.pop()
                if isinstance(child, ast.Block):
                    walk_stmts(child.stmts, _EMPTY)
                else:
                    stack.extend(child.children())

    for func in program.functions.values():
        walk_stmts(func.body.stmts, _EMPTY)
    return chains


def replay_detection(trace: ExecutionTrace, program: ast.Program,
                     algorithm: str = "mrw") -> DetectionResult:
    """Re-detect races for ``program`` from a trace of a previous run.

    ``program`` must be the recorded program with zero or more synthetic
    ``finish`` statements inserted (the repair engine's only edit); any
    other divergence raises :class:`~repro.errors.ReplayError`.
    """
    with telemetry.span("replay", algorithm=algorithm):
        return _replay_detection(trace, program, algorithm)


def _replay_detection(trace: ExecutionTrace, program: ast.Program,
                      algorithm: str) -> DetectionResult:
    start = time.perf_counter()
    if algorithm not in ("srw", "mrw"):
        raise ReplayError(
            f"replay supports the 'srw' and 'mrw' detectors, "
            f"not {algorithm!r}")
    missing = trace.stmt_nids - {n.nid for n in ast.walk(program)}
    if missing:
        raise ReplayError(
            f"trace references {len(missing)} statement id(s) not present "
            "in the program; the trace was recorded from a different "
            "program or the edit was not a pure finish insertion")
    chains = _injection_chains(program, trace.finish_nids)
    run = run_arraycore(trace, algorithm, chains=chains)
    report = run.report()
    dpst = run.dpst_handle()

    execution = ExecutionResult(list(trace.output), trace.ops, trace.value)
    telemetry.counter("replay.events", len(trace.kinds))
    telemetry.counter("replay.accesses", len(trace.acodes))
    telemetry.counter("dpst.nodes", run.node_count)
    telemetry.counter("detector.races", len(report))
    telemetry.counter("detector.monitored_accesses",
                      run.detector.monitored_accesses)
    telemetry.counter("detector.bag_unions", run.detector.bags.unions)
    elapsed = time.perf_counter() - start
    return DetectionResult(execution, dpst, report, run.detector, elapsed,
                           replayed=True, node_count=run.node_count)
