"""Graphviz (DOT) exports for the analysis artefacts.

Three views of one execution, mirroring the paper's figures:

* :func:`dpst_to_dot` — the S-DPST with race edges (paper Figure 9);
* :func:`dependence_graph_to_dot` — the per-NS-LCA dependence DAG the
  placement DP runs on (paper Figure 11);
* :func:`computation_graph_to_dot` — the step-level spawn/continue/join
  DAG behind the work/span/schedule numbers.

Pure text generation — no graphviz dependency; feed the output to
``dot -Tsvg`` (or any renderer) yourself.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .dpst.nodes import ASYNC, FINISH, SCOPE, STEP, DpstNode
from .dpst.tree import Dpst
from .graph.computation import ComputationGraph
from .races.report import RaceReport
from .repair.dependence import DependenceGraph

_KIND_STYLE = {
    ASYNC: 'shape=ellipse, style=filled, fillcolor="#aed6f1"',
    FINISH: 'shape=ellipse, style=filled, fillcolor="#a9dfbf"',
    SCOPE: 'shape=box, style="filled,rounded", fillcolor="#f2f3f4"',
    STEP: 'shape=box, style=filled, fillcolor="#fdebd0"',
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def dpst_to_dot(tree: Dpst, report: Optional[RaceReport] = None,
                max_nodes: int = 400) -> str:
    """Render the S-DPST (optionally with dashed race edges) as DOT."""
    lines: List[str] = ["digraph sdpst {", "  rankdir=TB;",
                        '  node [fontname="Helvetica", fontsize=10];']
    count = 0
    included = set()

    def visit(node: DpstNode) -> None:
        nonlocal count
        if count >= max_nodes:
            return
        count += 1
        included.add(node.index)
        label = node.describe()
        if node.kind == STEP and node.cost:
            label += f"\\ncost={node.cost}"
        lines.append(f'  n{node.index} [label="{_escape(label)}", '
                     f'{_KIND_STYLE[node.kind]}];')
        for child in node.children:
            if count >= max_nodes:
                break
            visit(child)
            lines.append(f"  n{node.index} -> n{child.index};")

    visit(tree.root)
    if report is not None:
        for race in report:
            if race.source.index in included \
                    and race.sink.index in included:
                lines.append(
                    f"  n{race.source.index} -> n{race.sink.index} "
                    f'[style=dashed, color=red, constraint=false, '
                    f'label="{_escape(race.kind)}"];')
    lines.append("}")
    return "\n".join(lines)


def dependence_graph_to_dot(graph: DependenceGraph) -> str:
    """Render a dependence graph (Figure 11 style) as DOT."""
    lines = ["digraph dependence {", "  rankdir=LR;",
             '  node [fontname="Helvetica", fontsize=10];']
    for node in graph.nodes:
        kind = node.first.kind
        label = node.first.describe()
        if node.is_coalesced:
            label += f"..{node.last.describe()}"
        label += f"\\nt={node.time}"
        lines.append(f'  d{node.position} [label="{_escape(label)}", '
                     f'{_KIND_STYLE[kind]}];')
    for x, y in graph.edges:
        lines.append(f"  d{x} -> d{y} [color=red];")
    lines.append("}")
    return "\n".join(lines)


def computation_graph_to_dot(graph: ComputationGraph,
                             highlight_critical_path: bool = True) -> str:
    """Render the step-level computation DAG as DOT."""
    critical: Iterable[int] = ()
    if highlight_critical_path:
        critical = set(graph.critical_path())
    lines = ["digraph computation {", "  rankdir=LR;",
             '  node [fontname="Helvetica", fontsize=10, shape=box];']
    for idx in graph.order:
        style = ', style=filled, fillcolor="#f5b7b1"' if idx in critical \
            else ""
        lines.append(f'  s{idx} [label="step {idx}\\ncost='
                     f'{graph.cost[idx]}"{style}];')
    for idx in graph.order:
        for pred in graph.preds[idx]:
            color = ' [color=red, penwidth=2]' \
                if idx in critical and pred in critical else ""
            lines.append(f"  s{pred} -> s{idx}{color};")
    lines.append("}")
    return "\n".join(lines)
