"""Dependence-graph construction from the subtree rooted at an NS-LCA
(Section 5.1 of the paper).

Races are grouped by the non-scope least common ancestor (NS-LCA) of their
source and sink steps (Definition 5).  For one NS-LCA ``L`` the graph has
a node per *non-scope child* of ``L`` (Definition 3, in left-to-right
order) and an edge per race, connecting the children that are ancestors of
the race's endpoints.  Theorem 1 guarantees every edge source is an async
node — we assert it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..dpst.nodes import ASYNC, STEP, DpstNode
from ..dpst.tree import Dpst
from ..errors import RepairError
from ..graph.computation import span_parts


class DepNode:
    """A dependence-graph node.

    Usually one non-scope child of the NS-LCA; a *coalesced* node stands
    for a maximal run of consecutive step children whose incoming race
    sources are identical (most commonly: none).  A run of purely
    synchronous steps is semantically one step for the placement DP — its
    time is the sum, and any finish boundary placed inside the run is
    dominated by the boundary at the run's edge — so coalescing keeps the
    DP exact while shrinking ``n`` from thousands (e.g. one node per
    initialization-loop iteration) to a few dozen.
    """

    __slots__ = ("first", "last", "position", "time")

    def __init__(self, first: DpstNode, last: DpstNode, position: int,
                 time: int) -> None:
        #: leftmost and rightmost S-DPST children covered by this node
        self.first = first
        self.last = last
        #: 0-based left-to-right position in the dependence graph.
        self.position = position
        #: execution time t_i — the completion time (span) of the subtree.
        self.time = time

    @property
    def dpst(self) -> DpstNode:
        """The underlying S-DPST child (for non-coalesced nodes)."""
        return self.first

    @property
    def is_async(self) -> bool:
        return self.first.kind == ASYNC

    @property
    def is_coalesced(self) -> bool:
        return self.first is not self.last

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_coalesced:
            return (f"DepNode({self.first.describe()}.."
                    f"{self.last.describe()}, t={self.time})")
        return f"DepNode({self.first.describe()}, t={self.time})"


class DependenceGraph:
    """The DAG handed to the dynamic finish-placement algorithm."""

    def __init__(self, nslca: DpstNode, nodes: List[DepNode],
                 edges: List[Tuple[int, int]]) -> None:
        self.nslca = nslca
        self.nodes = nodes
        #: edges as 0-based (source position, sink position), source < sink
        self.edges = edges

    @property
    def size(self) -> int:
        return len(self.nodes)

    def times(self) -> List[int]:
        return [n.time for n in self.nodes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DependenceGraph(at={self.nslca.describe()}, "
                f"n={self.size}, edges={len(self.edges)})")


def group_races_by_nslca(tree: Dpst,
                         step_pairs: Sequence[Tuple[DpstNode, DpstNode]]
                         ) -> "Dict[DpstNode, List[Tuple[DpstNode, DpstNode]]]":
    """Group race step pairs by their NS-LCA (static placement step 2).

    Returns groups keyed by NS-LCA node, ordered by the NS-LCA's
    depth-first index so repair processes outer contexts deterministically.
    """
    groups: Dict[DpstNode, List[Tuple[DpstNode, DpstNode]]] = {}
    for source, sink in step_pairs:
        nslca = tree.ns_lca(source, sink)
        groups.setdefault(nslca, []).append((source, sink))
    return dict(sorted(groups.items(), key=lambda item: item[0].index))


def build_dependence_graph(tree: Dpst, nslca: DpstNode,
                           step_pairs: Sequence[Tuple[DpstNode, DpstNode]],
                           span_cache: Dict[int, Tuple[int, int]] = None,
                           max_nodes: int = 150,
                           coalesce: bool = True) -> DependenceGraph:
    """Reduce the subtree rooted at ``nslca`` to a dependence DAG.

    ``step_pairs`` are the races whose NS-LCA is ``nslca``; edges are
    deduplicated.  ``span_cache`` may be shared across calls to avoid
    recomputing subtree spans.  If, after exact coalescing, the graph
    still has more than ``max_nodes`` nodes (the O(n^3) DP would stall),
    the conservative :func:`_merge_all_step_runs` fallback kicks in.
    """
    if span_cache is None:
        span_cache = {}
    children = tree.non_scope_children(nslca)
    if not children:
        raise RepairError(f"NS-LCA {nslca.describe()} has no non-scope children")
    position_of = {child.index: pos for pos, child in enumerate(children)}

    # Raw edges over child positions.
    raw_edges = set()
    for source, sink in step_pairs:
        src_child = tree.non_scope_child_toward(nslca, source)
        sink_child = tree.non_scope_child_toward(nslca, sink)
        if src_child is sink_child:
            raise RepairError(
                "race endpoints map to the same non-scope child "
                f"{src_child.describe()} — NS-LCA grouping is inconsistent")
        src_pos = position_of[src_child.index]
        sink_pos = position_of[sink_child.index]
        if src_pos > sink_pos:
            raise RepairError(
                "race edge goes right-to-left; step pair order is broken")
        if src_child.kind != ASYNC:
            raise RepairError(
                f"race source child {src_child.describe()} is not an async "
                "node, contradicting Theorem 1")
        raw_edges.add((src_pos, sink_pos))

    # Coalesce consecutive step children with identical incoming sources.
    sources_of: Dict[int, frozenset] = {}
    for src_pos, sink_pos in raw_edges:
        sources_of[sink_pos] = sources_of.get(sink_pos, frozenset()) \
            | {src_pos}
    nodes: List[DepNode] = []
    group_of_child: List[int] = []
    for pos, child in enumerate(children):
        time = span_parts(child, span_cache)[1]
        incoming = sources_of.get(pos, frozenset())
        if (coalesce and nodes and child.kind == STEP
                and nodes[-1].last.kind == STEP
                and sources_of.get(position_of[nodes[-1].last.index],
                                   frozenset()) == incoming):
            nodes[-1].last = child
            nodes[-1].time += time
        else:
            nodes.append(DepNode(child, child, len(nodes), time))
        group_of_child.append(len(nodes) - 1)

    edges = sorted({(group_of_child[x], group_of_child[y])
                    for x, y in raw_edges})
    for x, y in edges:
        if x == y:  # pragma: no cover - coalescing never merges a source
            raise RepairError("edge endpoints coalesced into one node")

    if coalesce and len(nodes) > max_nodes:
        nodes, edges = _merge_all_step_runs(nodes, edges)
    return DependenceGraph(nslca, nodes, edges)


def _merge_all_step_runs(nodes: List[DepNode],
                         edges: List[Tuple[int, int]]
                         ) -> Tuple[List[DepNode], List[Tuple[int, int]]]:
    """Conservative fallback for very wide dependence graphs.

    Merges maximal runs of consecutive step nodes even when their exact
    source sets differ.  An edge into any member now targets the merged
    node, i.e. a covering finish must end before the whole run — at least
    as early as before the true sink — so every repair computed on the
    merged graph is still race-free.

    One asymmetry keeps wrap boundaries honest: a group that starts with
    edge-free steps never absorbs a sink.  Gluing an innocuous boundary
    step (say a loop's final condition evaluation) onto the *front* of a
    sink run would make every wrap that merely touches that step look
    like it swallows a race sink, rejecting good loop-wide placements.
    Sink-led groups may absorb anything that follows.  Asyncs and
    finishes never merge, so the structure around the actual parallelism
    is unchanged.
    """
    has_incoming = [False] * len(nodes)
    for _, y in edges:
        has_incoming[y] = True
    merged: List[DepNode] = []
    group_of: List[int] = []
    group_has_sink = False
    for position, node in enumerate(nodes):
        sink = has_incoming[position]
        can_merge = (merged and node.first.kind == STEP
                     and merged[-1].last.kind == STEP
                     and not (sink and not group_has_sink))
        if can_merge:
            merged[-1].last = node.last
            merged[-1].time += node.time
        else:
            merged.append(DepNode(node.first, node.last, len(merged),
                                  node.time))
            group_has_sink = False
        group_has_sink = group_has_sink or sink
        group_of.append(len(merged) - 1)
    new_edges = sorted({(group_of[x], group_of[y]) for x, y in edges})
    for x, y in new_edges:
        if x == y:  # pragma: no cover - sources are asyncs, never merged
            raise RepairError("edge endpoints merged into one node")
    return merged, new_edges
