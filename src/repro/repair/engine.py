"""The test-driven repair engine — the full pipeline of Figure 6.

One iteration:

1. **Data race detection** — execute the program sequentially on the test
   input with an ESP-bags detector, building the S-DPST (Section 4).
2. **Dynamic finish placement** — group races by NS-LCA, reduce each
   subtree to a dependence graph, and run the placement DP (Section 5).
3. **Static finish placement** — map each dynamic placement to an AST
   block + statement range via the insertion-point search, deduplicate
   placements that come from different dynamic instances of the same
   static context, and splice synthetic ``finish`` statements into the
   program (Section 6).

The engine then re-detects and repeats until the input is race-free.  By
default the re-detections *replay* the iteration-0 execution trace
(``reuse_trace=True``): finish insertion preserves serial-elision
semantics, so the recorded access stream is still exact for the edited
program and only the S-DPST / ESP-bags pass needs to re-run — the paper's
step 3(e)/3(f) incremental-update role, realized as trace replay (see
:mod:`repro.races.replay`).  When replay is unavailable (``REPRO_REPLAY=0``,
an unsupported detector, or a trace/program mismatch) the engine falls
back to full re-execution, which keeps every iteration's placements
computed against ground truth.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..dpst.nodes import DpstNode
from ..errors import RepairError, ReplayError
from ..lang import ast, pretty
from ..lang.transform import (
    clone_program,
    find_block,
    insert_finish,
    statement_span,
    synthetic_finishes,
)
from ..races.detect import DetectionResult, detect_races
from ..races.report import RaceReport
from .dependence import build_dependence_graph, group_races_by_nslca
from .insertion import InsertionFinder, InsertionPoint, build_scope_table
from .placement import solve_placement


def replay_enabled_default() -> bool:
    """The process-wide replay default: on unless ``REPRO_REPLAY`` says no.

    ``REPRO_REPLAY=0`` (or ``false``/``off``/``no``) forces every
    re-detection back to full re-execution; anything else — including
    unset — leaves the trace-replay fast path on.
    """
    value = os.environ.get("REPRO_REPLAY", "").strip().lower()
    return value not in ("0", "false", "off", "no")


def incremental_enabled_default() -> bool:
    """The process-wide incremental re-detection default: on unless
    ``REPRO_INCREMENTAL`` says no (same convention as ``REPRO_REPLAY``).

    Incremental mode only applies where replay applies (the ESP-bags
    detectors with ``reuse_trace`` on); it changes re-detection cost,
    never results — every incremental pass is bit-identical to a full
    replay, with an automatic full-replay fallback on structural misses.
    """
    value = os.environ.get("REPRO_INCREMENTAL", "").strip().lower()
    return value not in ("0", "false", "off", "no")


class NslcaPlacement:
    """What the DP decided at one NS-LCA (kept for reports/debugging)."""

    def __init__(self, nslca_index: int, graph_size: int, edge_count: int,
                 cost: float, finishes: List[Tuple[int, int]]) -> None:
        self.nslca_index = nslca_index
        self.graph_size = graph_size
        self.edge_count = edge_count
        self.cost = cost
        self.finishes = finishes


class RepairIteration:
    """Metrics and decisions of one detect/place/edit round."""

    def __init__(self, index: int, detection: DetectionResult,
                 placements: List[NslcaPlacement],
                 edits: List[InsertionPoint],
                 placement_time_s: float) -> None:
        self.index = index
        self.detection = detection
        self.placements = placements
        self.edits = edits
        #: dynamic + static placement wall-clock (Table 2 "Repair Time").
        self.placement_time_s = placement_time_s

    @property
    def race_count(self) -> int:
        return len(self.detection.report)


class RepairResult:
    """Outcome of repairing one program for one test input."""

    def __init__(self, original: ast.Program, repaired: ast.Program,
                 iterations: List[RepairIteration],
                 final_detection: DetectionResult, converged: bool,
                 replay_fallbacks: Optional[List[str]] = None) -> None:
        self.original = original
        self.repaired = repaired
        self.iterations = iterations
        #: the confirming race-free detection run
        self.final_detection = final_detection
        self.converged = converged
        #: ReplayError messages from replays abandoned for re-execution
        #: during this repair (empty in the common case).
        self.replay_fallbacks: List[str] = replay_fallbacks or []

    @property
    def repaired_source(self) -> str:
        return pretty(self.repaired)

    @property
    def inserted_finish_count(self) -> int:
        return len(synthetic_finishes(self.repaired))

    @property
    def total_races_found(self) -> int:
        return sum(it.race_count for it in self.iterations)

    @property
    def detection_time_s(self) -> float:
        """Wall-clock of the *first* detection run (the Table 2 column)."""
        return self.iterations[0].detection.elapsed_s if self.iterations \
            else self.final_detection.elapsed_s

    @property
    def repair_time_s(self) -> float:
        """Total dynamic+static placement time over all iterations, plus
        any re-detection runs after the first (they are part of the repair
        loop, not of the initial detection)."""
        total = sum(it.placement_time_s for it in self.iterations)
        total += sum(it.detection.elapsed_s for it in self.iterations[1:])
        total += self.final_detection.elapsed_s
        return total

    @property
    def dpst_node_count(self) -> int:
        return self.iterations[0].detection.dpst_node_count if \
            self.iterations else self.final_detection.dpst_node_count

    def summary(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (f"repair {status} in {len(self.iterations)} iteration(s); "
                f"{self.total_races_found} race(s) observed, "
                f"{self.inserted_finish_count} finish(es) inserted")

    def to_payload(self) -> Dict[str, Any]:
        """A plain-data view of the repair: picklable (it crosses the
        batch service's process boundary) and JSON-serializable (it is
        the CLI ``--json`` / HTTP API result schema).

        Unlike the full :class:`RepairResult` — which holds ASTs and
        S-DPST node graphs that neither pickle nor serialize — this
        carries only sources, counts, timings and the placement
        decisions of every iteration.
        """
        return {
            "converged": self.converged,
            "repaired_source": self.repaired_source,
            "inserted_finish_count": self.inserted_finish_count,
            "total_races_found": self.total_races_found,
            "iteration_count": len(self.iterations),
            "detection_time_s": self.detection_time_s,
            "repair_time_s": self.repair_time_s,
            "dpst_node_count": self.dpst_node_count,
            "summary": self.summary(),
            "replay_fallback_count": len(self.replay_fallbacks),
            "replay_fallbacks": list(self.replay_fallbacks),
            "iterations": [{
                "index": it.index,
                "race_count": it.race_count,
                "replayed": bool(it.detection.replayed),
                "detection_s": it.detection.elapsed_s,
                "placement_s": it.placement_time_s,
                "edit_count": len(it.edits),
                "placements": [{
                    "nslca_index": p.nslca_index,
                    "graph_size": p.graph_size,
                    "edge_count": p.edge_count,
                    "cost": p.cost,
                    "finishes": [list(f) for f in p.finishes],
                } for p in it.placements],
            } for it in self.iterations],
            "final_detection": {
                "race_free": self.final_detection.report.is_race_free,
                "race_count": len(self.final_detection.report),
                "replayed": bool(self.final_detection.replayed),
                "elapsed_s": self.final_detection.elapsed_s,
            },
        }


class RepairEngine:
    """Configurable driver for test-driven repair."""

    def __init__(self, algorithm: str = "mrw", max_iterations: int = 20,
                 seed: int = 20140609, max_ops: int = 200_000_000,
                 trace_roundtrip: bool = True,
                 reuse_trace: Optional[bool] = None,
                 incremental: Optional[bool] = None) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.algorithm = algorithm
        self.max_iterations = max_iterations
        self.seed = seed
        self.max_ops = max_ops
        #: serialize + reparse the race trace each iteration, mirroring the
        #: artifact's trace-file pipeline (and its cost profile).
        self.trace_roundtrip = trace_roundtrip
        if reuse_trace is None:
            reuse_trace = replay_enabled_default()
        #: record the iteration-0 execution and replay it for every later
        #: re-detection instead of re-executing (only the ESP-bags
        #: detectors support replay; anything else re-executes).
        self.reuse_trace = bool(reuse_trace) and algorithm in ("mrw", "srw")
        if incremental is None:
            incremental = incremental_enabled_default()
        #: re-detect incrementally against the previous iteration's
        #: detector state instead of re-scanning the whole trace
        #: (requires replay; results are bit-identical either way).
        self.incremental = bool(incremental) and self.reuse_trace

    # ------------------------------------------------------------------

    def repair(self, program: ast.Program,
               args: Sequence[Any] = ()) -> RepairResult:
        """Repair ``program`` for the single test input ``args``."""
        with telemetry.span("repair", algorithm=self.algorithm):
            return self._repair(program, args)

    def _repair(self, program: ast.Program,
                args: Sequence[Any]) -> RepairResult:
        work = clone_program(program)
        iterations: List[RepairIteration] = []
        previous_pairs: Optional[int] = None
        stalled = 0
        trace = None
        # Incremental re-detection baseline (previous iteration's detector
        # state) and the repair's replay-fallback log — both scoped to
        # this one repair: the engine object is reused across programs.
        inc_state = None
        fallbacks: List[str] = []
        for iteration in range(self.max_iterations):
            with telemetry.span("iteration", index=iteration) as it_span:
                detection, trace, inc_state = self._detect(
                    work, args, trace, inc_state, fallbacks)
                if detection.report.is_race_free:
                    it_span.annotate(races=0, converged=True)
                    return RepairResult(program, work, iterations, detection,
                                        converged=True,
                                        replay_fallbacks=fallbacks)
                pair_count = len(detection.report.distinct_step_pairs())
                if previous_pairs is not None \
                        and pair_count >= previous_pairs:
                    stalled += 1
                    if stalled >= 2:
                        raise RepairError(
                            "repair is not making progress: the racing "
                            f"step-pair count stayed at {pair_count} for "
                            f"{stalled + 1} iterations — the remaining "
                            "races are not fixable by lexical finish "
                            "insertion")
                else:
                    stalled = 0
                previous_pairs = pair_count
                start = time.perf_counter()
                with telemetry.span("placement", index=iteration):
                    step_pairs = self._step_pairs(detection)
                    placements, edits = self._compute_placements(
                        work, detection, step_pairs)
                    if not edits:
                        raise RepairError(
                            "races remain but no finish placement was "
                            "produced — the program cannot be repaired by "
                            "finish insertion")
                    self._apply_edits(work, edits)
                elapsed = time.perf_counter() - start
                telemetry.counter("repair.iterations")
                telemetry.counter("repair.edits", len(edits))
                it_span.annotate(races=len(detection.report),
                                 edits=len(edits))
            iterations.append(RepairIteration(
                iteration, detection, placements, edits, elapsed))
        with telemetry.span("final_detection"):
            final, trace, inc_state = self._detect(work, args, trace,
                                                   inc_state, fallbacks)
        return RepairResult(program, work, iterations, final,
                            converged=final.report.is_race_free,
                            replay_fallbacks=fallbacks)

    # ------------------------------------------------------------------
    # Phase 1: detection (recorded run, then trace replays)
    # ------------------------------------------------------------------

    def _detect(self, work: ast.Program, args: Sequence[Any],
                trace, inc_state=None,
                fallbacks: Optional[List[str]] = None
                ) -> Tuple[DetectionResult, Any, Any]:
        """One detection pass: replay the recorded trace when available,
        re-execute (recording on the first pass) otherwise.

        Returns ``(detection, trace, inc_state)`` where ``trace`` is
        ``None`` when replay is off or has been abandoned after a
        :class:`~repro.errors.ReplayError` fallback, and ``inc_state``
        is the incremental-re-detection baseline for the next pass
        (``None`` unless ``self.incremental``).
        """
        if trace is not None:
            from ..races.replay import replay_detection

            try:
                detection = replay_detection(trace, work,
                                             algorithm=self.algorithm,
                                             incremental=self.incremental,
                                             baseline=inc_state)
                return detection, trace, detection.inc_state
            except ReplayError as exc:
                # Fall back to re-execution; that run records a fresh
                # trace of the current program, so replay resumes from a
                # valid baseline on the next pass.  Counters carry no
                # payload, so the abandoned replay's reason rides on an
                # adjacent zero-length span and the repair result.
                telemetry.counter("repair.replay_fallbacks")
                with telemetry.span("replay_fallback", error=str(exc),
                                    algorithm=self.algorithm):
                    pass
                if fallbacks is not None:
                    fallbacks.append(str(exc))
                trace = None
        detection = detect_races(work, args, algorithm=self.algorithm,
                                 seed=self.seed, max_ops=self.max_ops,
                                 record_trace=self.reuse_trace,
                                 incremental=self.incremental)
        return detection, detection.trace, detection.inc_state

    # ------------------------------------------------------------------
    # Phase 2 + 3: placements
    # ------------------------------------------------------------------

    def _step_pairs(self, detection: DetectionResult
                    ) -> List[Tuple[DpstNode, DpstNode]]:
        """Distinct racing step pairs — optionally via the trace-file
        round trip used by the paper's artifact."""
        if not self.trace_roundtrip:
            return detection.report.distinct_step_pairs()
        trace = detection.report.to_trace_json()
        rows = RaceReport.trace_rows(trace)
        by_index: Dict[int, DpstNode] = {
            node.index: node for node in detection.dpst.walk()}
        seen = set()
        pairs: List[Tuple[DpstNode, DpstNode]] = []
        for row in rows:
            key = (row["source_step"], row["sink_step"])
            if key in seen:
                continue
            seen.add(key)
            pairs.append((by_index[key[0]], by_index[key[1]]))
        return pairs

    def _compute_placements(self, work: ast.Program,
                            detection: DetectionResult,
                            step_pairs) -> Tuple[List[NslcaPlacement],
                                                 List[InsertionPoint]]:
        tree = detection.dpst
        groups = group_races_by_nslca(tree, step_pairs)
        stmt_positions = _statement_positions(work)
        finder = InsertionFinder(stmt_positions, build_scope_table(work))
        span_cache: Dict[int, Tuple[int, int]] = {}
        placements: List[NslcaPlacement] = []
        edits: Dict[Tuple[int, int, int], InsertionPoint] = {}
        for nslca, group in groups.items():
            graph = build_dependence_graph(tree, nslca, group, span_cache)
            is_async = [n.is_async for n in graph.nodes]

            def sinks_of(i: int, k: int, _g=graph):
                """Sinks of the edges a finish around i..k covers."""
                return sorted({y for x, y in _g.edges if i <= x <= k < y})

            def valid(i: int, k: int, _g=graph, _n=nslca) -> bool:
                return finder.valid(_n, _g.nodes, i, k, sinks_of(i, k, _g))

            solution = solve_placement(graph.times(), is_async,
                                       graph.edges, valid)
            if solution is None:
                raise RepairError(
                    f"no valid finish placement exists at NS-LCA "
                    f"{nslca.describe()} (n={graph.size}, "
                    f"{len(graph.edges)} edges)")
            placements.append(NslcaPlacement(
                nslca.index, graph.size, len(graph.edges),
                solution.cost, solution.finishes))
            for s, e in solution.finishes:
                point = finder.find(nslca, graph.nodes, s, e,
                                    sinks_of(s, e, graph))
                if point is None:  # pragma: no cover - valid() guarantees it
                    raise RepairError(
                        f"placement ({s}, {e}) at {nslca.describe()} has no "
                        "insertion point despite passing VALID")
                edits.setdefault(point.edit_key(), point)
        accepted = self._filter_nested_edits(work, stmt_positions,
                                             list(edits.values()))
        return placements, accepted

    def _filter_nested_edits(self, work: ast.Program, stmt_positions,
                             edits: List[InsertionPoint]
                             ) -> List[InsertionPoint]:
        """Drop edits nested inside other edits of the same iteration.

        Different dynamic instances of one static context can propose
        placements at different granularities (the paper's Section 6.2
        "overlapping subproblems" case) — e.g. the top mergesort instance
        wraps both recursive asyncs while a near-leaf instance, seeing
        races from only one child, wraps a single async.  Applying both
        would over-synchronize.  Edits are considered in NS-LCA order
        (outermost dynamic context first); an edit whose region nests
        inside — or around — an already-accepted region is deferred: if
        the accepted edit does not fix its races, the next engine
        iteration will see them again and repair whatever remains.
        """
        block_parents = _block_parents(work)
        accepted: List[InsertionPoint] = []
        regions: List[Tuple[int, int, int]] = []
        for point in edits:
            lo = stmt_positions[point.start_stmt][1]
            hi = stmt_positions[point.end_stmt][1]
            region = (point.block_nid, lo, hi)
            if any(_regions_nested(block_parents, region, other)
                   for other in regions):
                continue
            accepted.append(point)
            regions.append(region)
        return accepted

    # ------------------------------------------------------------------
    # Phase 3: AST surgery
    # ------------------------------------------------------------------

    def _apply_edits(self, work: ast.Program,
                     edits: List[InsertionPoint]) -> None:
        by_block: Dict[int, List[Tuple[int, int]]] = {}
        for point in edits:
            block = find_block(work, point.block_nid)
            span = statement_span(block, [point.start_stmt, point.end_stmt])
            by_block.setdefault(point.block_nid, []).append(span)
        for block_nid, spans in by_block.items():
            for start, end in sorted(_merge_spans(spans), reverse=True):
                insert_finish(work, block_nid, start, end)


def _merge_spans(spans: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Union overlapping/adjacent-by-overlap statement ranges.

    Distinct dynamic instances of one NS-LCA context can propose slightly
    different (but overlapping) ranges; a single wider finish covers all
    of them and stays well-formed.
    """
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(set(spans)):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _block_parents(program: ast.Program) -> Dict[int, Tuple[int, int]]:
    """For every block: the (block, statement index) that contains it."""
    parents: Dict[int, Tuple[int, int]] = {}
    for node in ast.walk(program):
        if not isinstance(node, ast.Block):
            continue
        for idx, stmt in enumerate(node.stmts):
            stack = [stmt]
            while stack:
                current = stack.pop()
                if isinstance(current, ast.Block):
                    parents[current.nid] = (node.nid, idx)
                    continue  # deeper blocks resolve via their own parent
                stack.extend(current.children())
    return parents


def _region_covers(block_parents: Dict[int, Tuple[int, int]],
                   outer: Tuple[int, int, int],
                   inner: Tuple[int, int, int]) -> bool:
    """Is the statement region ``inner`` textually inside ``outer``?"""
    outer_block, outer_lo, outer_hi = outer
    block, lo, hi = inner
    if block == outer_block:
        return outer_lo <= lo and hi <= outer_hi
    current = block
    while True:
        parent = block_parents.get(current)
        if parent is None:
            return False
        current, idx = parent
        if current == outer_block:
            return outer_lo <= idx <= outer_hi


def _regions_nested(block_parents: Dict[int, Tuple[int, int]],
                    a: Tuple[int, int, int],
                    b: Tuple[int, int, int]) -> bool:
    """True if one region is inside the other (including same-block
    overlap, which the span merge would otherwise widen blindly)."""
    return (_region_covers(block_parents, a, b)
            or _region_covers(block_parents, b, a))


def _statement_positions(program: ast.Program) -> Dict[int, Tuple[int, int]]:
    """Map every statement id to (enclosing block id, index in block)."""
    positions: Dict[int, Tuple[int, int]] = {}
    for node in ast.walk(program):
        if isinstance(node, ast.Block):
            for idx, stmt in enumerate(node.stmts):
                positions[stmt.nid] = (node.nid, idx)
    return positions


class MultiInputRepairResult:
    """Outcome of repairing a program over several test inputs."""

    def __init__(self, original: ast.Program, repaired: ast.Program,
                 per_input: List[RepairResult], rounds: int,
                 converged: bool) -> None:
        self.original = original
        self.repaired = repaired
        #: one RepairResult per (round, input) pass, in execution order
        self.per_input = per_input
        self.rounds = rounds
        self.converged = converged

    @property
    def repaired_source(self) -> str:
        return pretty(self.repaired)

    @property
    def inserted_finish_count(self) -> int:
        return len(synthetic_finishes(self.repaired))

    def summary(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (f"multi-input repair {status} after {self.rounds} round(s); "
                f"{self.inserted_finish_count} finish(es) inserted")


def repair_for_inputs(program: ast.Program, inputs: Sequence[Sequence[Any]],
                      algorithm: str = "mrw", max_rounds: int = 5,
                      **engine_kwargs) -> MultiInputRepairResult:
    """Apply the repair tool iteratively over several test inputs.

    This is the workflow of Section 2: a single repair guarantees race
    freedom only for its own input (it may exploit input-specific
    structure, e.g. an empty recursion branch).  Repairing for each input
    in turn, and looping until a full round finds every input race-free,
    yields a program that is race-free for all of them.
    """
    if not inputs:
        raise ValueError("inputs must not be empty")
    engine = RepairEngine(algorithm=algorithm, **engine_kwargs)
    work = clone_program(program)
    passes: List[RepairResult] = []
    for round_index in range(max_rounds):
        clean = True
        for args in inputs:
            result = engine.repair(work, args)
            passes.append(result)
            work = result.repaired
            if result.iterations or not result.converged:
                clean = False
        if clean:
            return MultiInputRepairResult(program, work, passes,
                                          round_index + 1, converged=True)
    return MultiInputRepairResult(program, work, passes, max_rounds,
                                  converged=False)


def repair_program(program: ast.Program, args: Sequence[Any] = (),
                   algorithm: str = "mrw", max_iterations: int = 20,
                   seed: int = 20140609, max_ops: int = 200_000_000,
                   trace_roundtrip: bool = True,
                   reuse_trace: Optional[bool] = None,
                   incremental: Optional[bool] = None) -> RepairResult:
    """One-call repair: returns a race-free (for ``args``) program copy.

    ``reuse_trace`` selects trace replay for re-detections (``None`` =
    the ``REPRO_REPLAY`` process default, which is on); ``incremental``
    selects incremental re-detection on top of replay (``None`` = the
    ``REPRO_INCREMENTAL`` process default, which is on).  Raises
    :class:`~repro.errors.RepairError` when no finish insertion can
    repair the program (e.g. the race is between two halves of one loop
    iteration range that no lexical finish can separate).
    """
    engine = RepairEngine(algorithm=algorithm, max_iterations=max_iterations,
                          seed=seed, max_ops=max_ops,
                          trace_roundtrip=trace_roundtrip,
                          reuse_trace=reuse_trace,
                          incremental=incremental)
    return engine.repair(program, args)
