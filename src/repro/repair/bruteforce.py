"""Exhaustive finish placement for small dependence graphs.

Enumerates every *laminar* family of intervals over the node range (the
families expressible as nested/disjoint ``finish`` statements), filters to
families that cover all race edges and whose every interval is VALID, and
minimizes the simulated completion time.

This is the optimality oracle for the DP of :mod:`.placement` — Theorem 2
says Algorithm 1 is optimal, so on any small random instance the DP's cost
must equal the brute-force minimum.  Exponential; intended for ``n <= 7``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, List, Optional, Sequence, Tuple

from .placement import covers_all_edges, placement_cost

Interval = Tuple[int, int]
Family = Tuple[Interval, ...]


@lru_cache(maxsize=None)
def _families(lo: int, hi: int, allow_full: bool) -> Tuple[Family, ...]:
    """All laminar families over positions ``lo..hi``.

    ``allow_full`` controls whether the interval ``(lo, hi)`` itself may
    appear (used to prevent infinitely nested duplicates).
    """
    if lo > hi:
        return ((),)
    results: List[Family] = []

    def rec(start: int, acc: Tuple[Interval, ...]) -> None:
        if start > hi:
            results.append(acc)
            return
        # Position `start` not covered by a top-level interval here.
        rec(start + 1, acc)
        # Or a top-level interval (start, e) with a nested family inside.
        for e in range(start, hi + 1):
            if (start, e) == (lo, hi) and not allow_full:
                continue
            for inner in _families(start, e, False):
                rec(e + 1, acc + ((start, e),) + inner)

    rec(lo, ())
    return tuple(results)


def enumerate_laminar_families(n: int) -> Tuple[Family, ...]:
    """Every laminar interval family over ``0..n-1`` (including empty)."""
    return _families(0, n - 1, True)


def brute_force_placement(times: Sequence[int], is_async: Sequence[bool],
                          edges: Sequence[Interval],
                          valid: Optional[Callable[[int, int], bool]] = None
                          ) -> Optional[Tuple[int, Family]]:
    """Minimum completion time over all valid covering laminar families.

    Returns ``(cost, family)`` or None when no family works.  Among
    equal-cost families, prefers the one with fewer intervals (then the
    lexicographically smallest), making the result deterministic.
    """
    n = len(times)
    best: Optional[Tuple[int, Family]] = None
    for family in enumerate_laminar_families(n):
        if not covers_all_edges(edges, family):
            continue
        if valid is not None and any(not valid(s, e) for s, e in family):
            continue
        cost = placement_cost(times, is_async, list(family))
        key = (cost, len(family), tuple(sorted(family)))
        if best is None or key < (best[0], len(best[1]),
                                  tuple(sorted(best[1]))):
            best = (cost, tuple(sorted(family)))
    return best
