"""Test-coverage analysis for repair inputs (paper §9, future work).

Test-driven repair only guarantees race freedom *for the provided
inputs*: an async statement that never spawned, or a branch that never
executed, contributes no races and therefore receives no synchronization.
This module measures how well a set of test inputs exercises the
program's parallel structure, so a user can judge whether the repaired
program can be trusted beyond the test set:

* statement coverage — which statements executed at all;
* async coverage — which async statements actually spawned a task
  (the critical metric: an unspawned async is entirely unrepaired);
* finish coverage — which finish statements were entered;
* branch coverage — which if statements took both directions.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Set, Tuple

from ..lang import ast
from ..runtime.interpreter import ExecutionObserver, Interpreter


class _CoverageObserver(ExecutionObserver):
    """Collects executed statements and entered constructs."""

    def __init__(self) -> None:
        self.executed_stmts: Set[int] = set()
        self.spawned_asyncs: Set[int] = set()
        self.entered_finishes: Set[int] = set()
        self.entered_scopes: Set[Tuple[str, int]] = set()

    def at_statement(self, stmt_nid: int) -> None:
        self.executed_stmts.add(stmt_nid)

    def enter_async(self, stmt: ast.AsyncStmt) -> None:
        self.spawned_asyncs.add(stmt.nid)

    def enter_finish(self, stmt: ast.FinishStmt) -> None:
        self.entered_finishes.add(stmt.nid)

    def enter_scope(self, kind: str, construct_nid: int,
                    block_nid: int) -> None:
        self.entered_scopes.add((kind, construct_nid))


class CoverageReport:
    """Coverage of a program's structure by a set of test inputs."""

    def __init__(self, program: ast.Program,
                 observer: _CoverageObserver) -> None:
        self._program = program
        self._observer = observer
        self.all_stmts = [n for n in ast.walk(program)
                          if isinstance(n, ast.Stmt)
                          and not isinstance(n, ast.Block)]
        self.all_asyncs = [n for n in ast.walk(program)
                           if isinstance(n, ast.AsyncStmt)]
        self.all_finishes = [n for n in ast.walk(program)
                             if isinstance(n, ast.FinishStmt)]
        self.all_ifs = [n for n in ast.walk(program)
                        if isinstance(n, ast.If)]

    # ------------------------------------------------------------------

    @property
    def executed_statements(self) -> int:
        return sum(1 for s in self.all_stmts
                   if s.nid in self._observer.executed_stmts)

    @property
    def statement_coverage(self) -> float:
        if not self.all_stmts:
            return 1.0
        return self.executed_statements / len(self.all_stmts)

    @property
    def async_coverage(self) -> float:
        if not self.all_asyncs:
            return 1.0
        spawned = sum(1 for a in self.all_asyncs
                      if a.nid in self._observer.spawned_asyncs)
        return spawned / len(self.all_asyncs)

    @property
    def finish_coverage(self) -> float:
        if not self.all_finishes:
            return 1.0
        entered = sum(1 for f in self.all_finishes
                      if f.nid in self._observer.entered_finishes)
        return entered / len(self.all_finishes)

    def unspawned_asyncs(self) -> List[ast.AsyncStmt]:
        """Async statements never executed by any input — the repair has
        said nothing about them."""
        return [a for a in self.all_asyncs
                if a.nid not in self._observer.spawned_asyncs]

    def branch_coverage(self) -> float:
        """Fraction of if statements whose both directions were taken.

        The then-branch is a scope event; the else direction counts when
        either the else scope was entered or the statement executed
        without entering the then scope (condition false, no else block).
        """
        if not self.all_ifs:
            return 1.0
        full = 0
        entered = self._observer.entered_scopes
        for stmt in self.all_ifs:
            if stmt.nid not in self._observer.executed_stmts:
                continue
            then_taken = ("if", stmt.nid) in entered
            else_taken = ("else", stmt.nid) in entered
            # The statement ran; if the then scope never appears, the
            # false direction was taken at least once (and vice versa we
            # cannot distinguish without per-execution counts, so we use
            # scope events conservatively).
            if then_taken and (else_taken or stmt.else_block is None):
                full += 1
        return full / len(self.all_ifs)

    @property
    def is_adequate(self) -> bool:
        """The headline check: every async spawned at least once."""
        return not self.unspawned_asyncs()

    def summary(self) -> str:
        lines = [
            f"statement coverage: {self.statement_coverage:.0%} "
            f"({self.executed_statements}/{len(self.all_stmts)})",
            f"async coverage:     {self.async_coverage:.0%} "
            f"({len(self.all_asyncs) - len(self.unspawned_asyncs())}"
            f"/{len(self.all_asyncs)})",
            f"finish coverage:    {self.finish_coverage:.0%}",
            f"branch coverage:    {self.branch_coverage():.0%}",
        ]
        for stmt in self.unspawned_asyncs():
            lines.append(f"  WARNING: async at line {stmt.line} never "
                         "spawned — its races are unobserved and "
                         "unrepaired")
        return "\n".join(lines)


def measure_coverage(program: ast.Program,
                     inputs: Sequence[Sequence[Any]],
                     seed: int = 20140609,
                     max_ops: int = 200_000_000) -> CoverageReport:
    """Run the program on every input, accumulating structural coverage.

    Use together with :func:`repro.repair.repair_for_inputs`: if the
    report is not :attr:`~CoverageReport.is_adequate`, the input set is
    unsuitable for repair (paper §9's proposed test-coverage analysis).
    """
    observer = _CoverageObserver()
    for args in inputs:
        Interpreter(program, observer, seed=seed, max_ops=max_ops).run(args)
    return CoverageReport(program, observer)
