"""Context-sensitive finishes (paper §9, future work).

A repair-inserted finish inside a function applies to *every* caller,
but some calling contexts may already provide the ordering (an enclosing
finish, or no conflicting reads afterwards).  The paper proposes
"generation of context sensitive finishes, where a finish is
conditionally executed only in contexts where a data race is observed".

This module implements the test-driven variant by call-site
specialization: for each function that received synthetic finishes,
clone a ``<name>__nofinish`` version with those finishes stripped
(self-recursive calls stay inside the clone), then greedily rewrite one
call site at a time to use the clone, keeping the rewrite only if the
detector confirms the program is still race-free for the test input.
Every accepted rewrite strictly removes synchronization, so the result
is never slower and is verified never racy.
"""

from __future__ import annotations

import copy
from typing import Any, List, Optional, Sequence, Tuple

from ..graph import measure_program
from ..lang import ast
from ..lang.transform import clone_program
from ..races import detect_races
from .engine import RepairResult


class CallSiteRewrite:
    """One accepted specialization: a call now targets the no-finish clone."""

    def __init__(self, caller: str, call_nid: int, line: int,
                 original: str, variant: str) -> None:
        self.caller = caller
        self.call_nid = call_nid
        self.line = line
        self.original = original
        self.variant = variant

    def describe(self) -> str:
        return (f"{self.caller}: call to {self.original} at line "
                f"{self.line} -> {self.variant}")


class ContextSensitiveResult:
    """Outcome of the specialization pass."""

    def __init__(self, program: ast.Program, rewrites: List[CallSiteRewrite],
                 specialized_functions: List[str],
                 base: RepairResult) -> None:
        self.program = program
        self.rewrites = rewrites
        self.specialized_functions = specialized_functions
        self.base = base

    @property
    def improved(self) -> bool:
        return bool(self.rewrites)

    def summary(self) -> str:
        if not self.rewrites:
            return ("context-sensitive pass: no call site can drop its "
                    "synchronization")
        details = "; ".join(r.describe() for r in self.rewrites)
        return (f"context-sensitive pass: {len(self.rewrites)} call "
                f"site(s) use unsynchronized variants ({details})")


def _functions_with_synthetic_finishes(program: ast.Program) -> List[str]:
    names = []
    for name, func in program.functions.items():
        if any(isinstance(n, ast.FinishStmt) and n.synthetic
               for n in ast.walk(func)):
            names.append(name)
    return names


def _strip_synthetic(block: ast.Block) -> None:
    new_stmts: List[ast.Stmt] = []
    for stmt in block.stmts:
        if isinstance(stmt, ast.FinishStmt) and stmt.synthetic:
            _strip_synthetic(stmt.body)
            new_stmts.append(stmt.body)
        else:
            for child in stmt.children():
                if isinstance(child, ast.Block):
                    _strip_synthetic(child)
            if isinstance(stmt, ast.Block):
                _strip_synthetic(stmt)
            new_stmts.append(stmt)
    block.stmts = new_stmts


def _make_variant(program: ast.Program, name: str) -> Optional[str]:
    """Add ``name__nofinish`` to the program; None if it already exists."""
    variant_name = f"{name}__nofinish"
    if variant_name in program.functions:
        return None
    clone = copy.deepcopy(program.functions[name])
    clone.name = variant_name
    for node in ast.walk(clone):
        node.nid = program.fresh_id()
        if isinstance(node, ast.Call) and node.name == name:
            node.name = variant_name  # recursion stays unsynchronized
    _strip_synthetic(clone.body)
    program.functions[variant_name] = clone
    return variant_name


def _call_sites(program: ast.Program,
                target: str) -> List[Tuple[str, ast.Call]]:
    sites = []
    for fname, func in program.functions.items():
        if fname.endswith("__nofinish"):
            continue  # don't rewrite inside variants
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and node.name == target:
                sites.append((fname, node))
    return sites


def contextualize(result: RepairResult, args: Sequence[Any] = (),
                  seed: int = 20140609,
                  max_ops: int = 200_000_000) -> ContextSensitiveResult:
    """Specialize the repaired program's call sites where possible.

    ``result`` is a converged :class:`RepairResult`; ``args`` the test
    input (races are re-checked against it after every tentative rewrite,
    so the pass inherits the tool's test-driven guarantee).
    """
    program = clone_program(result.repaired)
    rewrites: List[CallSiteRewrite] = []
    specialized: List[str] = []
    for name in _functions_with_synthetic_finishes(result.repaired):
        variant = _make_variant(program, name)
        if variant is None:
            continue
        accepted_any = False
        for caller, call in _call_sites(program, name):
            call.name = variant
            detection = detect_races(program, args, seed=seed,
                                     max_ops=max_ops)
            if detection.report.is_race_free:
                accepted_any = True
                rewrites.append(CallSiteRewrite(
                    caller, call.nid, call.line, name, variant))
            else:
                call.name = name  # revert
        if accepted_any:
            specialized.append(name)
        else:
            del program.functions[variant]
    return ContextSensitiveResult(program, rewrites, specialized, result)


def parallelism_gain(result: ContextSensitiveResult,
                     args: Sequence[Any] = (),
                     processors: int = 12) -> Tuple[int, int]:
    """(base span, specialized span) — specialization never increases it."""
    base = measure_program(result.base.repaired, args,
                           processors=processors)
    specialized = measure_program(result.program, args,
                                  processors=processors)
    return base.span, specialized.span
