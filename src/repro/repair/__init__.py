"""The paper's core contribution: dynamic and static finish placement."""

from .context import (
    CallSiteRewrite,
    ContextSensitiveResult,
    contextualize,
    parallelism_gain,
)
from .coverage import CoverageReport, measure_coverage
from .bruteforce import (
    brute_force_placement,
    enumerate_laminar_families,
)
from .dependence import (
    DepNode,
    DependenceGraph,
    build_dependence_graph,
    group_races_by_nslca,
)
from .engine import (
    MultiInputRepairResult,
    RepairEngine,
    RepairIteration,
    RepairResult,
    repair_for_inputs,
    repair_program,
)
from .insertion import InsertionFinder, InsertionPoint, valid_algorithm2
from .placement import (
    PlacementSolution,
    covers_all_edges,
    is_laminar,
    placement_cost,
    solve_placement,
)

__all__ = [
    "DepNode",
    "DependenceGraph",
    "build_dependence_graph",
    "group_races_by_nslca",
    "InsertionFinder",
    "InsertionPoint",
    "valid_algorithm2",
    "PlacementSolution",
    "solve_placement",
    "placement_cost",
    "covers_all_edges",
    "is_laminar",
    "brute_force_placement",
    "enumerate_laminar_families",
    "RepairEngine",
    "RepairResult",
    "RepairIteration",
    "MultiInputRepairResult",
    "repair_program",
    "repair_for_inputs",
    "CoverageReport",
    "measure_coverage",
    "contextualize",
    "ContextSensitiveResult",
    "CallSiteRewrite",
    "parallelism_gain",
]
