"""Dynamic finish placement: the interval dynamic program of Section 5.2.

Given the dependence graph of one NS-LCA (nodes in left-to-right order,
execution times ``t_i``, race edges ``(x, y)`` with ``x < y``), compute a
minimum-cost set of finish placements ``{(s, e)}`` such that every edge is
covered (``s <= x <= e < y`` for some placement) and every placement is
VALID (insertable without capturing the excluded neighbours).

This implements Algorithm 1 (the DP over ``Opt``/``Partition``/``Finish``
with the EST recurrences of Figures 12 and 13), Algorithm 3 (``FIND``,
with the recursion fixed to ``FIND(p+1, end)`` to match Algorithm 1's
``i..k / k+1..j`` split), and the optimal-substructure cases:

* no edge crosses the partition — no finish; the right part starts as
  soon as the left part's synchronous prefix is done;
* edges cross — a finish is forced around the left part (if VALID), and
  the right part starts only at the left part's completion.

Ties in cost are broken toward a smaller earliest-start-time for whatever
follows, then toward the smaller partition point — which reproduces the
paper's worked Fibonacci example (Figure 14: the finish wraps only the two
asyncs, not the preceding step).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import RepairError

INF = float("inf")

ValidFn = Callable[[int, int], bool]


class PlacementSolution:
    """Result of the DP: the optimal cost and the finish set."""

    def __init__(self, cost: float, finishes: List[Tuple[int, int]],
                 est_after: float) -> None:
        #: optimal COST(G): the earliest completion time of the whole range.
        self.cost = cost
        #: finish placements as inclusive (start, end) node-index pairs.
        self.finishes = sorted(finishes)
        #: earliest start time of a hypothetical node after the range.
        self.est_after = est_after

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlacementSolution(cost={self.cost}, finishes={self.finishes})"


def _first_cross_table(n: int,
                       edges: Sequence[Tuple[int, int]]) -> List[List[int]]:
    """``table[i][k]`` = the smallest edge sink ``y > k`` over sources in
    ``i..k`` (or ``n`` if none).  ``succ(i..k) ∩ {k+1..j} != empty`` is then
    simply ``table[i][k] <= j``."""
    succs: List[List[int]] = [[] for _ in range(n)]
    for x, y in edges:
        succs[x].append(y)
    for lst in succs:
        lst.sort()

    def min_succ_gt(x: int, k: int) -> int:
        lst = succs[x]
        pos = bisect_right(lst, k)
        return lst[pos] if pos < len(lst) else n

    table = [[n] * n for _ in range(n)]
    for k in range(n):
        best = n
        for i in range(k, -1, -1):
            cand = min_succ_gt(i, k)
            if cand < best:
                best = cand
            table[i][k] = best
    return table


def solve_placement(times: Sequence[int], is_async: Sequence[bool],
                    edges: Sequence[Tuple[int, int]],
                    valid: Optional[ValidFn] = None
                    ) -> Optional[PlacementSolution]:
    """Run Algorithm 1 + Algorithm 3.  Returns None when no valid finish
    placement covers all edges (the caller decides how to fail).

    ``valid(i, k)`` answers whether a finish may wrap nodes ``i..k``
    (0-based, inclusive) without capturing node ``i-1`` or ``k+1``;
    defaults to always-true (pure graph problems, used heavily in tests).
    """
    n = len(times)
    if n == 0:
        raise RepairError("empty dependence graph")
    if len(is_async) != n:
        raise RepairError("times/is_async length mismatch")
    for x, y in edges:
        if not (0 <= x < y < n):
            raise RepairError(f"bad edge ({x}, {y}) for n={n}")
        if not is_async[x]:
            raise RepairError(f"edge source {x} is not an async node")

    if valid is None:
        valid = lambda i, k: True  # noqa: E731 - trivial default
    valid_cache: Dict[Tuple[int, int], bool] = {}

    def is_valid(i: int, k: int) -> bool:
        key = (i, k)
        cached = valid_cache.get(key)
        if cached is None:
            cached = valid(i, k)
            valid_cache[key] = cached
        return cached

    first_cross = _first_cross_table(n, edges)

    opt = [[INF] * n for _ in range(n)]
    est_after = [[INF] * n for _ in range(n)]
    part = [[-1] * n for _ in range(n)]
    fin = [[False] * n for _ in range(n)]

    for i in range(n):
        opt[i][i] = times[i]
        est_after[i][i] = 0 if is_async[i] else times[i]
        part[i][i] = i

    for s in range(2, n + 1):
        for i in range(n - s + 1):
            j = i + s - 1
            best_c = INF
            best_e = INF
            best_k = -1
            best_f = False
            row_fc = first_cross[i]
            for k in range(i, j):
                left_opt = opt[i][k]
                right_opt = opt[k + 1][j]
                if left_opt == INF or right_opt == INF:
                    continue
                if row_fc[k] > j:
                    # No dependence crosses the partition: no finish.
                    c = left_opt
                    alt = est_after[i][k] + right_opt
                    if alt > c:
                        c = alt
                    e = est_after[i][k] + est_after[k + 1][j]
                    f = False
                elif is_valid(i, k):
                    # A finish around i..k satisfies the crossing edges.
                    c = left_opt + right_opt
                    e = left_opt + est_after[k + 1][j]
                    f = True
                else:
                    continue
                if c < best_c or (c == best_c and e < best_e):
                    best_c, best_e, best_k, best_f = c, e, k, f
            opt[i][j] = best_c
            est_after[i][j] = best_e
            part[i][j] = best_k
            fin[i][j] = best_f

    if opt[0][n - 1] == INF:
        return None

    finishes: List[Tuple[int, int]] = []

    def find(begin: int, end: int) -> None:
        """Algorithm 3 (FIND), with the off-by-one in the paper's listing
        corrected: the right subproblem is ``p+1..end``."""
        if begin >= end:
            return
        p = part[begin][end]
        find(begin, p)
        find(p + 1, end)
        if fin[begin][end]:
            finishes.append((begin, p))

    find(0, n - 1)
    return PlacementSolution(opt[0][n - 1], finishes, est_after[0][n - 1])


# ----------------------------------------------------------------------
# Independent cost model (shared by tests and the brute-force oracle)
# ----------------------------------------------------------------------

def is_laminar(intervals: Sequence[Tuple[int, int]]) -> bool:
    """True if every pair of intervals is nested or disjoint."""
    for a in range(len(intervals)):
        s1, e1 = intervals[a]
        for b in range(a + 1, len(intervals)):
            s2, e2 = intervals[b]
            # Only *strict* partial overlap breaks laminarity; intervals
            # sharing an endpoint but nested (e.g. (4,4) inside (4,5)) are
            # fine — they are a finish at the start of another finish.
            if s1 < s2 <= e1 < e2 or s2 < s1 <= e2 < e1:
                return False
    return True


def covers_all_edges(edges: Sequence[Tuple[int, int]],
                     intervals: Sequence[Tuple[int, int]]) -> bool:
    """Every edge (x, y) needs some (s, e) with s <= x <= e < y."""
    for x, y in edges:
        if not any(s <= x <= e < y for s, e in intervals):
            return False
    return True


def placement_cost(times: Sequence[int], is_async: Sequence[bool],
                   intervals: Sequence[Tuple[int, int]]) -> int:
    """Completion time of the node sequence under the given (laminar)
    finish placements — computed by direct simulation of the async/finish
    semantics, independently of the DP recurrences.

    Used as the ground-truth cost model: the DP's ``Opt`` must agree with
    this simulation on its own output.
    """
    if not is_laminar(intervals):
        raise RepairError(f"finish intervals are not laminar: {intervals}")
    n = len(times)
    unique = sorted(set(intervals), key=lambda iv: (iv[0], -iv[1]))

    def eval_range(lo: int, hi: int, enclosing: List[Tuple[int, int]]
                   ) -> Tuple[int, int]:
        """(sync advance, completion) of positions lo..hi, where
        ``enclosing`` are the not-yet-consumed intervals inside lo..hi."""
        clock = 0
        completion = 0
        pos = lo
        while pos <= hi:
            # The widest interval starting at pos (if any) becomes a finish.
            starting = [iv for iv in enclosing if iv[0] == pos]
            if starting:
                s, e = max(starting, key=lambda iv: iv[1])
                inner = [iv for iv in enclosing
                         if iv != (s, e) and s <= iv[0] and iv[1] <= e]
                _, comp = eval_range(s, e, inner)
                completion = max(completion, clock + comp)
                clock += comp  # finish: the parent waits
                pos = e + 1
            else:
                if is_async[pos]:
                    completion = max(completion, clock + times[pos])
                else:
                    clock += times[pos]
                    completion = max(completion, clock)
                pos += 1
        return clock, max(completion, clock)

    _, comp = eval_range(0, n - 1, unique)
    return comp
