"""Finding where a dynamic finish placement can be inserted — both in the
S-DPST and in the source program.

For a finish placement ``(i, j)`` over the dependence-graph nodes of an
NS-LCA, the paper looks for *"the highest node in the S-DPST where we can
introduce a new finish node as the ancestor of i..j, but is not an
ancestor of i-1 or j+1"* (Section 5.2).  We implement that search
top-down from the NS-LCA, and extend it with a *static expressibility*
check: the chosen S-DPST position must map to a contiguous statement range
of one AST block that does not textually overlap the excluded neighbours.

The static check matters when several dynamic instances share one static
construct — the canonical case is a loop: one finish cannot cover
iterations 3..5 of a loop but not iteration 6.  In that case the search
descends into the iteration scope (yielding a finish *inside* the loop
body, which statically applies to every iteration — strictly more
synchronization, never less, so repairs stay sound).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dpst.nodes import ASYNC, FINISH, SCOPE, STEP, DpstNode
from ..errors import RepairError
from .dependence import DepNode

#: Maps a statement id to (block id, index within the block); built by the
#: engine from the current program and threaded through the search.
StmtPositions = Dict[int, Tuple[int, int]]

#: Per block: (names declared by each statement, names referenced from each
#: statement onward).  Used to reject placements that would capture a
#: variable declaration whose uses extend past the new finish.
ScopeTable = Dict[int, Tuple[List[frozenset], List[frozenset]]]


def build_scope_table(program) -> ScopeTable:
    """Compute, for every block, which names each statement declares and
    which names are referenced from each statement suffix.

    A finish wrapped around statements ``lo..hi`` of a block is lexically
    well-formed only if no name declared inside the range is referenced by
    the statements after ``hi`` (criterion 2 of the paper's Problem 1).
    """
    from ..lang import ast as _ast

    table: ScopeTable = {}
    for node in _ast.walk(program):
        if not isinstance(node, _ast.Block):
            continue
        decls: List[frozenset] = []
        refs: List[frozenset] = []
        for stmt in node.stmts:
            declared = (frozenset((stmt.name,))
                        if isinstance(stmt, _ast.VarDecl) else frozenset())
            used = frozenset(n.name for n in _ast.walk(stmt)
                             if isinstance(n, _ast.VarRef))
            decls.append(declared)
            refs.append(used)
        # Suffix union of references.
        suffix: List[frozenset] = [frozenset()] * (len(node.stmts) + 1)
        for idx in range(len(node.stmts) - 1, -1, -1):
            suffix[idx] = suffix[idx + 1] | refs[idx]
        table[node.nid] = (decls, suffix)
    return table


class InsertionPoint:
    """A concrete location for a new finish statement."""

    __slots__ = ("parent", "child_start", "child_end", "block_nid",
                 "start_stmt", "end_stmt")

    def __init__(self, parent: DpstNode, child_start: int, child_end: int,
                 block_nid: int, start_stmt: int, end_stmt: int) -> None:
        #: S-DPST node under which the finish node is introduced.
        self.parent = parent
        #: index range of the wrapped children of ``parent``.
        self.child_start = child_start
        self.child_end = child_end
        #: AST block and the statement-id range to wrap in ``finish { }``.
        self.block_nid = block_nid
        self.start_stmt = start_stmt
        self.end_stmt = end_stmt

    def edit_key(self) -> Tuple[int, int, int]:
        return (self.block_nid, self.start_stmt, self.end_stmt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"InsertionPoint(under={self.parent.describe()}, "
                f"block={self.block_nid}, stmts={self.start_stmt}.."
                f"{self.end_stmt})")


# ----------------------------------------------------------------------
# Small structural helpers
# ----------------------------------------------------------------------

def child_toward(parent: DpstNode, target: DpstNode) -> DpstNode:
    """The direct child of ``parent`` whose subtree contains ``target``."""
    node = target
    prev = None
    while node is not None and node is not parent:
        prev = node
        node = node.parent
    if node is None or prev is None:
        raise RepairError(
            f"{parent.describe()} is not a proper ancestor of "
            f"{target.describe()}")
    return prev


def first_anchor(node: DpstNode) -> Optional[int]:
    """First AST statement (in the parent block) this child covers."""
    if node.kind == STEP:
        return node.anchors[0] if node.anchors else None
    return node.anchor_nid


def last_anchor(node: DpstNode) -> Optional[int]:
    """Last AST statement (in the parent block) this child covers."""
    if node.kind == STEP:
        return node.anchors[-1] if node.anchors else None
    return node.anchor_nid


def has_parallel_construct(node: DpstNode,
                           cache: Dict[int, bool]) -> bool:
    """True if the subtree contains any async or finish node."""
    cached = cache.get(node.index)
    if cached is not None:
        return cached
    if node.kind in (ASYNC, FINISH):
        result = True
    else:
        result = any(has_parallel_construct(c, cache) for c in node.children)
    cache[node.index] = result
    return result


# ----------------------------------------------------------------------
# The search
# ----------------------------------------------------------------------

class InsertionFinder:
    """Resolves dynamic finish placements to insertion points.

    One finder is built per (program snapshot, S-DPST); it memoizes the
    async-containment cache across queries, which the DP's VALID check
    issues O(n^2) times per NS-LCA.
    """

    def __init__(self, stmt_positions: StmtPositions,
                 scope_table: Optional[ScopeTable] = None) -> None:
        self.stmt_positions = stmt_positions
        self.scope_table = scope_table if scope_table is not None else {}
        self._parallel_cache: Dict[int, bool] = {}
        # Sinks the current query must keep outside the wrap (set per
        # find() call; DepNode list).
        self._forbidden: List[DepNode] = []

    def _contains_forbidden(self, child: DpstNode) -> bool:
        """Does this child's subtree hold any to-be-ordered race sink?"""
        for node in self._forbidden:
            if child.is_ancestor_of(node.first) \
                    or child.is_ancestor_of(node.last):
                return True
        return False

    # -- public API ----------------------------------------------------

    def find(self, nslca: DpstNode, dep_nodes: Sequence[DepNode],
             i: int, j: int,
             sink_positions: Sequence[int] = ()) -> Optional[InsertionPoint]:
        """Insertion point for a finish over dep nodes ``i..j`` (inclusive),
        excluding neighbours ``i-1`` and ``j+1``; None if impossible.

        ``sink_positions`` are the dependence-graph positions of the race
        sinks this finish must order after its join (the sinks of the
        edges the placement covers).  The static mapping may widen the
        wrap over harmless synchronous material, but never over a sink —
        a sink textually inside the finish would stay unordered with the
        wrapped sources, un-fixing the race.
        """
        target_lo = dep_nodes[i].first
        target_hi = dep_nodes[j].last
        left = dep_nodes[i - 1].last if i > 0 else None
        right = dep_nodes[j + 1].first if j + 1 < len(dep_nodes) else None
        self._forbidden = [dep_nodes[p] for p in sink_positions]
        parent = nslca
        while True:
            lo_child = child_toward(parent, target_lo)
            hi_child = child_toward(parent, target_hi)
            if lo_child is not hi_child:
                if not self._left_edge_ok(lo_child, target_lo, left):
                    return None
                if not self._right_edge_ok(hi_child, target_hi, right):
                    return None
                return self._static_point(parent, lo_child, hi_child)
            # The whole run lives under one child; try wrapping that child
            # alone at this (highest remaining) level, else descend.
            child = lo_child
            dynamic_ok = (self._left_edge_ok(child, target_lo, left)
                          and self._right_edge_ok(child, target_hi, right))
            if dynamic_ok:
                point = self._static_point(parent, child, child)
                if point is not None:
                    return point
            if child.kind != SCOPE:
                return None
            parent = child

    def _left_edge_ok(self, lo_child: DpstNode, target_lo: DpstNode,
                      left: Optional[DpstNode]) -> bool:
        """May a finish start at ``lo_child`` given the excluded ``left``?

        If the excluded left neighbour lives inside ``lo_child`` (common
        when a loop body computes something — e.g. copies the loop
        variable — before spawning its async), the wrap unavoidably
        swallows that prefix.  Swallowing a *purely synchronous* prefix is
        sound: it cannot be a race source (sources are asyncs) and, being
        left of every covered source, cannot be a covered sink either.  A
        prefix containing an async would get joined too, changing the
        placement's parallelism, so that is rejected.
        """
        if left is None or not lo_child.is_ancestor_of(left):
            return True
        return self._prefix_async_free(lo_child, target_lo)

    def _prefix_async_free(self, ancestor: DpstNode,
                           target: DpstNode) -> bool:
        """True if nothing before ``target`` inside ``ancestor``'s subtree
        contains an async or finish node."""
        node = target
        while node is not ancestor:
            parent = node.parent
            if parent is None:
                raise RepairError("target is not inside the child subtree")
            for sibling in parent.children:
                if sibling is node:
                    break
                if has_parallel_construct(sibling, self._parallel_cache):
                    return False
            node = parent
        return True

    def _right_edge_ok(self, hi_child: DpstNode, target_hi: DpstNode,
                       right: Optional[DpstNode]) -> bool:
        """May a finish end at ``hi_child`` given the excluded ``right``?

        The mirror of :meth:`_left_edge_ok`, with one extra constraint:
        the swallowed suffix additionally must not contain any of the
        race sinks this placement covers (a suffix is *after* the wrapped
        sources, so unlike the prefix it genuinely can hold one).
        """
        if right is None or not hi_child.is_ancestor_of(right):
            return True
        node = target_hi
        while node is not hi_child:
            parent = node.parent
            if parent is None:
                raise RepairError("target is not inside the child subtree")
            passed = False
            for sibling in parent.children:
                if passed:
                    if has_parallel_construct(sibling, self._parallel_cache):
                        return False
                    if self._contains_forbidden(sibling):
                        return False
                elif sibling is node:
                    passed = True
            node = parent
        return True

    def valid(self, nslca: DpstNode, dep_nodes: Sequence[DepNode],
              i: int, j: int, sink_positions: Sequence[int] = ()) -> bool:
        """VALID(i, j): a finish can enclose dep nodes i..j and nothing of
        i-1 / j+1 — structurally in the S-DPST *and* in the source."""
        return self.find(nslca, dep_nodes, i, j, sink_positions) is not None

    # -- internals -----------------------------------------------------

    def _static_point(self, parent: DpstNode, lo_child: DpstNode,
                      hi_child: DpstNode) -> Optional[InsertionPoint]:
        """Map a child run of ``parent`` to a statement range, checking the
        excluded neighbours don't share wrapped statements."""
        if parent.block_nid is None:
            return None
        children = parent.children
        a = children.index(lo_child)
        b = children.index(hi_child)
        start_stmt = first_anchor(lo_child)
        end_stmt = last_anchor(hi_child)
        if start_stmt is None or end_stmt is None:
            return None
        start_pos = self.stmt_positions.get(start_stmt)
        end_pos = self.stmt_positions.get(end_stmt)
        if start_pos is None or end_pos is None:
            return None
        if (start_pos[0] != parent.block_nid
                or end_pos[0] != parent.block_nid):
            # Anchors must be direct statements of the parent's block; a
            # mismatch means the placement is stale for this program copy.
            return None
        if not self._clear_after(children, b, parent.block_nid, end_pos[1]):
            return None
        if not self._clear_before(children, a, parent.block_nid,
                                  start_pos[1]):
            return None
        if not self._declarations_stay_visible(parent.block_nid,
                                               start_pos[1], end_pos[1]):
            return None
        return InsertionPoint(parent, a, b, parent.block_nid,
                              start_stmt, end_stmt)

    def _anchor_pos(self, anchor: Optional[int], block_nid: int
                    ) -> Optional[int]:
        if anchor is None:
            return None
        pos = self.stmt_positions.get(anchor)
        if pos is None or pos[0] != block_nid:
            return None
        return pos[1]

    def _clear_after(self, children: List[DpstNode], b: int,
                     block_nid: int, hi: int) -> bool:
        """No child after the run may be textually dragged into the wrap.

        Statement anchors of siblings are non-decreasing, so we scan right
        from ``b`` until a child starts past the wrap's last statement.  A
        child whose whole anchor range falls inside the wrap would be
        *fully* swallowed — its computation (possibly a race sink, e.g.
        another loop iteration or the body of a call whose argument
        evaluation ended the wrap) would move inside the finish, so the
        placement is rejected.  A child merely *sharing* the boundary
        statement (a loop's final condition evaluation) is tolerated when
        it contains no parallel construct.
        """
        for idx in range(b + 1, len(children)):
            child = children[idx]
            first = self._anchor_pos(first_anchor(child), block_nid)
            if first is None:
                return False  # inconsistent anchors: be conservative
            if first > hi:
                return True
            # The child is textually dragged (at least partly) into the
            # wrap.  That is harmless synchronous material unless it
            # contains a parallel construct or — when the child is wholly
            # inside the wrapped statements — one of the race sinks this
            # very finish is supposed to order after its join.  A child
            # merely sharing the boundary statement only contributes that
            # statement's trailing fragment (e.g. a loop's final condition
            # evaluation); its later statements stay outside the finish.
            if has_parallel_construct(child, self._parallel_cache):
                return False
            last = self._anchor_pos(last_anchor(child), block_nid)
            fully_inside = last is not None and last <= hi
            if fully_inside and self._contains_forbidden(child):
                return False
        return True

    def _clear_before(self, children: List[DpstNode], a: int,
                      block_nid: int, lo: int) -> bool:
        """Mirror of :meth:`_clear_after` for the leading edge."""
        for idx in range(a - 1, -1, -1):
            child = children[idx]
            last = self._anchor_pos(last_anchor(child), block_nid)
            if last is None:
                return False
            if last < lo:
                return True
            if has_parallel_construct(child, self._parallel_cache):
                return False
            first = self._anchor_pos(first_anchor(child), block_nid)
            fully_inside = first is not None and first >= lo
            if fully_inside and self._contains_forbidden(child):
                return False
        return True

    def _declarations_stay_visible(self, block_nid: int, lo: int,
                                   hi: int) -> bool:
        """Reject wraps that capture a declaration used after the range."""
        entry = self.scope_table.get(block_nid)
        if entry is None:
            return True
        decls, suffix_refs = entry
        declared = frozenset().union(*decls[lo:hi + 1]) if hi >= lo \
            else frozenset()
        if not declared:
            return True
        return not (declared & suffix_refs[hi + 1])


def valid_algorithm2(nodes: Sequence[DepNode], i: int, j: int) -> bool:
    """The paper's Algorithm 2, verbatim: LCA-depth comparison against the
    neighbours.  Kept as a reference implementation; the engine uses the
    structural :meth:`InsertionFinder.valid`, which additionally checks
    static expressibility.  Tests cross-check that Algorithm 2 never
    rejects a placement the structural search accepts.
    """
    from ..dpst.tree import Dpst

    node_i, node_j = nodes[i].first, nodes[j].last
    lca_ij = Dpst.lca(node_i, node_j)
    if i > 0:
        lca_left = Dpst.lca(node_i, nodes[i - 1].last)
        if lca_left.depth > lca_ij.depth:
            return False
    if j + 1 < len(nodes):
        lca_right = Dpst.lca(node_j, nodes[j + 1].first)
        if lca_right.depth > lca_ij.depth:
            return False
    return True
