"""Request gating for the HTTP front-end: bearer auth + token buckets.

Two independent, deliberately small mechanisms:

* :func:`check_bearer` — static bearer-token auth for the *mutating*
  endpoints (``POST /jobs``).  The service is either open (no token
  configured) or requires ``Authorization: Bearer <token>`` to match,
  compared with :func:`hmac.compare_digest` so the check is
  constant-time.  Read endpoints stay open: they expose aggregate
  metrics and job results, and load balancers need ``/healthz``
  unauthenticated.

* :class:`RateLimiter` — a classic token bucket per tenant.  Each
  tenant's bucket holds up to ``burst`` tokens and refills at ``rate``
  tokens/second; a request spends one token or is rejected (HTTP 429).
  The tenant is the bearer token when auth is on (so limits follow
  identity), else the ``X-Tenant`` header, else the client address —
  see :func:`tenant_of`.

Both are pure in-memory state on one node.  Per-node limits are the
honest scope here: a fleet fronted by a load balancer multiplies the
effective rate by the node count, which is the usual first-order
deployment answer; global limits would need shared state the queue tier
deliberately keeps out of the request path.
"""

from __future__ import annotations

import hmac
import threading
import time
from typing import Dict, Optional


def check_bearer(authorization: Optional[str],
                 expected_token: Optional[str]) -> bool:
    """Is this ``Authorization`` header acceptable?  Always true when no
    token is configured (the service is open)."""
    if expected_token is None:
        return True
    if not authorization:
        return False
    scheme, _, credential = authorization.partition(" ")
    if scheme.lower() != "bearer" or not credential:
        return False
    return hmac.compare_digest(credential.strip(), expected_token)


def tenant_of(headers, client_address: str,
              auth_token: Optional[str] = None) -> str:
    """The rate-limit identity of a request: the bearer credential if
    one was presented, else the ``X-Tenant`` header, else the client
    address."""
    authorization = headers.get("Authorization") or ""
    scheme, _, credential = authorization.partition(" ")
    if scheme.lower() == "bearer" and credential.strip():
        return f"token:{credential.strip()}"
    tenant = (headers.get("X-Tenant") or "").strip()
    if tenant:
        return f"tenant:{tenant}"
    return f"addr:{client_address}"


class TokenBucket:
    """One tenant's budget: ``burst`` capacity, ``rate`` tokens/sec."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float,
                 now: Optional[float] = None) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = time.monotonic() if now is None else now

    def take(self, now: Optional[float] = None) -> bool:
        now_ = time.monotonic() if now is None else now
        self.tokens = min(self.burst,
                          self.tokens + (now_ - self.updated_at) * self.rate)
        self.updated_at = now_
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class RateLimiter:
    """Per-tenant token buckets behind one lock.

    ``rate=None`` disables limiting (every ``allow`` succeeds).  Buckets
    are created on first sight of a tenant; a long-idle bucket is just a
    few floats, and the tenant space is bounded by distinct tokens /
    header values / client addresses seen, so no reaper is needed at
    this scale.
    """

    def __init__(self, rate: Optional[float],
                 burst: Optional[float] = None) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        self.rate = rate
        self.burst = burst if burst is not None \
            else (max(1.0, rate * 2) if rate is not None else 1.0)
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.allowed = 0
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def allow(self, tenant: str, now: Optional[float] = None) -> bool:
        if self.rate is None:
            return True
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, now=now)
            ok = bucket.take(now=now)
            if ok:
                self.allowed += 1
            else:
                self.rejected += 1
            return ok

    def stats_dict(self) -> Dict[str, float]:
        with self._lock:
            return {"rate_per_s": self.rate, "burst": self.burst,
                    "tenants": len(self._buckets),
                    "allowed": self.allowed, "rejected": self.rejected}


__all__ = ["check_bearer", "tenant_of", "TokenBucket", "RateLimiter"]
